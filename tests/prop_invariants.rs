//! Property-based tests over randomized workload configurations: the core
//! invariants of DESIGN.md §5 must hold for *any* generated workload, not
//! just the figure presets.

use proptest::prelude::*;

use lotec::prelude::*;
use lotec::workload::schema::SchemaConfig;
use lotec::workload::WorkloadConfig;
use lotec_core::SystemConfig as Cfg;

/// Strategy over small-but-diverse workload configurations.
fn workload_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (
        1u16..=3,     // pages_min
        0u16..=8,     // extra pages
        2u32..=4,     // classes
        3u16..=10,    // attrs_min
        1u32..=3,     // paths per method
        0.15f64..0.7, // attr touch prob
        0.0f64..1.2,  // zipf theta
        4u32..=24,    // families
        2u32..=6,     // nodes
        any::<u64>(), // seed
        0.0f64..0.2,  // abort prob
    )
        .prop_map(
            |(pmin, pextra, classes, attrs, paths, touch, theta, families, nodes, seed, abort)| {
                WorkloadConfig {
                    schema: SchemaConfig {
                        num_classes: classes,
                        pages_min: pmin,
                        pages_max: pmin + pextra,
                        page_size: 512, // small pages keep runs fast
                        attrs_min: attrs,
                        attrs_max: attrs + 5,
                        methods_per_class: 3,
                        paths_per_method: paths,
                        attr_touch_prob: touch,
                        write_prob: 0.8,
                        read_only_method_prob: 0.2,
                        invoke_prob: 0.4,
                        max_sites_per_path: 2,
                    },
                    num_objects: 8,
                    num_families: families,
                    num_nodes: nodes,
                    zipf_theta: theta,
                    mean_arrival_gap: SimDuration::from_micros(30),
                    abort_prob: abort,
                    seed,
                }
            },
        )
}

fn system_for(w: &WorkloadConfig, protocol: ProtocolKind) -> Cfg {
    Cfg {
        num_nodes: w.num_nodes,
        page_size: w.schema.page_size,
        protocol,
        seed: w.seed,
        ..Cfg::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Invariant 1 (DESIGN.md): page-payload ordering
    /// LOTEC <= OTEC <= COTEC for any workload on an identical schedule.
    #[test]
    fn payload_ordering_universal(w in workload_strategy()) {
        let Ok((registry, families)) = lotec::workload::gen::generate(&w) else {
            return Ok(()); // degenerate config; nothing to check
        };
        prop_assume!(!families.is_empty());
        let config = system_for(&w, ProtocolKind::Lotec);
        let cmp = compare_protocols(&config, &registry, &families).expect("runs");
        let payload =
            |k: ProtocolKind| cmp.traffic(k).page_payload_bytes(&config.sizes, config.page_size);
        let (l, o, c) = (
            payload(ProtocolKind::Lotec),
            payload(ProtocolKind::Otec),
            payload(ProtocolKind::Cotec),
        );
        prop_assert!(l <= o, "LOTEC {l} > OTEC {o}");
        prop_assert!(o <= c, "OTEC {o} > COTEC {c}");
    }

    /// Invariant 2: serializability under every protocol, with faults and
    /// contention drawn at random.
    #[test]
    fn serializability_universal(w in workload_strategy(), proto_idx in 0usize..4) {
        let Ok((registry, families)) = lotec::workload::gen::generate(&w) else {
            return Ok(());
        };
        prop_assume!(!families.is_empty());
        let protocol = ProtocolKind::ALL[proto_idx];
        let config = system_for(&w, protocol);
        let report = run_engine(&config, &registry, &families).expect("engine runs");
        prop_assert!(oracle::verify(&report).is_ok(), "oracle rejected {protocol}");
        // Every family must terminate: committed or (fault-aborted) failed.
        prop_assert_eq!(
            report.stats.committed_families + report.stats.aborted_families,
            families.len() as u64
        );
    }

    /// Invariant 8: bit-for-bit determinism from the seed.
    #[test]
    fn determinism_universal(w in workload_strategy()) {
        let Ok((registry, families)) = lotec::workload::gen::generate(&w) else {
            return Ok(());
        };
        prop_assume!(!families.is_empty());
        let config = system_for(&w, ProtocolKind::Lotec);
        let a = run_engine(&config, &registry, &families).expect("run a");
        let b = run_engine(&config, &registry, &families).expect("run b");
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.final_chains, b.final_chains);
        prop_assert_eq!(a.traffic.total(), b.traffic.total());
    }

    /// Invariant 6: conservative prediction — every path's actual access
    /// set is a subset of its method's prediction, for any generated
    /// schema.
    #[test]
    fn conservative_prediction_universal(w in workload_strategy()) {
        let Ok((registry, _)) = lotec::workload::gen::generate(&w) else {
            return Ok(());
        };
        for class_idx in 0..registry.num_classes() {
            let compiled = registry.class(ClassId::new(class_idx as u32));
            prop_assert_eq!(compiled.verify(), Ok(()));
        }
    }

    /// JSON persistence round-trips any workload configuration exactly:
    /// the reloaded scenario regenerates an identical workload.
    #[test]
    fn persistence_roundtrip_universal(w in workload_strategy()) {
        let scenario = lotec::workload::Scenario::new("prop", w);
        let json = lotec::workload::persist::to_json(&scenario).expect("serializes");
        let back = lotec::workload::persist::from_json(&json).expect("deserializes");
        prop_assert_eq!(&back, &scenario);
        let a = lotec::workload::gen::generate(&scenario.config);
        let b = lotec::workload::gen::generate(&back.config);
        match (a, b) {
            (Ok((_, fa)), Ok((_, fb))) => prop_assert_eq!(fa, fb),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "generate outcome diverged after roundtrip"),
        }
    }

    /// Engine accounting must equal replaying its own trace under the same
    /// protocol — the two cost models can never drift.
    #[test]
    fn engine_matches_replay_universal(w in workload_strategy(), proto_idx in 0usize..4) {
        let Ok((registry, families)) = lotec::workload::gen::generate(&w) else {
            return Ok(());
        };
        prop_assume!(!families.is_empty());
        let protocol = ProtocolKind::ALL[proto_idx];
        let config = system_for(&w, protocol);
        let report = run_engine(&config, &registry, &families).expect("engine runs");
        let replayed =
            lotec_core::replay::replay_trace(protocol, &report.trace, &registry, &config);
        prop_assert_eq!(report.traffic.total(), replayed.total());
    }
}
