//! Randomized-property tests over workload configurations: the core
//! invariants of DESIGN.md §5 must hold for *any* generated workload, not
//! just the figure presets. Cases are drawn from a seeded [`SimRng`]
//! stream, so every run checks the same deterministic sample.

use lotec::prelude::*;
use lotec::sim::SimRng;
use lotec::workload::schema::SchemaConfig;
use lotec::workload::WorkloadConfig;
use lotec_core::SystemConfig as Cfg;

const CASES: u64 = 24;

/// One random small-but-diverse workload configuration.
fn random_workload(rng: &mut SimRng) -> WorkloadConfig {
    let pages_min = rng.range_inclusive(1, 3) as u16;
    let pages_extra = rng.range_inclusive(0, 8) as u16;
    let attrs_min = rng.range_inclusive(3, 10) as u16;
    WorkloadConfig {
        schema: SchemaConfig {
            num_classes: rng.range_inclusive(2, 4) as u32,
            pages_min,
            pages_max: pages_min + pages_extra,
            page_size: 512, // small pages keep runs fast
            attrs_min,
            attrs_max: attrs_min + 5,
            methods_per_class: 3,
            paths_per_method: rng.range_inclusive(1, 3) as u32,
            attr_touch_prob: 0.15 + rng.f64() * 0.55,
            write_prob: 0.8,
            read_only_method_prob: 0.2,
            invoke_prob: 0.4,
            max_sites_per_path: 2,
        },
        num_objects: 8,
        num_families: rng.range_inclusive(4, 24) as u32,
        num_nodes: rng.range_inclusive(2, 6) as u32,
        zipf_theta: rng.f64() * 1.2,
        mean_arrival_gap: SimDuration::from_micros(30),
        abort_prob: rng.f64() * 0.2,
        seed: rng.next_u64(),
    }
}

fn system_for(w: &WorkloadConfig, protocol: ProtocolKind) -> Cfg {
    Cfg {
        num_nodes: w.num_nodes,
        page_size: w.schema.page_size,
        protocol,
        seed: w.seed,
        ..Cfg::default()
    }
}

/// Runs `body` for each sampled workload that generates non-degenerately.
fn for_each_workload(stream: u64, mut body: impl FnMut(&WorkloadConfig, &mut SimRng)) {
    let mut rng = SimRng::seed_from_u64(0x1237_AB5E ^ stream);
    for _ in 0..CASES {
        let w = random_workload(&mut rng);
        body(&w, &mut rng);
    }
}

/// Invariant 1 (DESIGN.md): page-payload ordering
/// LOTEC <= OTEC <= COTEC for any workload on an identical schedule.
#[test]
fn payload_ordering_universal() {
    for_each_workload(1, |w, _| {
        let Ok((registry, families)) = lotec::workload::gen::generate(w) else {
            return; // degenerate config; nothing to check
        };
        if families.is_empty() {
            return;
        }
        let config = system_for(w, ProtocolKind::Lotec);
        let cmp = compare_protocols(&config, &registry, &families).expect("runs");
        let payload = |k: ProtocolKind| {
            cmp.traffic(k)
                .page_payload_bytes(&config.sizes, config.page_size)
        };
        let (l, o, c) = (
            payload(ProtocolKind::Lotec),
            payload(ProtocolKind::Otec),
            payload(ProtocolKind::Cotec),
        );
        assert!(l <= o, "LOTEC {l} > OTEC {o} for {w:?}");
        assert!(o <= c, "OTEC {o} > COTEC {c} for {w:?}");
    });
}

/// Invariant 2: serializability under every protocol, with faults and
/// contention drawn at random.
#[test]
fn serializability_universal() {
    for_each_workload(2, |w, rng| {
        let Ok((registry, families)) = lotec::workload::gen::generate(w) else {
            return;
        };
        if families.is_empty() {
            return;
        }
        let protocol = ProtocolKind::ALL[rng.next_below(4) as usize];
        let config = system_for(w, protocol);
        let report = run_engine(&config, &registry, &families).expect("engine runs");
        assert!(
            oracle::verify(&report).is_ok(),
            "oracle rejected {protocol} for {w:?}"
        );
        // Every family must terminate: committed or (fault-aborted) failed.
        assert_eq!(
            report.stats.committed_families + report.stats.aborted_families,
            families.len() as u64
        );
    });
}

/// Invariant 8: bit-for-bit determinism from the seed.
#[test]
fn determinism_universal() {
    for_each_workload(3, |w, _| {
        let Ok((registry, families)) = lotec::workload::gen::generate(w) else {
            return;
        };
        if families.is_empty() {
            return;
        }
        let config = system_for(w, ProtocolKind::Lotec);
        let a = run_engine(&config, &registry, &families).expect("run a");
        let b = run_engine(&config, &registry, &families).expect("run b");
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.final_chains, b.final_chains);
        assert_eq!(a.traffic.total(), b.traffic.total());
    });
}

/// Invariant 6: conservative prediction — every path's actual access set
/// is a subset of its method's prediction, for any generated schema.
#[test]
fn conservative_prediction_universal() {
    for_each_workload(4, |w, _| {
        let Ok((registry, _)) = lotec::workload::gen::generate(w) else {
            return;
        };
        for class_idx in 0..registry.num_classes() {
            let compiled = registry.class(ClassId::new(class_idx as u32));
            assert_eq!(compiled.verify(), Ok(()));
        }
    });
}

/// JSON persistence round-trips any workload configuration exactly: the
/// reloaded scenario regenerates an identical workload.
#[test]
fn persistence_roundtrip_universal() {
    for_each_workload(5, |w, _| {
        let scenario = lotec::workload::Scenario::new("prop", w.clone());
        let json = lotec::workload::persist::to_json(&scenario).expect("serializes");
        let back = lotec::workload::persist::from_json(&json).expect("deserializes");
        assert_eq!(&back, &scenario);
        let a = lotec::workload::gen::generate(&scenario.config);
        let b = lotec::workload::gen::generate(&back.config);
        match (a, b) {
            (Ok((_, fa)), Ok((_, fb))) => assert_eq!(fa, fb),
            (Err(_), Err(_)) => {}
            _ => panic!("generate outcome diverged after roundtrip"),
        }
    });
}

/// Engine accounting must equal replaying its own trace under the same
/// protocol — the two cost models can never drift.
#[test]
fn engine_matches_replay_universal() {
    for_each_workload(6, |w, rng| {
        let Ok((registry, families)) = lotec::workload::gen::generate(w) else {
            return;
        };
        if families.is_empty() {
            return;
        }
        let protocol = ProtocolKind::ALL[rng.next_below(4) as usize];
        let config = system_for(w, protocol);
        let report = run_engine(&config, &registry, &families).expect("engine runs");
        let replayed =
            lotec_core::replay::replay_trace(protocol, &report.trace, &registry, &config);
        assert_eq!(report.traffic.total(), replayed.total());
    });
}
