//! Randomized-property tests over workload configurations: the core
//! invariants of DESIGN.md §5 must hold for *any* generated workload, not
//! just the figure presets. Cases are drawn from a seeded [`SimRng`]
//! stream, so every run checks the same deterministic sample.

use lotec::prelude::*;
use lotec::sim::SimRng;
use lotec::workload::schema::SchemaConfig;
use lotec::workload::WorkloadConfig;
use lotec_core::SystemConfig as Cfg;

const CASES: u64 = 24;

/// One random small-but-diverse workload configuration.
fn random_workload(rng: &mut SimRng) -> WorkloadConfig {
    let pages_min = rng.range_inclusive(1, 3) as u16;
    let pages_extra = rng.range_inclusive(0, 8) as u16;
    let attrs_min = rng.range_inclusive(3, 10) as u16;
    WorkloadConfig {
        schema: SchemaConfig {
            num_classes: rng.range_inclusive(2, 4) as u32,
            pages_min,
            pages_max: pages_min + pages_extra,
            page_size: 512, // small pages keep runs fast
            attrs_min,
            attrs_max: attrs_min + 5,
            methods_per_class: 3,
            paths_per_method: rng.range_inclusive(1, 3) as u32,
            attr_touch_prob: 0.15 + rng.f64() * 0.55,
            write_prob: 0.8,
            read_only_method_prob: 0.2,
            invoke_prob: 0.4,
            max_sites_per_path: 2,
        },
        num_objects: 8,
        num_families: rng.range_inclusive(4, 24) as u32,
        num_nodes: rng.range_inclusive(2, 6) as u32,
        zipf_theta: rng.f64() * 1.2,
        mean_arrival_gap: SimDuration::from_micros(30),
        abort_prob: rng.f64() * 0.2,
        seed: rng.next_u64(),
    }
}

fn system_for(w: &WorkloadConfig, protocol: ProtocolKind) -> Cfg {
    Cfg {
        num_nodes: w.num_nodes,
        page_size: w.schema.page_size,
        protocol,
        seed: w.seed,
        ..Cfg::default()
    }
}

/// Runs `body` for each sampled workload that generates non-degenerately.
fn for_each_workload(stream: u64, mut body: impl FnMut(&WorkloadConfig, &mut SimRng)) {
    let mut rng = SimRng::seed_from_u64(0x1237_AB5E ^ stream);
    for _ in 0..CASES {
        let w = random_workload(&mut rng);
        body(&w, &mut rng);
    }
}

/// Invariant 1 (DESIGN.md): page-payload ordering
/// LOTEC <= OTEC <= COTEC for any workload on an identical schedule.
#[test]
fn payload_ordering_universal() {
    for_each_workload(1, |w, _| {
        let Ok((registry, families)) = lotec::workload::gen::generate(w) else {
            return; // degenerate config; nothing to check
        };
        if families.is_empty() {
            return;
        }
        let config = system_for(w, ProtocolKind::Lotec);
        let cmp = compare_protocols(&config, &registry, &families).expect("runs");
        let payload = |k: ProtocolKind| {
            cmp.traffic(k)
                .page_payload_bytes(&config.sizes, config.page_size)
        };
        let (l, o, c) = (
            payload(ProtocolKind::Lotec),
            payload(ProtocolKind::Otec),
            payload(ProtocolKind::Cotec),
        );
        assert!(l <= o, "LOTEC {l} > OTEC {o} for {w:?}");
        assert!(o <= c, "OTEC {o} > COTEC {c} for {w:?}");
    });
}

/// Invariant 2: serializability under every protocol, with faults and
/// contention drawn at random.
#[test]
fn serializability_universal() {
    for_each_workload(2, |w, rng| {
        let Ok((registry, families)) = lotec::workload::gen::generate(w) else {
            return;
        };
        if families.is_empty() {
            return;
        }
        let protocol = ProtocolKind::ALL[rng.next_below(4) as usize];
        let config = system_for(w, protocol);
        let report = run_engine(&config, &registry, &families).expect("engine runs");
        assert!(
            oracle::verify(&report).is_ok(),
            "oracle rejected {protocol} for {w:?}"
        );
        // Every family must terminate: committed or (fault-aborted) failed.
        assert_eq!(
            report.stats.committed_families + report.stats.aborted_families,
            families.len() as u64
        );
    });
}

/// Invariant 8: bit-for-bit determinism from the seed.
#[test]
fn determinism_universal() {
    for_each_workload(3, |w, _| {
        let Ok((registry, families)) = lotec::workload::gen::generate(w) else {
            return;
        };
        if families.is_empty() {
            return;
        }
        let config = system_for(w, ProtocolKind::Lotec);
        let a = run_engine(&config, &registry, &families).expect("run a");
        let b = run_engine(&config, &registry, &families).expect("run b");
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.final_chains, b.final_chains);
        assert_eq!(a.traffic.total(), b.traffic.total());
    });
}

/// Invariant 6: conservative prediction — every path's actual access set
/// is a subset of its method's prediction, for any generated schema.
#[test]
fn conservative_prediction_universal() {
    for_each_workload(4, |w, _| {
        let Ok((registry, _)) = lotec::workload::gen::generate(w) else {
            return;
        };
        for class_idx in 0..registry.num_classes() {
            let compiled = registry.class(ClassId::new(class_idx as u32));
            assert_eq!(compiled.verify(), Ok(()));
        }
    });
}

/// JSON persistence round-trips any workload configuration exactly: the
/// reloaded scenario regenerates an identical workload.
#[test]
fn persistence_roundtrip_universal() {
    for_each_workload(5, |w, _| {
        let scenario = lotec::workload::Scenario::new("prop", w.clone());
        let json = lotec::workload::persist::to_json(&scenario).expect("serializes");
        let back = lotec::workload::persist::from_json(&json).expect("deserializes");
        assert_eq!(&back, &scenario);
        let a = lotec::workload::gen::generate(&scenario.config);
        let b = lotec::workload::gen::generate(&back.config);
        match (a, b) {
            (Ok((_, fa)), Ok((_, fb))) => assert_eq!(fa, fb),
            (Err(_), Err(_)) => {}
            _ => panic!("generate outcome diverged after roundtrip"),
        }
    });
}

/// Engine accounting must equal replaying its own trace under the same
/// protocol — the two cost models can never drift.
#[test]
fn engine_matches_replay_universal() {
    for_each_workload(6, |w, rng| {
        let Ok((registry, families)) = lotec::workload::gen::generate(w) else {
            return;
        };
        if families.is_empty() {
            return;
        }
        let protocol = ProtocolKind::ALL[rng.next_below(4) as usize];
        let config = system_for(w, protocol);
        let report = run_engine(&config, &registry, &families).expect("engine runs");
        let replayed =
            lotec_core::replay::replay_trace(protocol, &report.trace, &registry, &config);
        assert_eq!(report.traffic.total(), replayed.total());
    });
}

/// Invariant 7: deadlock detection is sound and complete on the family
/// waits-for graph. For random lock-table states built through real
/// acquire/pre-commit operations, [`find_deadlock_cycle`] reports a cycle
/// iff an independently reconstructed waits-for graph has one; the
/// reported cycle's edges all exist in that graph; and the chosen victim
/// lies on the cycle.
#[test]
fn deadlock_detector_victim_iff_cycle() {
    use std::collections::{BTreeMap, BTreeSet};

    use lotec::txn::{
        find_deadlock_cycle, pick_victim, Acquire, LockMode, LockTable, TxnId, TxnTree,
    };

    /// Independent reconstruction of the family-level waits-for graph from
    /// the table's public entry state: a waiting family is blocked by every
    /// conflicting holder or retainer of another family, and by every
    /// family queued ahead of it (FIFO ordering).
    fn rebuild_graph(table: &LockTable, tree: &TxnTree) -> BTreeMap<TxnId, BTreeSet<TxnId>> {
        let mut graph: BTreeMap<TxnId, BTreeSet<TxnId>> = BTreeMap::new();
        for entry in table.entries() {
            let waiting: Vec<_> = entry.waiting().collect();
            for (i, fw) in waiting.iter().enumerate() {
                let mut blockers = BTreeSet::new();
                for req in &fw.requests {
                    for h in entry.holders() {
                        let holder_family = tree.root_of(h.txn);
                        if holder_family != fw.family && h.mode.conflicts_with(req.mode) {
                            blockers.insert(holder_family);
                        }
                    }
                    for (r, m) in entry.retainers() {
                        let retainer_family = tree.root_of(r);
                        if retainer_family != fw.family && m.conflicts_with(req.mode) {
                            blockers.insert(retainer_family);
                        }
                    }
                }
                for earlier in &waiting[..i] {
                    blockers.insert(earlier.family);
                }
                if !blockers.is_empty() {
                    graph.entry(fw.family).or_default().extend(blockers);
                }
            }
        }
        graph
    }

    /// Cycle existence via Kahn's algorithm (a deliberately different
    /// algorithm from the detector's DFS): the graph is acyclic iff every
    /// node can be peeled in topological order.
    fn has_cycle(graph: &BTreeMap<TxnId, BTreeSet<TxnId>>) -> bool {
        let mut nodes: BTreeSet<TxnId> = graph.keys().copied().collect();
        for succs in graph.values() {
            nodes.extend(succs.iter().copied());
        }
        let mut indegree: BTreeMap<TxnId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        for succs in graph.values() {
            for &s in succs {
                *indegree.get_mut(&s).expect("known node") += 1;
            }
        }
        let mut queue: Vec<TxnId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut peeled = 0usize;
        while let Some(n) = queue.pop() {
            peeled += 1;
            for &s in graph.get(&n).map(|s| s.iter()).into_iter().flatten() {
                let d = indegree.get_mut(&s).expect("known node");
                *d -= 1;
                if *d == 0 {
                    queue.push(s);
                }
            }
        }
        peeled < nodes.len()
    }

    let mut rng = SimRng::seed_from_u64(0x0D_EAD_10C);
    let mut cyclic_cases = 0u32;
    let mut acyclic_cases = 0u32;
    for _ in 0..250 {
        let num_nodes = 4u32;
        let num_objects = rng.range_inclusive(2, 6) as u32;
        let num_families = rng.range_inclusive(2, 8) as usize;
        let mut table = LockTable::new();
        for o in 0..num_objects {
            table.register_object(ObjectId::new(o), 1, NodeId::new(o % num_nodes));
        }
        let mut tree = TxnTree::new();
        let roots: Vec<TxnId> = (0..num_families)
            .map(|i| tree.begin_root(NodeId::new(i as u32 % num_nodes)))
            .collect();
        // A family with a queued request is blocked and issues nothing
        // further (one outstanding request, as in the engine).
        let mut blocked = vec![false; num_families];
        for _ in 0..rng.range_inclusive(4, 20) {
            let f = rng.next_below(num_families as u64) as usize;
            if blocked[f] {
                continue;
            }
            let object = ObjectId::new(rng.next_below(u64::from(num_objects)) as u32);
            let mode = if rng.chance(0.6) {
                LockMode::Write
            } else {
                LockMode::Read
            };
            if rng.chance(0.35) {
                // Acquire through a child and pre-commit it on success, so
                // the lock surfaces as a *retained* lock of the family.
                let child = tree.begin_child(roots[f]);
                match table.acquire(object, child, mode, &tree) {
                    Ok(Acquire::Queued) => blocked[f] = true,
                    Ok(_) => {
                        table.release_pre_commit(child, &tree);
                        tree.pre_commit(child);
                    }
                    Err(_) => tree.abort(child),
                }
            } else if let Ok(Acquire::Queued) = table.acquire(object, roots[f], mode, &tree) {
                blocked[f] = true;
            }
        }

        let graph = rebuild_graph(&table, &tree);
        let cycle = find_deadlock_cycle(&table, &tree);
        assert_eq!(
            cycle.is_some(),
            has_cycle(&graph),
            "detector and independent cycle check disagree"
        );
        match cycle {
            None => acyclic_cases += 1,
            Some(cycle) => {
                cyclic_cases += 1;
                assert!(!cycle.is_empty());
                // Every consecutive hop (wrapping) is a real waits-for edge.
                for (i, &from) in cycle.iter().enumerate() {
                    let to = cycle[(i + 1) % cycle.len()];
                    assert!(
                        graph.get(&from).is_some_and(|s| s.contains(&to)),
                        "reported cycle edge {from:?} -> {to:?} not in the waits-for graph"
                    );
                }
                // The victim is on the cycle (and is its youngest member).
                let victim = pick_victim(&cycle);
                assert!(cycle.contains(&victim), "victim must lie on the cycle");
                assert_eq!(Some(victim), cycle.iter().copied().max());
            }
        }
    }
    // The sampled state space must actually exercise both outcomes.
    assert!(cyclic_cases > 10, "too few cyclic samples: {cyclic_cases}");
    assert!(
        acyclic_cases > 10,
        "too few acyclic samples: {acyclic_cases}"
    );
}
