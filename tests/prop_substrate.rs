//! Property-based tests of the substrate crates' data structures: set
//! algebra, layout arithmetic, recovery round-trips, the lock table's
//! structural invariants, and page-map coherence.

use proptest::prelude::*;

use lotec::mem::{ObjectId, PageId, PageIndex, PageMap, PageStore, Recovery, ShadowPages, UndoLog, Version};
use lotec::object::{ClassBuilder, PageSet};
use lotec::sim::{EventQueue, NodeId, SimRng, SimTime};
use lotec::txn::{LockMode, LockTable, TxnTree};

fn pageset(max: u16) -> impl Strategy<Value = PageSet> {
    prop::collection::vec(0..max, 0..12)
        .prop_map(|v| v.into_iter().map(PageIndex::new).collect())
}

proptest! {
    #[test]
    fn pageset_algebra_laws(a in pageset(64), b in pageset(64), c in pageset(64)) {
        // Commutativity and associativity of union.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        // Intersection distributes over union.
        prop_assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
        // Difference + intersection partition the set.
        let diff = a.difference(&b);
        let inter = a.intersection(&b);
        prop_assert_eq!(diff.union(&inter), a.clone());
        prop_assert!(diff.intersection(&inter).is_empty());
        // Subset relations.
        prop_assert!(inter.is_subset(&a) && inter.is_subset(&b));
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn pageset_iteration_sorted_and_consistent(a in pageset(300)) {
        let items: Vec<u16> = a.iter().map(|p| p.get()).collect();
        let mut sorted = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&items, &sorted);
        prop_assert_eq!(items.len(), a.len());
        for p in &items {
            prop_assert!(a.contains(PageIndex::new(*p)));
        }
    }

    #[test]
    fn layout_covers_every_attribute_exactly(sizes in prop::collection::vec(1u32..5000, 1..10),
                                             page_size in 64u32..1024) {
        let mut builder = ClassBuilder::new("T");
        for (i, &s) in sizes.iter().enumerate() {
            builder = builder.attribute(format!("a{i}"), s);
        }
        let class = builder
            .method("noop", |m| m.path(|p| p.reads(&["a0"])))
            .build();
        let layout = lotec::object::Layout::of(&class, page_size);
        // Total bytes = sum of attribute sizes; page count covers them.
        let total: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
        prop_assert_eq!(layout.total_bytes(), total);
        prop_assert!(u64::from(layout.num_pages()) * u64::from(page_size) >= total);
        // The union of all attributes' pages is exactly all pages.
        let mut union = PageSet::new();
        for i in 0..sizes.len() {
            union.union_with(&layout.pages_of_attr(lotec::object::AttrIndex::new(i as u16)));
        }
        prop_assert_eq!(union, layout.all_pages());
    }

    #[test]
    fn recovery_rollback_is_exact_inverse(ops in prop::collection::vec((0u16..8, 1u64..1000), 1..40),
                                          use_shadow in any::<bool>()) {
        let object = ObjectId::new(0);
        let mut store = PageStore::new(64);
        // Pre-populate with distinct content.
        for p in 0..8u16 {
            store.install(PageId::new(object, p), Version::new(1), {
                let mut d = vec![0u8; 64];
                d[..8].copy_from_slice(&(p as u64 + 100).to_le_bytes());
                d
            });
        }
        let before: Vec<u64> = (0..8u16).map(|p| store.chain(PageId::new(object, p))).collect();
        let mut rec: Box<dyn Recovery> = if use_shadow {
            Box::new(ShadowPages::new())
        } else {
            Box::new(UndoLog::new())
        };
        for &(page, stamp) in &ops {
            let pid = PageId::new(object, page);
            rec.before_write(7, &store, pid);
            store.apply_stamp(pid, stamp);
        }
        rec.rollback(7, &mut store);
        let after: Vec<u64> = (0..8u16).map(|p| store.chain(PageId::new(object, p))).collect();
        prop_assert_eq!(before, after);
        for p in 0..8u16 {
            prop_assert!(!store.is_dirty(PageId::new(object, p)));
            prop_assert_eq!(store.version_of(PageId::new(object, p)), Some(Version::new(1)));
        }
    }

    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    #[test]
    fn rng_range_inclusive_uniform_bounds(seed in any::<u64>(), lo in 0u64..100, span in 0u64..100) {
        let mut rng = SimRng::seed_from_u64(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let v = rng.range_inclusive(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn page_map_versions_monotone_and_owned(updates in prop::collection::vec((0u16..6, 0u32..4), 0..60)) {
        let mut map = PageMap::new(6, NodeId::new(0));
        let mut expect = [0u64; 6];
        for &(page, node) in &updates {
            let v = map.record_update(PageIndex::new(page), NodeId::new(node));
            expect[page as usize] += 1;
            prop_assert_eq!(v.get(), expect[page as usize]);
        }
        for p in 0..6u16 {
            let loc = map.location(PageIndex::new(p));
            prop_assert_eq!(loc.version.get(), expect[p as usize]);
            if expect[p as usize] == 0 {
                prop_assert_eq!(loc.node, NodeId::new(0), "untouched pages stay at home");
            }
        }
    }

    /// The lock table's structural invariants survive arbitrary legal
    /// operation sequences: acquire from random roots, pre-commit chains,
    /// aborts and root commits.
    #[test]
    fn lock_table_invariants_under_random_ops(script in prop::collection::vec((0u32..6, 0u8..4, any::<bool>()), 1..60)) {
        let mut tree = TxnTree::new();
        let mut table = LockTable::new();
        for i in 0..6 {
            table.register_object(ObjectId::new(i), 2, NodeId::new(0));
        }
        let mut live_roots: Vec<lotec::txn::TxnId> = Vec::new();
        for (obj, action, flag) in script {
            match action {
                // Start a root and try one acquisition.
                0 => {
                    let root = tree.begin_root(NodeId::new(obj % 4));
                    let mode = if flag { LockMode::Write } else { LockMode::Read };
                    let _ = table.acquire(ObjectId::new(obj), root, mode, &tree);
                    live_roots.push(root);
                }
                // Grow a child under a random live root and acquire. A
                // real family has one outstanding request at a time, so a
                // queued (or recursion-rejected) child aborts instead of
                // pre-committing with a dangling request.
                1 => {
                    if let Some(&root) = live_roots.last() {
                        if tree.state(root) == lotec::txn::TxnState::Active {
                            let child = tree.begin_child(root);
                            match table.acquire(ObjectId::new(obj), child, LockMode::Write, &tree) {
                                Ok(acq) if acq.is_granted() => {
                                    tree.pre_commit(child);
                                    table.release_pre_commit(child, &tree);
                                }
                                _ => {
                                    table.release_abort(child, &tree);
                                    table.cancel_family_waiters(tree.root_of(child));
                                    tree.abort(child);
                                }
                            }
                        }
                    }
                }
                // Commit the oldest live root.
                2 => {
                    if !live_roots.is_empty() {
                        let root = live_roots.remove(0);
                        if tree.state(root) == lotec::txn::TxnState::Active {
                            // Abort instead when it still waits somewhere.
                            for t in tree.active_subtree_post_order(root) {
                                table.release_abort(t, &tree);
                                tree.abort(t);
                            }
                            table.cancel_family_waiters(root);
                        }
                    }
                }
                // Abort the newest live root.
                _ => {
                    if let Some(root) = live_roots.pop() {
                        if tree.state(root) == lotec::txn::TxnState::Active {
                            for t in tree.active_subtree_post_order(root) {
                                table.release_abort(t, &tree);
                                tree.abort(t);
                            }
                            table.cancel_family_waiters(root);
                        }
                    }
                }
            }
            prop_assert!(table.check_invariants(&tree).is_ok(),
                "{:?}", table.check_invariants(&tree));
        }
    }
}
