//! Randomized-property tests of the substrate crates' data structures:
//! set algebra, layout arithmetic, recovery round-trips, the lock table's
//! structural invariants, and page-map coherence. Inputs are drawn from a
//! seeded [`SimRng`] stream, so every run checks the same deterministic
//! sample.

use lotec::mem::{
    ObjectId, PageId, PageIndex, PageMap, PageStore, Recovery, ShadowPages, UndoLog, Version,
};
use lotec::object::{ClassBuilder, PageSet};
use lotec::sim::{EventQueue, NodeId, SimRng, SimTime};
use lotec::txn::{LockMode, LockTable, TxnTree};

const CASES: u64 = 64;

fn cases(stream: u64) -> impl Iterator<Item = SimRng> {
    let root = SimRng::seed_from_u64(0x5B57_4A7E ^ stream);
    (0..CASES).map(move |i| root.fork(i))
}

fn random_pageset(rng: &mut SimRng, max: u16) -> PageSet {
    let len = rng.next_below(12);
    (0..len)
        .map(|_| PageIndex::new(rng.next_below(max as u64) as u16))
        .collect()
}

#[test]
fn pageset_algebra_laws() {
    for mut rng in cases(1) {
        let a = random_pageset(&mut rng, 64);
        let b = random_pageset(&mut rng, 64);
        let c = random_pageset(&mut rng, 64);
        // Commutativity and associativity of union.
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        // Intersection distributes over union.
        assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
        // Difference + intersection partition the set.
        let diff = a.difference(&b);
        let inter = a.intersection(&b);
        assert_eq!(diff.union(&inter), a.clone());
        assert!(diff.intersection(&inter).is_empty());
        // Subset relations.
        assert!(inter.is_subset(&a) && inter.is_subset(&b));
        assert!(a.is_subset(&a.union(&b)));
    }
}

#[test]
fn pageset_iteration_sorted_and_consistent() {
    for mut rng in cases(2) {
        let a = random_pageset(&mut rng, 300);
        let items: Vec<u16> = a.iter().map(|p| p.get()).collect();
        let mut sorted = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(&items, &sorted);
        assert_eq!(items.len(), a.len());
        for p in &items {
            assert!(a.contains(PageIndex::new(*p)));
        }
    }
}

#[test]
fn layout_covers_every_attribute_exactly() {
    for mut rng in cases(3) {
        let sizes: Vec<u32> = (0..rng.range_inclusive(1, 9))
            .map(|_| rng.range_inclusive(1, 4999) as u32)
            .collect();
        let page_size = rng.range_inclusive(64, 1023) as u32;
        let mut builder = ClassBuilder::new("T");
        for (i, &s) in sizes.iter().enumerate() {
            builder = builder.attribute(format!("a{i}"), s);
        }
        let class = builder
            .method("noop", |m| m.path(|p| p.reads(&["a0"])))
            .build();
        let layout = lotec::object::Layout::of(&class, page_size);
        // Total bytes = sum of attribute sizes; page count covers them.
        let total: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
        assert_eq!(layout.total_bytes(), total);
        assert!(u64::from(layout.num_pages()) * u64::from(page_size) >= total);
        // The union of all attributes' pages is exactly all pages.
        let mut union = PageSet::new();
        for i in 0..sizes.len() {
            union.union_with(&layout.pages_of_attr(lotec::object::AttrIndex::new(i as u16)));
        }
        assert_eq!(union, layout.all_pages());
    }
}

#[test]
fn recovery_rollback_is_exact_inverse() {
    for mut rng in cases(4) {
        let ops: Vec<(u16, u64)> = (0..rng.range_inclusive(1, 39))
            .map(|_| (rng.next_below(8) as u16, rng.range_inclusive(1, 999)))
            .collect();
        let use_shadow = rng.chance(0.5);
        let object = ObjectId::new(0);
        let mut store = PageStore::new(64);
        // Pre-populate with distinct content.
        for p in 0..8u16 {
            store.install(PageId::new(object, p), Version::new(1), {
                let mut d = vec![0u8; 64];
                d[..8].copy_from_slice(&(p as u64 + 100).to_le_bytes());
                d
            });
        }
        let before: Vec<u64> = (0..8u16)
            .map(|p| store.chain(PageId::new(object, p)))
            .collect();
        let mut rec: Box<dyn Recovery> = if use_shadow {
            Box::new(ShadowPages::new())
        } else {
            Box::new(UndoLog::new())
        };
        for &(page, stamp) in &ops {
            let pid = PageId::new(object, page);
            rec.before_write(7, &store, pid);
            store.apply_stamp(pid, stamp);
        }
        rec.rollback(7, &mut store);
        let after: Vec<u64> = (0..8u16)
            .map(|p| store.chain(PageId::new(object, p)))
            .collect();
        assert_eq!(before, after);
        for p in 0..8u16 {
            assert!(!store.is_dirty(PageId::new(object, p)));
            assert_eq!(
                store.version_of(PageId::new(object, p)),
                Some(Version::new(1))
            );
        }
    }
}

#[test]
fn event_queue_is_a_stable_priority_queue() {
    for mut rng in cases(5) {
        let times: Vec<u64> = (0..rng.range_inclusive(1, 99))
            .map(|_| rng.next_below(1000))
            .collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }
}

#[test]
fn rng_range_inclusive_uniform_bounds() {
    for mut rng in cases(6) {
        let seed = rng.next_u64();
        let lo = rng.next_below(100);
        let span = rng.next_below(100);
        let mut inner = SimRng::seed_from_u64(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let v = inner.range_inclusive(lo, hi);
            assert!((lo..=hi).contains(&v));
        }
    }
}

#[test]
fn page_map_versions_monotone_and_owned() {
    for mut rng in cases(7) {
        let updates: Vec<(u16, u32)> = (0..rng.next_below(60))
            .map(|_| (rng.next_below(6) as u16, rng.next_below(4) as u32))
            .collect();
        let mut map = PageMap::new(6, NodeId::new(0));
        let mut expect = [0u64; 6];
        for &(page, node) in &updates {
            let v = map.record_update(PageIndex::new(page), NodeId::new(node));
            expect[page as usize] += 1;
            assert_eq!(v.get(), expect[page as usize]);
        }
        for p in 0..6u16 {
            let loc = map.location(PageIndex::new(p));
            assert_eq!(loc.version.get(), expect[p as usize]);
            if expect[p as usize] == 0 {
                assert_eq!(loc.node, NodeId::new(0), "untouched pages stay at home");
            }
        }
    }
}

/// The lock table's structural invariants survive arbitrary legal
/// operation sequences: acquire from random roots, pre-commit chains,
/// aborts and root commits.
#[test]
fn lock_table_invariants_under_random_ops() {
    for mut rng in cases(8) {
        let script: Vec<(u32, u8, bool)> = (0..rng.range_inclusive(1, 59))
            .map(|_| {
                (
                    rng.next_below(6) as u32,
                    rng.next_below(4) as u8,
                    rng.chance(0.5),
                )
            })
            .collect();
        let mut tree = TxnTree::new();
        let mut table = LockTable::new();
        for i in 0..6 {
            table.register_object(ObjectId::new(i), 2, NodeId::new(0));
        }
        let mut live_roots: Vec<lotec::txn::TxnId> = Vec::new();
        for (obj, action, flag) in script {
            match action {
                // Start a root and try one acquisition.
                0 => {
                    let root = tree.begin_root(NodeId::new(obj % 4));
                    let mode = if flag {
                        LockMode::Write
                    } else {
                        LockMode::Read
                    };
                    let _ = table.acquire(ObjectId::new(obj), root, mode, &tree);
                    live_roots.push(root);
                }
                // Grow a child under a random live root and acquire. A
                // real family has one outstanding request at a time, so a
                // queued (or recursion-rejected) child aborts instead of
                // pre-committing with a dangling request.
                1 => {
                    if let Some(&root) = live_roots.last() {
                        if tree.state(root) == lotec::txn::TxnState::Active {
                            let child = tree.begin_child(root);
                            match table.acquire(ObjectId::new(obj), child, LockMode::Write, &tree) {
                                Ok(acq) if acq.is_granted() => {
                                    tree.pre_commit(child);
                                    table.release_pre_commit(child, &tree);
                                }
                                _ => {
                                    table.release_abort(child, &tree);
                                    table.cancel_family_waiters(tree.root_of(child), &tree);
                                    tree.abort(child);
                                }
                            }
                        }
                    }
                }
                // Commit the oldest live root.
                2 => {
                    if !live_roots.is_empty() {
                        let root = live_roots.remove(0);
                        if tree.state(root) == lotec::txn::TxnState::Active {
                            // Abort instead when it still waits somewhere.
                            for t in tree.active_subtree_post_order(root) {
                                table.release_abort(t, &tree);
                                tree.abort(t);
                            }
                            table.cancel_family_waiters(root, &tree);
                        }
                    }
                }
                // Abort the newest live root.
                _ => {
                    if let Some(root) = live_roots.pop() {
                        if tree.state(root) == lotec::txn::TxnState::Active {
                            for t in tree.active_subtree_post_order(root) {
                                table.release_abort(t, &tree);
                                tree.abort(t);
                            }
                            table.cancel_family_waiters(root, &tree);
                        }
                    }
                }
            }
            assert!(
                table.check_invariants(&tree).is_ok(),
                "{:?}",
                table.check_invariants(&tree)
            );
        }
    }
}
