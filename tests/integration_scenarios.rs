//! Oracle-checked integration: one quick-tier cell of every workload-zoo
//! family through the engine under all four protocols.
//!
//! Each run must be serializable (the oracle replays the trace against
//! the final content chains) and must meet the scenario's own declared
//! success criteria — the same bounds the `scenarios` bench matrix
//! enforces, checked here in the plain test suite so a regression fails
//! `cargo test` before it fails a bench gate.

use lotec_core::engine::run_engine;
use lotec_core::{oracle, ProtocolKind};
use lotec_workload::zoo::{self, Tier};

#[test]
fn quick_cells_are_serializable_and_meet_criteria() {
    for scenario in zoo::all(Tier::Quick) {
        let (registry, families) = scenario
            .generate()
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", scenario.name()));
        assert!(
            families.len() as u32 >= scenario.config.num_families * 3 / 4,
            "{}: too many skipped draws ({}/{})",
            scenario.name(),
            families.len(),
            scenario.config.num_families
        );
        for protocol in ProtocolKind::ALL {
            let config = scenario.cell_config(protocol, false);
            let report = run_engine(&config, &registry, &families)
                .unwrap_or_else(|e| panic!("{} {protocol}: {e}", scenario.name()));
            oracle::verify(&report)
                .unwrap_or_else(|e| panic!("{} {protocol}: oracle: {e}", scenario.name()));
            let failures = scenario.criteria.evaluate(families.len(), &report.stats);
            assert!(
                failures.is_empty(),
                "{} {protocol}: success criteria violated: {failures:?}",
                scenario.name()
            );
            // The memory-flat cell config must really drop the per-family
            // rows — the one per-transaction buffer the stats can shed.
            assert!(report.stats.phases.per_family.is_empty());
        }
    }
}
