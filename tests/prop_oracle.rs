//! Negative testing of the serializability oracle: a checker that cannot
//! fail cannot certify anything. These tests take genuinely correct runs,
//! corrupt them in targeted ways, and assert the oracle rejects every
//! corruption.

use lotec::prelude::*;
use lotec::sim::SimRng;
use lotec_core::engine::{FamilyOp, RunReport};
use lotec_mem::{ObjectId, PageIndex};

fn healthy_report(seed: u64) -> RunReport {
    let scenario = lotec::workload::presets::quick(lotec::workload::presets::fig2());
    let (registry, families) = scenario.generate().expect("generates");
    let mut config = scenario.system_config();
    config.seed = seed;
    let report = run_engine(&config, &registry, &families).expect("runs");
    oracle::verify(&report).expect("healthy run verifies");
    report
}

/// Indices of committed families that performed at least one write.
fn writer_indices(report: &RunReport) -> Vec<usize> {
    report
        .committed
        .iter()
        .enumerate()
        .filter(|(_, f)| f.ops.iter().any(|op| matches!(op, FamilyOp::Write { .. })))
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn oracle_rejects_flipped_final_chain() {
    let mut report = healthy_report(1);
    let key = *report
        .final_chains
        .iter()
        .find(|(_, &c)| c != 0)
        .expect("some page was written")
        .0;
    *report.final_chains.get_mut(&key).expect("key exists") ^= 0xDEAD_BEEF;
    assert!(
        oracle::verify(&report).is_err(),
        "corrupted final state must be caught"
    );
}

#[test]
fn oracle_rejects_swapped_commit_order_of_conflicting_writers() {
    let mut report = healthy_report(2);
    // Find two committed writer families touching the same page and swap
    // their commit order: the chains become inconsistent with the serial
    // order the oracle replays.
    let writers = writer_indices(&report);
    let mut found = None;
    'outer: for (a_pos, &a) in writers.iter().enumerate() {
        for &b in &writers[a_pos + 1..] {
            let pages = |i: usize| -> Vec<(ObjectId, PageIndex)> {
                report.committed[i]
                    .ops
                    .iter()
                    .filter_map(|op| match op {
                        FamilyOp::Write { object, page, .. } => Some((*object, *page)),
                        _ => None,
                    })
                    .collect()
            };
            let pa = pages(a);
            if pages(b).iter().any(|p| pa.contains(p)) {
                found = Some((a, b));
                break 'outer;
            }
        }
    }
    let Some((a, b)) = found else {
        // High-contention fig2 always conflicts, but guard anyway.
        panic!("expected conflicting writers in a high-contention workload");
    };
    report.committed.swap(a, b);
    assert!(
        oracle::verify(&report).is_err(),
        "reordered conflicting commits must be caught"
    );
}

#[test]
fn oracle_rejects_dropped_write() {
    let mut report = healthy_report(3);
    let idx = *writer_indices(&report).first().expect("writers exist");
    let pos = report.committed[idx]
        .ops
        .iter()
        .position(|op| matches!(op, FamilyOp::Write { .. }))
        .expect("writer has a write");
    report.committed[idx].ops.remove(pos);
    assert!(
        oracle::verify(&report).is_err(),
        "a lost write must be caught"
    );
}

/// Any single stamp mutation in any committed write is detected. Twelve
/// deterministic cases drawn from a seeded [`SimRng`] stream.
#[test]
fn oracle_rejects_any_stamp_mutation() {
    let mut rng = SimRng::seed_from_u64(0x0AC1_E57A);
    for _ in 0..12 {
        let mut report = healthy_report(rng.next_below(4));
        let writers = writer_indices(&report);
        assert!(!writers.is_empty(), "fig2 always has writers");
        let fam = writers[rng.next_below(writers.len() as u64) as usize];
        let write_positions: Vec<usize> = report.committed[fam]
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, FamilyOp::Write { .. }))
            .map(|(i, _)| i)
            .collect();
        let pos = write_positions[rng.next_below(write_positions.len() as u64) as usize];
        let bit = rng.next_below(64) as u32;
        if let FamilyOp::Write { stamp, .. } = &mut report.committed[fam].ops[pos] {
            *stamp ^= 1u64 << bit;
        }
        assert!(
            oracle::verify(&report).is_err(),
            "mutated stamp must be caught"
        );
    }
}

/// Any read-chain mutation is detected. Twelve deterministic cases drawn
/// from a seeded [`SimRng`] stream.
#[test]
fn oracle_rejects_any_read_mutation() {
    let mut rng = SimRng::seed_from_u64(0x0AC1_E57B);
    for _ in 0..12 {
        let mut report = healthy_report(rng.next_below(4));
        let readers: Vec<(usize, usize)> = report
            .committed
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| {
                f.ops
                    .iter()
                    .enumerate()
                    .filter(|(_, op)| matches!(op, FamilyOp::Read { .. }))
                    .map(move |(oi, _)| (fi, oi))
            })
            .collect();
        assert!(!readers.is_empty(), "fig2 always has readers");
        let (fi, oi) = readers[rng.next_below(readers.len() as u64) as usize];
        if let FamilyOp::Read { chain, .. } = &mut report.committed[fi].ops[oi] {
            *chain = chain.wrapping_add(1);
        }
        assert!(
            oracle::verify(&report).is_err(),
            "mutated read must be caught"
        );
    }
}
