//! End-to-end observability tests at the facade level: recording a trace
//! from a real engine run must not perturb the simulation, and the two
//! export formats must be faithful (JSONL losslessly, Chrome trace as
//! valid, monotonic JSON).

use lotec::obs::{chrome_trace, jsonl_decode, jsonl_encode, Json, ObsEventKind};
use lotec::prelude::*;

fn quickstart() -> (SystemConfig, ObjectRegistry, Vec<FamilySpec>) {
    let scenario = lotec::workload::presets::quick(lotec::workload::presets::fig2());
    let (registry, families) = scenario.generate().expect("generates");
    let config = scenario.system_config();
    (config, registry, families)
}

/// Recording a trace changes nothing observable about the run: every
/// `RunStats` counter and the traffic ledger totals are identical to the
/// no-op-sink run, on a quickstart-sized workload.
#[test]
fn recording_sink_does_not_perturb_the_simulation() {
    let (config, registry, families) = quickstart();
    let plain = run_engine(&config, &registry, &families).expect("plain run");
    let mut sink = RecordingSink::new();
    let probed =
        run_engine_with_probe(&config, &registry, &families, &mut sink).expect("probed run");
    assert!(!sink.is_empty(), "a real run must record events");

    // Counters, one by one (RunStats holds histograms, so no blanket Eq).
    let a = &plain.stats;
    let b = &probed.stats;
    assert_eq!(a.committed_families, b.committed_families);
    assert_eq!(a.aborted_families, b.aborted_families);
    assert_eq!(a.subtxn_aborts, b.subtxn_aborts);
    assert_eq!(a.deadlocks, b.deadlocks);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.demand_fetches, b.demand_fetches);
    assert_eq!(a.local_lock_grants, b.local_lock_grants);
    assert_eq!(a.global_lock_grants, b.global_lock_grants);
    assert_eq!(a.queued_lock_requests, b.queued_lock_requests);
    assert_eq!(a.prefetch_hits, b.prefetch_hits);
    assert_eq!(a.prefetch_saved, b.prefetch_saved);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_latency, b.total_latency);
    assert_eq!(a.phases.aggregate, b.phases.aggregate);
    assert_eq!(a.phases.per_family, b.phases.per_family);

    // The full schedule, final memory state and traffic ledger agree.
    assert_eq!(plain.trace, probed.trace);
    assert_eq!(plain.final_chains, probed.final_chains);
    assert_eq!(plain.traffic.total(), probed.traffic.total());
    assert_eq!(
        plain.traffic.ledger().total_time(NetworkConfig::default()),
        probed.traffic.ledger().total_time(NetworkConfig::default())
    );
}

/// JSONL encode/decode round-trips a real engine trace exactly.
#[test]
fn jsonl_round_trips_an_engine_trace() {
    let (config, registry, families) = quickstart();
    let mut sink = RecordingSink::new();
    run_engine_with_probe(&config, &registry, &families, &mut sink).expect("runs");
    let events = sink.into_events();
    assert!(
        events.len() > families.len(),
        "at least one event per family"
    );
    let text = jsonl_encode(&events);
    assert_eq!(text.lines().count(), events.len());
    let back = jsonl_decode(&text).expect("decodes");
    assert_eq!(events, back);
}

/// The Chrome trace built from a real run is valid JSON, has monotonically
/// non-decreasing `ts`, and contains at least one phase slice per
/// committed family — the shape Perfetto needs to load it.
#[test]
fn chrome_trace_is_valid_and_monotonic() {
    let (config, registry, families) = quickstart();
    let mut sink = RecordingSink::new();
    let report = run_engine_with_probe(&config, &registry, &families, &mut sink).expect("runs");
    let events = sink.into_events();
    let trace = chrome_trace(&events);

    // Survives a full render → re-parse cycle.
    let rendered = trace.render_pretty();
    assert_eq!(Json::parse(&rendered).expect("valid JSON"), trace);

    let items = trace
        .get("traceEvents")
        .expect("traceEvents")
        .as_array()
        .expect("array");
    let mut last_ts = f64::NEG_INFINITY;
    let mut slices = 0u64;
    let mut span_slices = 0u64;
    let mut families_with_slices = std::collections::BTreeSet::new();
    for item in items {
        let ts = item.get("ts").expect("ts").as_f64().expect("numeric ts");
        assert!(ts >= last_ts, "ts must be monotonic: {ts} < {last_ts}");
        last_ts = ts;
        if item.get("ph").and_then(|p| p.as_str()) == Some("X") {
            slices += 1;
            assert!(item.get("dur").expect("dur").as_f64().expect("numeric dur") >= 0.0);
            // Phase slices ride `tid = family`; span slices ride offset
            // sibling rows, so only the former count toward coverage.
            match item.get("cat").and_then(|c| c.as_str()) {
                Some("phase") => {
                    families_with_slices.extend(item.get("tid").and_then(lotec::obs::Json::as_u64));
                }
                Some("span") => span_slices += 1,
                other => panic!("unexpected slice category {other:?}"),
            }
        }
    }
    assert!(slices > 0, "a real run produces phase slices");
    assert!(span_slices > 0, "a real run produces span slices");
    assert_eq!(
        families_with_slices.len() as u64,
        report.stats.committed_families + report.stats.aborted_families,
        "every family gets at least one slice"
    );
}

/// The span tree built from a real run mirrors the transaction tree:
/// one root span per family attempt that reached execution, children
/// properly nested inside parents, and committed roots closed with a
/// commit outcome.
#[test]
fn span_tree_mirrors_transaction_families() {
    let (config, registry, families) = quickstart();
    let mut sink = RecordingSink::new();
    let report = run_engine_with_probe(&config, &registry, &families, &mut sink).expect("runs");
    let tree = lotec::obs::SpanTree::build(sink.events());
    assert!(!tree.is_empty(), "a real run opens spans");

    // Every committed family contributes at least one root span that
    // closed with outcome `commit`.
    let committed_roots = tree
        .roots()
        .iter()
        .filter(|&&id| {
            tree.get(id)
                .is_some_and(|s| s.outcome == Some(lotec::obs::SpanOutcome::Commit))
        })
        .count() as u64;
    assert_eq!(committed_roots, report.stats.committed_families);

    // Structural sanity: children nest inside their parents in time and
    // agree on the family.
    for span in tree.spans() {
        if let Some(parent) = span.parent.and_then(|p| tree.get(p)) {
            assert_eq!(parent.family, span.family);
            assert!(span.open >= parent.open);
            if let (Some(c), Some(p)) = (span.close, parent.close) {
                assert!(c <= p, "child must close before its parent");
            }
        }
    }
}

/// Critical paths extracted from a real run tile each committed family's
/// commit window exactly and agree with the engine's latency accounting.
#[test]
fn critical_paths_tile_commit_windows() {
    let (config, registry, families) = quickstart();
    let mut sink = RecordingSink::new();
    let report = run_engine_with_probe(&config, &registry, &families, &mut sink).expect("runs");
    let paths = lotec::obs::critical_paths(sink.events());
    assert_eq!(paths.len() as u64, report.stats.committed_families);

    let mut total = SimDuration::ZERO;
    for path in &paths {
        assert!(!path.edges.is_empty());
        // Edges tile the window: consecutive, gap-free, summing to the
        // end-to-end latency.
        let mut cursor = path.start;
        for edge in &path.edges {
            assert_eq!(edge.start, cursor, "edges must be contiguous");
            cursor = edge.end;
        }
        assert_eq!(cursor, path.end);
        assert_eq!(path.self_time.total(), path.latency());
        total += path.latency();
    }
    // Summed per-path latency is the engine's total latency.
    assert_eq!(total, report.stats.total_latency);
}

/// The trace's phase events replay to exactly the engine's own
/// phase-attributed accounting.
#[test]
fn trace_summary_agrees_with_engine_accounting() {
    let (config, registry, families) = quickstart();
    let mut sink = RecordingSink::new();
    let report = run_engine_with_probe(&config, &registry, &families, &mut sink).expect("runs");
    let summary = TraceSummary::of(sink.events());
    assert_eq!(summary.aggregate, report.stats.phases.aggregate);
    // Every recorded event kind census entry is non-zero by construction.
    assert!(summary.kind_counts.values().all(|&c| c > 0));
    let grants = sink
        .events()
        .iter()
        .filter(|e| matches!(e.kind, ObsEventKind::LockGranted { .. }))
        .count() as u64;
    // Immediate grants all emit; queued requests emit when (and only
    // when) a release eventually grants them, so cancelled waiters —
    // deadlock victims — account for any shortfall.
    let immediate = report.stats.local_lock_grants + report.stats.global_lock_grants;
    assert!(grants >= immediate);
    assert!(grants <= immediate + report.stats.queued_lock_requests);
}
