//! Property suite for the workload zoo generator.
//!
//! Random seeds, fixed laws: every scenario family must (1) generate
//! byte-identically from the same seed, (2) respect its own declared
//! structure — object references in range, tree depth/width within the
//! schema's bounds, arrival times monotone non-decreasing — and (3)
//! deliver the traffic share its zipf skew declares for the hot head.
//! The zoo is self-describing; these tests hold it to its description.

use lotec_core::spec::{validate_family, FamilySpec, InvocationSpec};
use lotec_sim::SimRng;
use lotec_workload::zoo::{self, Tier, ZooScenario};

fn reseeded(scenario: &ZooScenario, seed: u64) -> ZooScenario {
    let mut s = scenario.clone();
    s.config.seed = seed;
    s
}

fn depth(inv: &InvocationSpec) -> u32 {
    1 + inv.children.iter().map(depth).max().unwrap_or(0)
}

fn max_width(inv: &InvocationSpec) -> u32 {
    inv.children
        .iter()
        .map(max_width)
        .max()
        .unwrap_or(0)
        .max(inv.children.len() as u32)
}

fn max_object_index(inv: &InvocationSpec) -> u32 {
    inv.children
        .iter()
        .map(max_object_index)
        .max()
        .unwrap_or(0)
        .max(inv.object.index())
}

#[test]
fn same_seed_generates_byte_identical_workloads() {
    let mut rng = SimRng::seed_from_u64(0x2001);
    for scenario in zoo::all(Tier::Tiny) {
        for _ in 0..3 {
            let s = reseeded(&scenario, rng.next_below(u64::MAX));
            let (ra, fa) = s.generate().unwrap();
            let (rb, fb) = s.generate().unwrap();
            // FamilySpec equality is structural; the Debug rendering
            // additionally pins the byte-level presentation.
            assert_eq!(fa, fb, "{}", s.name());
            assert_eq!(
                format!("{fa:?}"),
                format!("{fb:?}"),
                "{}: debug rendering diverged",
                s.name()
            );
            assert_eq!(ra.num_objects(), rb.num_objects());
        }
    }
}

#[test]
fn different_seeds_generate_different_workloads() {
    for scenario in zoo::all(Tier::Tiny) {
        let (_, a) = reseeded(&scenario, 1).generate().unwrap();
        let (_, b) = reseeded(&scenario, 2).generate().unwrap();
        assert_ne!(a, b, "{}: seeds 1 and 2 collided", scenario.family);
    }
}

#[test]
fn structural_invariants_hold_over_random_seeds() {
    let mut rng = SimRng::seed_from_u64(0x2002);
    for scenario in zoo::all(Tier::Tiny) {
        for _ in 0..4 {
            let s = reseeded(&scenario, rng.next_below(u64::MAX));
            let (registry, families) = s.generate().unwrap();
            assert!(!families.is_empty(), "{}: no families generated", s.name());
            let sys = s.system_config();
            let num_objects = registry.num_objects() as u32;
            let mut last = None;
            for f in &families {
                // Core validation (receivers exist, methods/paths/sites
                // legal, nodes in range) — the generator's own contract.
                validate_family(f, &registry, &sys).unwrap();
                assert!(
                    max_object_index(&f.root) < num_objects,
                    "{}: object reference out of range",
                    s.name()
                );
                assert!(
                    depth(&f.root) <= s.declared_max_depth(),
                    "{}: depth {} over declared bound {}",
                    s.name(),
                    depth(&f.root),
                    s.declared_max_depth()
                );
                assert!(
                    max_width(&f.root) <= s.declared_max_width(),
                    "{}: width over declared bound",
                    s.name()
                );
                // Arrivals monotone non-decreasing in generation order.
                if let Some(prev) = last {
                    assert!(f.start >= prev, "{}: arrivals regressed", s.name());
                }
                last = Some(f.start);
            }
        }
    }
}

/// Empirical share of root receivers that land in `hot`.
fn hot_share(families: &[FamilySpec], hot: &[lotec_mem::ObjectId]) -> f64 {
    let hot: std::collections::BTreeSet<_> = hot.iter().copied().collect();
    let hits = families
        .iter()
        .filter(|f| hot.contains(&f.root.object))
        .count();
    hits as f64 / families.len().max(1) as f64
}

/// The top-1% head must receive the share the skew declares, within
/// tolerance — checked for a tenant-partitioned family and a flat one.
/// Migration scenarios are excluded: their hot set moves by design, so
/// phase-0's head only owns a fraction of the run.
#[test]
fn zipf_head_receives_declared_traffic_share() {
    for family in ["multi_tenant", "deep_trees", "wide_trees"] {
        let scenario = zoo::by_name(family, Tier::Quick).unwrap();
        assert_eq!(
            scenario.traffic.migration_phases, 1,
            "{family}: share check assumes a static hot set"
        );
        let (_, families) = scenario.generate().unwrap();
        let hot = scenario.hot_objects(0.01);
        let declared = scenario.expected_hot_share(0.01);
        let empirical = hot_share(&families, &hot);
        // The declared head share is a real signal, not a rounding
        // artifact: far above the 1% a uniform draw would give it.
        assert!(
            declared > 0.05,
            "{family}: declared share {declared:.3} too small to test"
        );
        assert!(
            (empirical - declared).abs() < 0.12,
            "{family}: empirical hot share {empirical:.3} vs declared \
             {declared:.3} (n={})",
            families.len()
        );
        assert!(
            empirical > 0.03,
            "{family}: hot head starved ({empirical:.3})"
        );
    }
}

/// Diurnal arrivals really are bursty: the largest inter-arrival gap
/// (an off-peak trough) dwarfs the median (peak spacing), much more so
/// than in the steady multi-tenant stream.
#[test]
fn diurnal_arrivals_are_burstier_than_steady() {
    let gaps = |families: &[FamilySpec]| {
        let mut g: Vec<u64> = families
            .windows(2)
            .map(|w| w[1].start.as_nanos() - w[0].start.as_nanos())
            .collect();
        g.sort_unstable();
        let median = g[g.len() / 2].max(1);
        let max = *g.last().unwrap();
        max as f64 / median as f64
    };
    let (_, diurnal) = zoo::by_name("diurnal_burst", Tier::Quick)
        .unwrap()
        .generate()
        .unwrap();
    let (_, steady) = zoo::by_name("multi_tenant", Tier::Quick)
        .unwrap()
        .generate()
        .unwrap();
    assert!(
        gaps(&diurnal) > 2.0 * gaps(&steady),
        "diurnal max/median gap ratio {:.1} should dwarf steady {:.1}",
        gaps(&diurnal),
        gaps(&steady)
    );
}
