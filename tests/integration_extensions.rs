//! The extension features (paper §6 future work) working together: per-
//! class protocols, DSD transfer granularity, multicast pushes, optimistic
//! lock prefetching and fault injection, all in one run.

use lotec::prelude::*;
use lotec_core::SystemConfig as Cfg;

fn everything_enabled(scenario: &lotec::workload::Scenario) -> Cfg {
    Cfg {
        dsd_transfers: true,
        multicast: true,
        lock_prefetch: true,
        ..scenario.system_config()
    }
    // Put the last class under RC so multicast has pushes to collapse.
    .with_class_protocol(
        ClassId::new(scenario.config.schema.num_classes - 1),
        ProtocolKind::ReleaseConsistency,
    )
}

#[test]
fn all_extensions_compose_serializably() {
    let scenario = lotec::workload::presets::quick(lotec::workload::presets::ablation_faults());
    let (registry, families) = scenario.generate().expect("generates");
    let config = everything_enabled(&scenario);
    let report = run_engine(&config, &registry, &families).expect("kitchen-sink run");
    oracle::verify(&report).expect("all extensions together stay serializable");
    assert!(report.stats.committed_families > 0);
    assert!(report.stats.subtxn_aborts > 0, "faults must fire");
}

#[test]
fn all_extensions_stay_deterministic() {
    let scenario = lotec::workload::presets::quick(lotec::workload::presets::fig3());
    let (registry, families) = scenario.generate().expect("generates");
    let config = everything_enabled(&scenario);
    let a = run_engine(&config, &registry, &families).expect("run a");
    let b = run_engine(&config, &registry, &families).expect("run b");
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.traffic.total(), b.traffic.total());
    assert_eq!(a.final_chains, b.final_chains);
}

#[test]
fn all_extensions_match_replay_accounting() {
    let scenario = lotec::workload::presets::quick(lotec::workload::presets::fig2());
    let (registry, families) = scenario.generate().expect("generates");
    let config = everything_enabled(&scenario);
    let report = run_engine(&config, &registry, &families).expect("runs");
    let replayed = lotec_core::replay::replay_run(&report.trace, &registry, &config);
    assert_eq!(report.traffic.total(), replayed.total());
}

#[test]
fn persisted_scenario_reproduces_full_pipeline_results() {
    use lotec::workload::persist;
    let scenario = lotec::workload::presets::quick(lotec::workload::presets::fig4());
    let json = persist::to_json(&scenario).expect("serializes");
    let reloaded = persist::from_json(&json).expect("deserializes");

    let run = |s: &lotec::workload::Scenario| {
        let (registry, families) = s.generate().expect("generates");
        let cmp = compare_protocols(&s.system_config(), &registry, &families).expect("runs");
        (
            cmp.total(ProtocolKind::Lotec),
            cmp.total(ProtocolKind::Otec),
            cmp.total(ProtocolKind::Cotec),
        )
    };
    assert_eq!(
        run(&scenario),
        run(&reloaded),
        "JSON roundtrip preserves every result"
    );
}

#[test]
fn dsd_never_increases_any_objects_bytes_on_the_same_schedule() {
    // Smaller DSD messages travel faster, so a *live* DSD engine run can
    // reach a different (equally valid) schedule. For an apples-to-apples
    // granularity claim, replay one fixed schedule under both sizings.
    let scenario = lotec::workload::presets::quick(lotec::workload::presets::fig2());
    let (registry, families) = scenario.generate().expect("generates");
    let base = scenario.system_config();
    let report = run_engine(&base, &registry, &families).expect("schedule run");
    let page = lotec_core::replay::replay_run(&report.trace, &registry, &base);
    let dsd_cfg = Cfg {
        dsd_transfers: true,
        ..base
    };
    let dsd = lotec_core::replay::replay_run(&report.trace, &registry, &dsd_cfg);
    assert!(
        dsd.total().bytes < page.total().bytes,
        "dsd must shave fragmentation"
    );
    assert_eq!(dsd.total().messages, page.total().messages);
    for inst in registry.objects() {
        let p = page.object(inst.id).bytes;
        let d = dsd.object(inst.id).bytes;
        assert!(d <= p, "{}: dsd {d} > page {p}", inst.id);
    }
}
