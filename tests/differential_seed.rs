//! Differential guard: the optimized engine must reproduce the seed
//! build's behaviour bit for bit.
//!
//! The hot-path overhaul (copy-on-write pages, dense page-indexed state,
//! deadlock-check gating) is an *optimization* — not one simulated result
//! may change. This suite pins golden fingerprints captured from the
//! pre-overhaul build: the final content chains, the scalar `RunStats`
//! counters, and the per-protocol transfer totals, across all four
//! protocols fault-free and under a sample of the chaos-suite seeds.
//!
//! To regenerate the table after an *intentional* behaviour change (a new
//! protocol rule, a workload change — never a perf PR), run
//! `LOTEC_PRINT_GOLDEN=1 cargo test --test differential_seed -- --nocapture`
//! and paste the printed rows over `GOLDEN`.

use lotec::prelude::*;
use lotec::sim::FaultPlan;
use lotec_core::config::FaultConfig;
use lotec_core::engine::RunReport;
use lotec_core::spec::demo_workload;
use lotec_core::AdaptiveConfig;
use lotec_mem::mix;
use lotec_workload::presets;

/// Chaos seeds sampled from the chaos suite's default stream
/// (`101 + 37 * i`).
const CHAOS_SAMPLE: [u64; 3] = [101, 138, 175];

/// One cell's behaviour fingerprint. All fields are exact — any change in
/// any simulated quantity moves at least one of them.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    committed: u64,
    makespan_ns: u64,
    total_messages: u64,
    total_bytes: u64,
    /// Every page's final content chain folded in deterministic order.
    chain_hash: u64,
    /// Every scalar `RunStats` counter (and the latency quantiles) folded
    /// in a fixed order.
    stats_hash: u64,
}

fn fingerprint(report: &RunReport) -> Fingerprint {
    let mut chain_hash = 0u64;
    for (&(object, page), &chain) in &report.final_chains {
        chain_hash = mix(chain_hash, u64::from(object.index()));
        chain_hash = mix(chain_hash, u64::from(page.get()));
        chain_hash = mix(chain_hash, chain);
    }
    let s = &report.stats;
    let mut stats_hash = 0u64;
    for v in [
        s.committed_families,
        s.aborted_families,
        s.subtxn_aborts,
        s.deadlocks,
        s.restarts,
        s.demand_fetches,
        s.local_lock_grants,
        s.global_lock_grants,
        s.queued_lock_requests,
        s.prefetch_hits,
        s.prefetch_saved.as_nanos(),
        s.retransmits,
        s.duplicates,
        s.crashes,
        s.crash_aborts,
        s.lock_timeouts,
        s.retransmit_wait.as_nanos(),
        s.makespan.as_nanos(),
        s.total_latency.as_nanos(),
        s.latency_quantile(0.5).map_or(0, |d| d.as_nanos()),
        s.latency_quantile(0.99).map_or(0, |d| d.as_nanos()),
        report
            .traffic
            .page_payload_bytes(&SystemConfig::default().sizes, 4096),
    ] {
        stats_hash = mix(stats_hash, v);
    }
    Fingerprint {
        committed: s.committed_families,
        makespan_ns: s.makespan.as_nanos(),
        total_messages: report.traffic.total().messages,
        total_bytes: report.traffic.total().bytes,
        chain_hash,
        stats_hash,
    }
}

/// The fault-free cells: all four protocols on the quick fig3 workload.
/// `adaptive = false` must reproduce the pre-adaptive build bit for bit;
/// `adaptive = true` pins the adaptive predictor's behaviour under its own
/// golden rows.
fn fig3_cell(protocol: ProtocolKind, adaptive: bool) -> Fingerprint {
    let scenario = presets::quick(presets::fig3());
    let (registry, families) = scenario.generate().expect("workload generates");
    let config = SystemConfig {
        protocol,
        seed: 0xF163,
        num_nodes: scenario.config.num_nodes,
        page_size: scenario.config.schema.page_size,
        adaptive: if adaptive {
            AdaptiveConfig::on()
        } else {
            AdaptiveConfig::default()
        },
        ..SystemConfig::default()
    };
    let report = run_engine(&config, &registry, &families).expect("fig3 run");
    oracle::verify(&report).expect("serializable");
    fingerprint(&report)
}

/// The chaos cells: lossy-link fault plan from the chaos suite over the
/// demo workload.
fn chaos_cell(protocol: ProtocolKind, seed: u64, adaptive: bool) -> Fingerprint {
    let faults = FaultConfig {
        plan: FaultPlan {
            drop_prob: 0.10 + 0.02 * (seed % 5) as f64,
            duplicate_prob: 0.05,
            delay_prob: 0.10,
            max_extra_delay: SimDuration::from_micros(25),
            rto: SimDuration::from_micros(50),
            crashes: Vec::new(),
        },
        ..FaultConfig::default()
    };
    let config = SystemConfig {
        protocol,
        seed,
        faults,
        adaptive: if adaptive {
            AdaptiveConfig::on()
        } else {
            AdaptiveConfig::default()
        },
        ..SystemConfig::default()
    };
    let (registry, families) = demo_workload(&config, seed);
    let report = run_engine(&config, &registry, &families).expect("chaos run");
    oracle::verify(&report).expect("serializable");
    fingerprint(&report)
}

/// The workload-zoo cells: one tiny-tier cell per scenario family, LOTEC
/// static. Pins the zoo *generator* (schema, traffic shaping, arrivals)
/// and the engine's behaviour on its output in one fingerprint.
fn zoo_cell(scenario: &lotec_workload::ZooScenario) -> Fingerprint {
    let (registry, families) = scenario.generate().expect("zoo workload generates");
    let config = scenario.cell_config(ProtocolKind::Lotec, false);
    let report = run_engine(&config, &registry, &families).expect("zoo run");
    oracle::verify(&report).expect("serializable");
    fingerprint(&report)
}

fn print_golden(label: &str, fp: &Fingerprint) {
    println!(
        "    (\"{label}\", Fingerprint {{ committed: {}, makespan_ns: {}, \
         total_messages: {}, total_bytes: {}, chain_hash: {:#018x}, \
         stats_hash: {:#018x} }}),",
        fp.committed,
        fp.makespan_ns,
        fp.total_messages,
        fp.total_bytes,
        fp.chain_hash,
        fp.stats_hash
    );
}

fn check(label: String, fp: Fingerprint) {
    if std::env::var("LOTEC_PRINT_GOLDEN").is_ok() {
        print_golden(&label, &fp);
        return;
    }
    let expected = GOLDEN
        .iter()
        .find(|(l, _)| *l == label)
        .unwrap_or_else(|| panic!("no golden row for {label}"));
    assert_eq!(
        fp, expected.1,
        "{label}: behaviour diverged from the seed build"
    );
}

#[test]
fn fig3_matches_seed_for_all_protocols() {
    for protocol in ProtocolKind::ALL {
        check(format!("fig3/{protocol}"), fig3_cell(protocol, false));
    }
}

#[test]
fn chaos_sample_matches_seed_for_all_protocols() {
    for protocol in ProtocolKind::ALL {
        for seed in CHAOS_SAMPLE {
            check(
                format!("chaos/{protocol}/{seed}"),
                chaos_cell(protocol, seed, false),
            );
        }
    }
}

/// Adaptive-prediction cells: LOTEC with the predictor enabled, pinned
/// under their own golden rows. Each cell is oracle-verified inside its
/// builder, so a golden match certifies both determinism and
/// serializability of the adaptive schedule.
#[test]
fn adaptive_cells_match_their_own_goldens() {
    check(
        "fig3/LOTEC+adaptive".to_string(),
        fig3_cell(ProtocolKind::Lotec, true),
    );
    for seed in CHAOS_SAMPLE {
        check(
            format!("chaos/LOTEC+adaptive/{seed}"),
            chaos_cell(ProtocolKind::Lotec, seed, true),
        );
    }
}

/// Workload-zoo cells: every scenario family's tiny tier under
/// LOTEC/static, pinned under its own golden row. A diverging row here
/// with the 20 rows above intact means the *zoo generator* changed, not
/// the engine.
#[test]
fn zoo_tiny_cells_match_their_goldens() {
    for scenario in lotec_workload::zoo::all(lotec_workload::Tier::Tiny) {
        check(format!("zoo/{}", scenario.family), zoo_cell(&scenario));
    }
}

/// Golden fingerprints captured from the pre-overhaul build.
#[rustfmt::skip]
const GOLDEN: &[(&str, Fingerprint)] = &[
    ("fig3/COTEC", Fingerprint { committed: 50, makespan_ns: 133668233, total_messages: 448, total_bytes: 4013000, chain_hash: 0xdb311cc69ef168bc, stats_hash: 0x46fa6409d501946d }),
    ("fig3/OTEC", Fingerprint { committed: 50, makespan_ns: 108651853, total_messages: 432, total_bytes: 2880552, chain_hash: 0xe3bd966d49e1a5d1, stats_hash: 0x65c665201cee7bad }),
    ("fig3/LOTEC", Fingerprint { committed: 50, makespan_ns: 88727313, total_messages: 501, total_bytes: 2651822, chain_hash: 0xc517c0f9cee501d8, stats_hash: 0x5149120633fe0116 }),
    ("fig3/RC", Fingerprint { committed: 50, makespan_ns: 61954713, total_messages: 658, total_bytes: 10719290, chain_hash: 0xdf6021209afa1cd1, stats_hash: 0xa09de8c99d0715a9 }),
    ("chaos/COTEC/101", Fingerprint { committed: 8, makespan_ns: 2846882, total_messages: 63, total_bytes: 163336, chain_hash: 0x9f5451439e5af275, stats_hash: 0x4460177283c61fd0 }),
    ("chaos/COTEC/138", Fingerprint { committed: 8, makespan_ns: 2551964, total_messages: 47, total_bytes: 101104, chain_hash: 0x3eebb50f137e013a, stats_hash: 0x0ac8eb44f8878659 }),
    ("chaos/COTEC/175", Fingerprint { committed: 8, makespan_ns: 2231753, total_messages: 40, total_bytes: 117136, chain_hash: 0xca80a0b0a80f2a3b, stats_hash: 0xa7b3915a4357755c }),
    ("chaos/OTEC/101", Fingerprint { committed: 8, makespan_ns: 1084725, total_messages: 52, total_bytes: 47660, chain_hash: 0x408f04c97c9de0d2, stats_hash: 0xa025322559a7b731 }),
    ("chaos/OTEC/138", Fingerprint { committed: 8, makespan_ns: 1857184, total_messages: 41, total_bytes: 51510, chain_hash: 0x336bca1d0a24d4c0, stats_hash: 0x07e92cfbd2c29229 }),
    ("chaos/OTEC/175", Fingerprint { committed: 8, makespan_ns: 1785980, total_messages: 34, total_bytes: 42836, chain_hash: 0xca80a0b0a80f2a3b, stats_hash: 0x4be8c780c3e5290f }),
    ("chaos/LOTEC/101", Fingerprint { committed: 8, makespan_ns: 989720, total_messages: 47, total_bytes: 18748, chain_hash: 0x6e4209f23eba80c2, stats_hash: 0x21f924b377cf06cc }),
    ("chaos/LOTEC/138", Fingerprint { committed: 8, makespan_ns: 979492, total_messages: 41, total_bytes: 39144, chain_hash: 0x3eebb50f137e013a, stats_hash: 0xfe71ef0884a8458d }),
    ("chaos/LOTEC/175", Fingerprint { committed: 8, makespan_ns: 1785980, total_messages: 32, total_bytes: 34526, chain_hash: 0xca80a0b0a80f2a3b, stats_hash: 0xcad4a99c2b0006dd }),
    ("chaos/RC/101", Fingerprint { committed: 8, makespan_ns: 1028128, total_messages: 70, total_bytes: 109950, chain_hash: 0x408f04c97c9de0d2, stats_hash: 0x566c9322345aafa4 }),
    ("chaos/RC/138", Fingerprint { committed: 8, makespan_ns: 1857184, total_messages: 50, total_bytes: 101074, chain_hash: 0x336bca1d0a24d4c0, stats_hash: 0x67640f72f6235dba }),
    ("chaos/RC/175", Fingerprint { committed: 8, makespan_ns: 1771480, total_messages: 41, total_bytes: 112912, chain_hash: 0xca80a0b0a80f2a3b, stats_hash: 0x93ef769d58ad9a4d }),
    // Adaptive-prediction cells (LOTEC + AdaptiveConfig::on()). The fig3
    // chain hash matches the static cell — same committed state, fewer
    // bytes moved.
    ("fig3/LOTEC+adaptive", Fingerprint { committed: 50, makespan_ns: 88697873, total_messages: 503, total_bytes: 2649860, chain_hash: 0xc517c0f9cee501d8, stats_hash: 0x18fe3323a3ab7645 }),
    ("chaos/LOTEC+adaptive/101", Fingerprint { committed: 8, makespan_ns: 989720, total_messages: 47, total_bytes: 18748, chain_hash: 0x6e4209f23eba80c2, stats_hash: 0x21f924b377cf06cc }),
    ("chaos/LOTEC+adaptive/138", Fingerprint { committed: 8, makespan_ns: 979492, total_messages: 41, total_bytes: 39140, chain_hash: 0x3eebb50f137e013a, stats_hash: 0x93dbb90348e7baf5 }),
    ("chaos/LOTEC+adaptive/175", Fingerprint { committed: 8, makespan_ns: 1784220, total_messages: 32, total_bytes: 34504, chain_hash: 0xca80a0b0a80f2a3b, stats_hash: 0xd623128a1cee7e8d }),
    // Workload-zoo tiny-tier cells, LOTEC static: pins the zoo generator
    // (tenancy, migration rotation, diurnal arrivals, tree shaping).
    ("zoo/multi_tenant", Fingerprint { committed: 60, makespan_ns: 9867217, total_messages: 345, total_bytes: 213062, chain_hash: 0x7fca76e70f8e6f0f, stats_hash: 0xbdb64dcf20bdf29d }),
    ("zoo/hotspot_migration", Fingerprint { committed: 48, makespan_ns: 4937062, total_messages: 321, total_bytes: 274366, chain_hash: 0xded1ccfae7488702, stats_hash: 0xfb79a7f0cee5a69c }),
    ("zoo/diurnal_burst", Fingerprint { committed: 40, makespan_ns: 5833876, total_messages: 224, total_bytes: 122044, chain_hash: 0xa229a22f9678c36a, stats_hash: 0x0fb52f2b68a872b1 }),
    ("zoo/deep_trees", Fingerprint { committed: 40, makespan_ns: 8591112, total_messages: 374, total_bytes: 328994, chain_hash: 0xbca735e1815906e6, stats_hash: 0x59c4543c6dec6360 }),
    ("zoo/wide_trees", Fingerprint { committed: 40, makespan_ns: 51958317, total_messages: 1319, total_bytes: 1101986, chain_hash: 0xb1d66e3d77441b0e, stats_hash: 0x5e2039a6e4a56f0b }),
    ("zoo/scaleout", Fingerprint { committed: 48, makespan_ns: 6143715, total_messages: 376, total_bytes: 214450, chain_hash: 0xe19f08fa3d0159d9, stats_hash: 0x36ac30b12ac4e9fc }),
];
