//! Engine edge cases: degenerate clusters, empty workloads, fault limits
//! and boundary behaviours the figure scenarios never hit.

use lotec::prelude::*;
use lotec_core::SystemConfig as Cfg;

fn two_object_registry(num_nodes: u32, page_size: u32) -> ObjectRegistry {
    let class = ClassBuilder::new("Thing")
        .attribute("x", page_size * 2)
        .method("bump", |m| m.path(|p| p.reads(&["x"]).writes(&["x"])))
        .method("peek", |m| m.path(|p| p.reads(&["x"])))
        .build();
    ObjectRegistry::build(
        &[class],
        &[
            (ClassId::new(0), NodeId::new(0)),
            (ClassId::new(0), NodeId::new(1 % num_nodes)),
        ],
        page_size,
    )
    .expect("registry builds")
}

fn family(node: u32, start_us: u64, object: u32, method: u32) -> FamilySpec {
    FamilySpec {
        node: NodeId::new(node),
        start: SimTime::from_micros(start_us),
        root: InvocationSpec::leaf(ObjectId::new(object), MethodId::new(method), PathId::new(0)),
    }
}

#[test]
fn empty_workload_is_a_clean_noop() {
    let config = Cfg::default();
    let registry = two_object_registry(config.num_nodes, config.page_size);
    let report = run_engine(&config, &registry, &[]).expect("empty run");
    assert_eq!(report.stats.committed_families, 0);
    assert_eq!(report.traffic.total().messages, 0);
    assert!(report.trace.is_empty());
    oracle::verify(&report).expect("vacuously serializable");
    // Final chains exist (all zero) for every page of every object.
    assert_eq!(report.final_chains.len(), 4);
    assert!(report.final_chains.values().all(|&c| c == 0));
}

#[test]
fn single_node_cluster_sends_no_messages() {
    let config = Cfg {
        num_nodes: 1,
        ..Cfg::default()
    };
    let registry = two_object_registry(1, config.page_size);
    let families: Vec<FamilySpec> = (0..10)
        .map(|i| family(0, i * 10, (i % 2) as u32, 0))
        .collect();
    let report = run_engine(&config, &registry, &families).expect("runs");
    assert_eq!(report.stats.committed_families, 10);
    assert_eq!(
        report.traffic.total().messages,
        0,
        "one node: every GDO partition and page is local"
    );
    oracle::verify(&report).expect("serializable");
}

#[test]
fn restart_budget_exhaustion_is_reported_not_hung() {
    // A guaranteed deadly embrace with a zero restart budget: the first
    // victim must surface as an error instead of silently failing.
    let config = Cfg {
        num_nodes: 2,
        max_restarts: 0,
        ..Cfg::default()
    };
    let class = ClassBuilder::new("Hot")
        .attribute("x", 64)
        .method("grab_both", |m| {
            m.path(|p| {
                p.reads(&["x"])
                    .writes(&["x"])
                    .invokes(ClassId::new(0), MethodId::new(1))
            })
        })
        .method("grab", |m| m.path(|p| p.reads(&["x"]).writes(&["x"])))
        .build();
    let registry = ObjectRegistry::build(
        &[class],
        &[
            (ClassId::new(0), NodeId::new(0)),
            (ClassId::new(0), NodeId::new(1)),
        ],
        config.page_size,
    )
    .unwrap();
    let cross = |node: u32, first: u32, second: u32| FamilySpec {
        node: NodeId::new(node),
        start: SimTime::ZERO,
        root: InvocationSpec {
            object: ObjectId::new(first),
            method: MethodId::new(0),
            path: PathId::new(0),
            children: vec![InvocationSpec::leaf(
                ObjectId::new(second),
                MethodId::new(1),
                PathId::new(0),
            )],
            abort: false,
        },
    };
    let families = vec![cross(0, 0, 1), cross(1, 1, 0)];
    match run_engine(&config, &registry, &families) {
        Err(lotec_core::CoreError::RestartBudgetExhausted { restarts, .. }) => {
            assert_eq!(restarts, 1);
        }
        other => panic!("expected restart budget error, got {other:?}"),
    }
}

#[test]
fn root_fault_aborts_family_permanently_and_cleanly() {
    let config = Cfg::default();
    let registry = two_object_registry(config.num_nodes, config.page_size);
    let mut doomed = family(0, 0, 0, 0);
    doomed.root.abort = true;
    let families = vec![doomed, family(1, 50, 0, 0), family(2, 100, 1, 0)];
    let report = run_engine(&config, &registry, &families).expect("runs");
    assert_eq!(report.stats.aborted_families, 1);
    assert_eq!(report.stats.committed_families, 2);
    oracle::verify(&report).expect("aborted family left no trace in the data");
    // The aborted family's writes are absent from the committed record.
    assert_eq!(report.committed.len(), 2);
}

#[test]
fn read_only_workload_shares_locks_and_moves_nothing_after_warmup() {
    let config = Cfg::default();
    let registry = two_object_registry(config.num_nodes, config.page_size);
    // Everyone peeks (method 1 is read-only); nothing is ever written, so
    // every page stays version 0 and demand-zeroable: no page transfers.
    let families: Vec<FamilySpec> = (0..12)
        .map(|i| family(i % 4, i as u64 * 20, i % 2, 1))
        .collect();
    let report = run_engine(&config, &registry, &families).expect("runs");
    assert_eq!(report.stats.committed_families, 12);
    let ledger = report.traffic.ledger();
    assert_eq!(
        ledger.kind(lotec_net::MessageKind::PageTransfer).messages,
        0,
        "version-0 pages are demand-zeroed, never transferred"
    );
    assert!(ledger.kind(lotec_net::MessageKind::LockRequest).messages > 0);
    oracle::verify(&report).expect("serializable");
}

#[test]
fn simultaneous_arrivals_are_deterministic() {
    let config = Cfg::default();
    let registry = two_object_registry(config.num_nodes, config.page_size);
    let families: Vec<FamilySpec> = (0..8).map(|i| family(i % 4, 0, i % 2, 0)).collect();
    let a = run_engine(&config, &registry, &families).expect("run a");
    let b = run_engine(&config, &registry, &families).expect("run b");
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.final_chains, b.final_chains);
}

#[test]
fn tiny_pages_and_many_nodes_work() {
    let config = Cfg {
        num_nodes: 32,
        page_size: 64,
        ..Cfg::default()
    };
    let registry = two_object_registry(32, 64);
    let families: Vec<FamilySpec> = (0..20)
        .map(|i| family(i % 32, i as u64 * 7, i % 2, 0))
        .collect();
    let report = run_engine(&config, &registry, &families).expect("runs");
    assert_eq!(report.stats.committed_families, 20);
    oracle::verify(&report).expect("serializable");
}

#[test]
fn zero_arrival_gap_burst_still_commits_everything() {
    let mut scenario = lotec::workload::presets::quick(lotec::workload::presets::fig2());
    scenario.config.mean_arrival_gap = SimDuration::from_nanos(1);
    let (registry, families) = scenario.generate().expect("generates");
    let config = scenario.system_config();
    let report = run_engine(&config, &registry, &families).expect("runs");
    assert_eq!(report.stats.committed_families as usize, families.len());
    oracle::verify(&report).expect("serializable under burst arrival");
}
