//! End-to-end correctness: every execution the engine produces must be
//! serializable (equivalent to serial execution in root-commit order),
//! under contention, faults, deadlocks and every protocol.

use lotec::prelude::*;
use lotec::workload::presets;
use lotec_core::SystemConfig as Cfg;

fn engine_report(scenario: &lotec::workload::Scenario, protocol: ProtocolKind) -> RunReport {
    let (registry, families) = scenario.generate().expect("generates");
    let config = Cfg {
        protocol,
        ..scenario.system_config()
    };
    run_engine(&config, &registry, &families).expect("engine runs")
}

#[test]
fn every_protocol_is_serializable_on_contended_workloads() {
    for scenario in [
        presets::quick(presets::fig2()),
        presets::quick(presets::fig3()),
    ] {
        for protocol in ProtocolKind::ALL {
            let report = engine_report(&scenario, protocol);
            oracle::verify(&report)
                .unwrap_or_else(|e| panic!("{} under {protocol}: {e}", scenario.name));
            assert!(report.stats.committed_families > 0);
        }
    }
}

#[test]
fn fault_injected_workloads_stay_serializable() {
    let scenario = presets::quick(presets::ablation_faults());
    for protocol in ProtocolKind::ALL {
        let report = engine_report(&scenario, protocol);
        oracle::verify(&report).unwrap_or_else(|e| panic!("{protocol}: {e}"));
        assert!(
            report.stats.subtxn_aborts > 0,
            "{protocol}: the fault workload must actually abort sub-transactions"
        );
    }
}

#[test]
fn deadlock_heavy_workload_recovers_and_stays_serializable() {
    // Few objects, write-heavy, many families from many nodes: cross-family
    // deadlocks are likely. The engine must break them, restart victims and
    // still commit everything serializably.
    let mut scenario = presets::quick(presets::fig3());
    scenario.config.num_objects = 4;
    scenario.config.zipf_theta = 1.2;
    scenario.config.num_families = 60;
    scenario.config.mean_arrival_gap = SimDuration::from_micros(5);
    let report = engine_report(&scenario, ProtocolKind::Lotec);
    oracle::verify(&report).expect("serializable despite deadlocks");
    assert_eq!(
        report.stats.committed_families, 60,
        "every family must eventually commit (restarts: {})",
        report.stats.restarts
    );
}

#[test]
fn engine_runs_are_bit_deterministic() {
    let scenario = presets::quick(presets::fig2());
    let a = engine_report(&scenario, ProtocolKind::Lotec);
    let b = engine_report(&scenario, ProtocolKind::Lotec);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.final_chains, b.final_chains);
    assert_eq!(a.traffic.total(), b.traffic.total());
    assert_eq!(a.committed, b.committed);
}

#[test]
fn protocols_agree_on_final_state_for_the_same_workload() {
    // Different protocols move different bytes, but all must converge to
    // byte-identical final object state when the schedules coincide, and
    // to *serially-explainable* state regardless.
    let scenario = presets::quick(presets::fig4());
    for protocol in ProtocolKind::ALL {
        let report = engine_report(&scenario, protocol);
        oracle::verify(&report).unwrap_or_else(|e| panic!("{protocol}: {e}"));
    }
}

#[test]
fn prediction_misses_force_demand_fetches_but_not_corruption() {
    let scenario = presets::quick(presets::fig3());
    let (registry, families) = scenario.generate().expect("generates");
    let config = Cfg {
        protocol: ProtocolKind::Lotec,
        prediction_miss_rate: 0.4,
        ..scenario.system_config()
    };
    let report = run_engine(&config, &registry, &families).expect("runs");
    assert!(
        report.stats.demand_fetches > 0,
        "40% misses must cause demand fetches"
    );
    oracle::verify(&report).expect("demand fetching preserves correctness");
}

#[test]
fn recovery_mechanisms_are_interchangeable() {
    use lotec_core::config::RecoveryKind;
    let scenario = presets::quick(presets::ablation_faults());
    let (registry, families) = scenario.generate().expect("generates");
    let base = scenario.system_config();
    let undo = run_engine(
        &Cfg {
            recovery: RecoveryKind::UndoLog,
            ..base.clone()
        },
        &registry,
        &families,
    )
    .expect("undo run");
    let shadow = run_engine(
        &Cfg {
            recovery: RecoveryKind::ShadowPages,
            ..base
        },
        &registry,
        &families,
    )
    .expect("shadow run");
    assert_eq!(undo.trace, shadow.trace);
    assert_eq!(undo.final_chains, shadow.final_chains);
    assert_eq!(undo.traffic.total(), shadow.traffic.total());
}

#[test]
fn read_only_families_observe_committed_state() {
    // A workload with read-only methods mixed in: the oracle validates
    // every read, so a pass proves readers saw exactly the serial-order
    // state (entry consistency delivered the right pages).
    let mut scenario = presets::quick(presets::fig5());
    scenario.config.schema.read_only_method_prob = 0.5;
    let report = engine_report(&scenario, ProtocolKind::Lotec);
    oracle::verify(&report).expect("reads are consistent");
    let reads = report
        .committed
        .iter()
        .flat_map(|f| &f.ops)
        .filter(|op| matches!(op, lotec_core::engine::FamilyOp::Read { .. }))
        .count();
    assert!(reads > 0, "workload must actually read");
}
