//! Prediction-conformance property suite (seeded, deterministic).
//!
//! Three properties pin the adaptive predictor's contract:
//!
//! * **Soundness floor** — whatever the profile learns, its predicted set
//!   never drops below the statically-proven must-access set (the
//!   per-method intersection over paths), and always covers the most
//!   recent observation.
//! * **Coverage** — in an adaptive engine run, every page a method
//!   touches is covered: predicted now, demand-fetched now, or installed
//!   at the node by an earlier grant (the node's cache); first touches at
//!   a non-home node are always predicted or demand-fetched. Demand
//!   fetches are never wasted on pages the profile already predicted.
//! * **Convergence** — once the access pattern stabilizes, the profile
//!   converges within its confidence window and the demand-fetch count
//!   for the method drops to zero.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use lotec::prelude::*;
use lotec_core::spec::demo_workload;
use lotec_core::AdaptiveConfig;
use lotec_object::{AdaptivePredictor, PageSet};
use lotec_obs::ObsEventKind;
use lotec_sim::SimRng;

/// Seeds for every property; override the count with `PROP_SEEDS=n`.
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("PROP_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    (0..n).map(|i| 0xACCE55 + 13 * i).collect()
}

/// Property (a): across randomized observation streams — including
/// observations of pages the static analysis never saw — every profile
/// keeps `must_access ⊆ predicted` and ends each observation with
/// `actual ⊆ predicted`.
#[test]
fn prop_predicted_never_drops_below_must_access() {
    for seed in seeds() {
        let config = SystemConfig::default();
        let (registry, _) = demo_workload(&config, seed);
        let mut rng = SimRng::seed_from_u64(seed);
        for window in [1u32, 2, 4] {
            let mut predictor = AdaptivePredictor::new(&registry, window);
            for _ in 0..64 {
                let class = ClassId::new(rng.next_below(registry.num_classes() as u64) as u32);
                let compiled = registry.class(class);
                let num_methods = compiled.class().methods().len() as u64;
                let method = MethodId::new(rng.next_below(num_methods) as u32);
                let num_pages = compiled.layout().num_pages();
                // An arbitrary page subset, not restricted to any path.
                let actual: PageSet = (0..num_pages)
                    .map(PageIndex::new)
                    .filter(|_| rng.chance(0.4))
                    .collect();
                predictor.observe(class, method, &actual);
                let predicted = predictor.predicted(class, method);
                assert!(
                    compiled.must_access(method).is_subset(predicted),
                    "seed {seed} window {window}: predicted dropped below \
                     the must-access floor"
                );
                assert!(
                    actual.is_subset(predicted),
                    "seed {seed} window {window}: observation not absorbed"
                );
            }
            // A reset restores the static baseline exactly.
            predictor.reset_all();
            for (ci, _) in (0..registry.num_classes()).enumerate() {
                let class = ClassId::new(ci as u32);
                let compiled = registry.class(class);
                for (mi, _) in compiled.class().methods().iter().enumerate() {
                    let method = MethodId::new(mi as u32);
                    assert_eq!(
                        predictor.predicted(class, method),
                        &compiled.prediction(method).touched(),
                        "seed {seed}: reset must restore the static baseline"
                    );
                }
            }
        }
    }
}

/// Property (b): in adaptive engine runs, every touched page that could be
/// stale — i.e. some earlier grant wrote it — is covered: predicted by the
/// grant, demand-fetched during the compute phase, installed at the node
/// by an earlier grant, or resident at the object's home. Never-written
/// pages are identical everywhere and legitimately move nothing. And no
/// demand fetch targets a page the grant already predicted.
#[test]
fn prop_touched_pages_are_covered() {
    for seed in seeds() {
        let config = SystemConfig {
            protocol: ProtocolKind::Lotec,
            seed,
            adaptive: AdaptiveConfig {
                enabled: true,
                window: 2,
            },
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&config, seed);
        let mut sink = RecordingSink::new();
        let report =
            run_engine_with_probe(&config, &registry, &families, &mut sink).expect("adaptive run");
        oracle::verify(&report).expect("adaptive run stays serializable");

        // Demand events keyed by (time, node, family, object) — they are
        // emitted at the same instant as their grant's GrantPlan.
        let events = sink.into_events();
        let mut demanded: BTreeMap<(u64, u32, u64, u32), BTreeSet<u16>> = BTreeMap::new();
        for e in &events {
            let key = |family: u64, object: u32| (e.at.as_nanos(), e.node, family, object);
            match &e.kind {
                ObsEventKind::DemandFetch {
                    family,
                    object,
                    page,
                    ..
                } => {
                    demanded
                        .entry(key(*family, *object))
                        .or_default()
                        .insert(*page);
                }
                ObsEventKind::DemandBatch {
                    family,
                    object,
                    pages,
                    ..
                } => {
                    demanded
                        .entry(key(*family, *object))
                        .or_default()
                        .extend(pages);
                }
                _ => {}
            }
        }
        // Pages installed at a node by earlier grants of the same object,
        // and pages some earlier grant has written (only those can be
        // stale and thus need coverage).
        let mut installed: BTreeMap<(u32, u32), BTreeSet<u16>> = BTreeMap::new();
        let mut written: BTreeMap<u32, BTreeSet<u16>> = BTreeMap::new();
        let mut grants = 0u64;
        for e in &events {
            let ObsEventKind::GrantPlan {
                family,
                object,
                predicted,
                actual_reads,
                actual_writes,
                ..
            } = &e.kind
            else {
                continue;
            };
            grants += 1;
            let fetched: BTreeSet<u16> = demanded
                .get(&(e.at.as_nanos(), e.node, *family, *object))
                .cloned()
                .unwrap_or_default();
            let predicted: BTreeSet<u16> = predicted.iter().copied().collect();
            assert!(
                fetched.is_disjoint(&predicted),
                "seed {seed}: demand fetch wasted on a predicted page"
            );
            let cache = installed.entry((e.node, *object)).or_default();
            let dirty = written.entry(*object).or_default();
            let is_home = registry.object(ObjectId::new(*object)).home.index() == e.node;
            for page in actual_reads.iter().chain(actual_writes) {
                assert!(
                    predicted.contains(page)
                        || fetched.contains(page)
                        || cache.contains(page)
                        || is_home
                        || !dirty.contains(page),
                    "seed {seed}: node {} touched dirty page {page} of \
                     object {object} with no coverage",
                    e.node
                );
            }
            dirty.extend(actual_writes);
            cache.extend(&predicted);
            cache.extend(&fetched);
        }
        assert!(grants > 0, "seed {seed}: no grants recorded");
    }
}

/// Property (c): a stable access pattern converges. One multi-path class
/// whose static prediction over-predicts; the workload takes the narrow
/// path except for a single wide surprise. The surprise costs demand
/// fetches; after it, the stable tail runs a full window and beyond with
/// zero further demand fetches.
#[test]
fn prop_stable_pattern_converges_to_zero_demand_fetches() {
    let page = 4096u32;
    let doc = ClassBuilder::new("Doc")
        .attribute("head", page)
        .attribute("mid", page)
        .attribute("tail", page)
        .method("edit", |m| {
            m.path(|p| p.reads(&["head"]).writes(&["head", "mid", "tail"]))
                .path(|p| p.reads(&["head"]).writes(&["head"]))
        })
        .build();
    let config = SystemConfig {
        protocol: ProtocolKind::Lotec,
        adaptive: AdaptiveConfig {
            enabled: true,
            window: 2,
        },
        ..SystemConfig::default()
    };
    let registry = ObjectRegistry::build(
        &[doc],
        &[(ClassId::new(0), NodeId::new(0))],
        config.page_size,
    )
    .expect("doc class compiles");
    // Path sequence: one wide write, trims, a wide surprise, then a
    // stable narrow tail much longer than the window.
    let paths = [0u32, 1, 1, 0, 1, 1, 1, 1, 1, 1];
    let families: Vec<FamilySpec> = paths
        .iter()
        .enumerate()
        .map(|(i, &path)| FamilySpec {
            node: NodeId::new(i as u32 % config.num_nodes),
            start: SimTime::from_micros(i as u64 * 40),
            root: InvocationSpec::leaf(ObjectId::new(0), MethodId::new(0), PathId::new(path)),
        })
        .collect();
    let mut sink = RecordingSink::new();
    let report =
        run_engine_with_probe(&config, &registry, &families, &mut sink).expect("stable run");
    oracle::verify(&report).expect("serializable");
    assert_eq!(report.stats.committed_families as usize, families.len());
    assert!(
        report.stats.profile_shrinks > 0,
        "the narrow path must trim the wide prediction"
    );
    assert!(
        report.stats.demand_fetches > 0,
        "the wide surprise after trimming must demand-fetch"
    );

    // Order grant-level samples and demand events by time: every demand
    // fetch belongs to the pre-convergence prefix, and the stable tail
    // afterwards spans more observations than the confidence window.
    let events = sink.into_events();
    let mut sample_times = Vec::new();
    let mut last_demand = 0u64;
    for e in &events {
        match &e.kind {
            ObsEventKind::PredictionSample { .. } => sample_times.push(e.at.as_nanos()),
            ObsEventKind::DemandFetch { .. } | ObsEventKind::DemandBatch { .. } => {
                last_demand = last_demand.max(e.at.as_nanos());
            }
            _ => {}
        }
    }
    sample_times.sort_unstable();
    let converged_tail = sample_times.iter().filter(|&&t| t > last_demand).count();
    assert!(
        converged_tail as u32 > config.adaptive.window + 1,
        "stable tail after the last demand fetch must outlast the window \
         (tail {converged_tail}, window {})",
        config.adaptive.window
    );
}
