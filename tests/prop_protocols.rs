//! Property tests of the transfer policies over randomized placement
//! state: the per-event plan inclusions that make the figure orderings
//! inevitable, checked directly at the policy level.

use proptest::prelude::*;
use std::collections::BTreeMap;

use lotec::core::protocol::{plan_transfer, PlacementView, ProtocolKind};
use lotec::mem::{ObjectId, PageIndex, Version};
use lotec::object::PageSet;
use lotec::sim::NodeId;

/// An arbitrary placement state for one object.
#[derive(Debug, Clone)]
struct RandomView {
    num_pages: u16,
    global: Vec<u64>,
    owners: Vec<u32>,
    last_holder: u32,
    local: BTreeMap<u16, u64>, // acquirer's cached versions
}

impl PlacementView for RandomView {
    fn local_version(&self, node: NodeId, _o: ObjectId, page: PageIndex) -> Option<Version> {
        // Node 0 is always the acquirer in these tests.
        (node == NodeId::new(0))
            .then(|| self.local.get(&page.get()).map(|&v| Version::new(v)))
            .flatten()
    }
    fn global_version(&self, _o: ObjectId, page: PageIndex) -> Version {
        Version::new(self.global[page.get() as usize])
    }
    fn page_owner(&self, _o: ObjectId, page: PageIndex) -> NodeId {
        NodeId::new(self.owners[page.get() as usize])
    }
    fn last_holder(&self, _o: ObjectId) -> NodeId {
        NodeId::new(self.last_holder)
    }
    fn num_pages(&self, _o: ObjectId) -> u16 {
        self.num_pages
    }
}

fn view_strategy() -> impl Strategy<Value = (RandomView, PageSet)> {
    (1u16..=20).prop_flat_map(|num_pages| {
        let n = num_pages as usize;
        (
            prop::collection::vec(0u64..4, n),              // global versions
            prop::collection::vec(1u32..5, n),              // owners (never node 0)
            1u32..5,                                        // last holder (never node 0)
            prop::collection::vec(prop::option::of(0u64..4), n), // acquirer cache
            prop::collection::vec(any::<bool>(), n),        // predicted membership
        )
            .prop_map(move |(global, owners, last_holder, local, predicted)| {
                // Owner consistency: owners hold the newest version, so the
                // acquirer's local version never exceeds global.
                let local: BTreeMap<u16, u64> = local
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.map(|v| (i as u16, v.min(global[i]))))
                    .collect();
                let view = RandomView {
                    num_pages,
                    global,
                    owners,
                    last_holder,
                    local,
                };
                let pred: PageSet = predicted
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, p)| p.then_some(PageIndex::new(i as u16)))
                    .collect();
                (view, pred)
            })
    })
}

fn pages_of(plan: &lotec::core::protocol::TransferPlan) -> Vec<u16> {
    let mut v: Vec<u16> = plan
        .sources()
        .flat_map(|(_, pages)| pages.iter().map(|p| p.get()))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    /// Per-event plan inclusion: LOTEC ⊆ OTEC ⊆ COTEC on identical state.
    #[test]
    fn plan_inclusion_chain((view, predicted) in view_strategy()) {
        let node = NodeId::new(0);
        let obj = ObjectId::new(0);
        let all: PageSet = (0..view.num_pages).map(PageIndex::new).collect();
        let lotec = pages_of(&plan_transfer(ProtocolKind::Lotec, &view, node, obj, &predicted));
        let otec = pages_of(&plan_transfer(ProtocolKind::Otec, &view, node, obj, &all));
        let cotec = pages_of(&plan_transfer(ProtocolKind::Cotec, &view, node, obj, &all));
        prop_assert!(lotec.iter().all(|p| otec.contains(p)), "LOTEC ⊆ OTEC: {lotec:?} vs {otec:?}");
        prop_assert!(otec.iter().all(|p| cotec.contains(p)), "OTEC ⊆ COTEC: {otec:?} vs {cotec:?}");
    }

    /// OTEC fetches exactly the stale pages (global version newer than the
    /// acquirer's copy, missing copies counting as version 0).
    #[test]
    fn otec_fetches_exactly_stale_pages((view, _p) in view_strategy()) {
        let all: PageSet = (0..view.num_pages).map(PageIndex::new).collect();
        let otec = pages_of(&plan_transfer(
            ProtocolKind::Otec, &view, NodeId::new(0), ObjectId::new(0), &all,
        ));
        let expected: Vec<u16> = (0..view.num_pages)
            .filter(|&i| {
                let local = view.local.get(&i).copied().unwrap_or(0);
                view.global[i as usize] > local
            })
            .collect();
        prop_assert_eq!(otec, expected);
    }

    /// LOTEC never plans a page outside its prediction, and within the
    /// prediction it matches OTEC's staleness decision exactly.
    #[test]
    fn lotec_is_otec_restricted_to_prediction((view, predicted) in view_strategy()) {
        let node = NodeId::new(0);
        let obj = ObjectId::new(0);
        let all: PageSet = (0..view.num_pages).map(PageIndex::new).collect();
        let lotec = pages_of(&plan_transfer(ProtocolKind::Lotec, &view, node, obj, &predicted));
        let otec = pages_of(&plan_transfer(ProtocolKind::Otec, &view, node, obj, &all));
        let expected: Vec<u16> = otec
            .into_iter()
            .filter(|&p| predicted.contains(PageIndex::new(p)))
            .collect();
        prop_assert_eq!(lotec, expected);
    }

    /// COTEC ships the whole object unless the acquirer is the last
    /// holder; it never gathers from more than one source.
    #[test]
    fn cotec_is_whole_object_single_source((view, _p) in view_strategy()) {
        let all: PageSet = (0..view.num_pages).map(PageIndex::new).collect();
        let plan = plan_transfer(
            ProtocolKind::Cotec, &view, NodeId::new(0), ObjectId::new(0), &all,
        );
        prop_assert_eq!(plan.num_pages(), view.num_pages as usize);
        prop_assert_eq!(plan.num_sources(), 1);
        let (src, _) = plan.sources().next().expect("one source");
        prop_assert_eq!(src, NodeId::new(view.last_holder));
    }

    /// LOTEC gathers each page from its owner — sources are exactly the
    /// owners of the planned pages.
    #[test]
    fn lotec_sources_are_page_owners((view, predicted) in view_strategy()) {
        let plan = plan_transfer(
            ProtocolKind::Lotec, &view, NodeId::new(0), ObjectId::new(0), &predicted,
        );
        for (source, pages) in plan.sources() {
            for page in pages {
                prop_assert_eq!(
                    NodeId::new(view.owners[page.get() as usize]),
                    source,
                    "page {} must come from its owner",
                    page
                );
            }
        }
    }
}
