//! Randomized-property tests of the transfer policies over random
//! placement state: the per-event plan inclusions that make the figure
//! orderings inevitable, checked directly at the policy level. Inputs are
//! drawn from a seeded [`SimRng`] stream, so every run checks the same
//! deterministic sample.

use std::collections::BTreeMap;

use lotec::core::protocol::{plan_transfer, PlacementView, ProtocolKind};
use lotec::mem::{ObjectId, PageIndex, Version};
use lotec::object::PageSet;
use lotec::sim::{NodeId, SimRng};

const CASES: u64 = 128;

fn cases(stream: u64) -> impl Iterator<Item = SimRng> {
    let root = SimRng::seed_from_u64(0x9807_0C01 ^ stream);
    (0..CASES).map(move |i| root.fork(i))
}

/// An arbitrary placement state for one object.
#[derive(Debug, Clone)]
struct RandomView {
    num_pages: u16,
    global: Vec<u64>,
    owners: Vec<u32>,
    last_holder: u32,
    local: BTreeMap<u16, u64>, // acquirer's cached versions
}

impl PlacementView for RandomView {
    fn local_version(&self, node: NodeId, _o: ObjectId, page: PageIndex) -> Option<Version> {
        // Node 0 is always the acquirer in these tests.
        (node == NodeId::new(0))
            .then(|| self.local.get(&page.get()).map(|&v| Version::new(v)))
            .flatten()
    }
    fn global_version(&self, _o: ObjectId, page: PageIndex) -> Version {
        Version::new(self.global[page.get() as usize])
    }
    fn page_owner(&self, _o: ObjectId, page: PageIndex) -> NodeId {
        NodeId::new(self.owners[page.get() as usize])
    }
    fn last_holder(&self, _o: ObjectId) -> NodeId {
        NodeId::new(self.last_holder)
    }
    fn num_pages(&self, _o: ObjectId) -> u16 {
        self.num_pages
    }
}

fn random_view(rng: &mut SimRng) -> (RandomView, PageSet) {
    let num_pages = rng.range_inclusive(1, 20) as u16;
    let n = num_pages as usize;
    let global: Vec<u64> = (0..n).map(|_| rng.next_below(4)).collect();
    let owners: Vec<u32> = (0..n).map(|_| rng.range_inclusive(1, 4) as u32).collect();
    let last_holder = rng.range_inclusive(1, 4) as u32;
    // Owner consistency: owners hold the newest version, so the acquirer's
    // local version never exceeds global.
    let local: BTreeMap<u16, u64> = (0..n)
        .filter_map(|i| {
            if rng.chance(0.5) {
                Some((i as u16, rng.next_below(4).min(global[i])))
            } else {
                None
            }
        })
        .collect();
    let pred: PageSet = (0..n)
        .filter_map(|i| rng.chance(0.5).then_some(PageIndex::new(i as u16)))
        .collect();
    (
        RandomView {
            num_pages,
            global,
            owners,
            last_holder,
            local,
        },
        pred,
    )
}

fn pages_of(plan: &lotec::core::protocol::TransferPlan) -> Vec<u16> {
    let mut v: Vec<u16> = plan
        .sources()
        .flat_map(|(_, pages)| pages.iter().map(|p| p.get()))
        .collect();
    v.sort_unstable();
    v
}

/// Per-event plan inclusion: LOTEC ⊆ OTEC ⊆ COTEC on identical state.
#[test]
fn plan_inclusion_chain() {
    for mut rng in cases(1) {
        let (view, predicted) = random_view(&mut rng);
        let node = NodeId::new(0);
        let obj = ObjectId::new(0);
        let all: PageSet = (0..view.num_pages).map(PageIndex::new).collect();
        let lotec = pages_of(&plan_transfer(
            ProtocolKind::Lotec,
            &view,
            node,
            obj,
            &predicted,
        ));
        let otec = pages_of(&plan_transfer(ProtocolKind::Otec, &view, node, obj, &all));
        let cotec = pages_of(&plan_transfer(ProtocolKind::Cotec, &view, node, obj, &all));
        assert!(
            lotec.iter().all(|p| otec.contains(p)),
            "LOTEC ⊆ OTEC: {lotec:?} vs {otec:?}"
        );
        assert!(
            otec.iter().all(|p| cotec.contains(p)),
            "OTEC ⊆ COTEC: {otec:?} vs {cotec:?}"
        );
    }
}

/// OTEC fetches exactly the stale pages (global version newer than the
/// acquirer's copy, missing copies counting as version 0).
#[test]
fn otec_fetches_exactly_stale_pages() {
    for mut rng in cases(2) {
        let (view, _p) = random_view(&mut rng);
        let all: PageSet = (0..view.num_pages).map(PageIndex::new).collect();
        let otec = pages_of(&plan_transfer(
            ProtocolKind::Otec,
            &view,
            NodeId::new(0),
            ObjectId::new(0),
            &all,
        ));
        let expected: Vec<u16> = (0..view.num_pages)
            .filter(|&i| {
                let local = view.local.get(&i).copied().unwrap_or(0);
                view.global[i as usize] > local
            })
            .collect();
        assert_eq!(otec, expected);
    }
}

/// LOTEC never plans a page outside its prediction, and within the
/// prediction it matches OTEC's staleness decision exactly.
#[test]
fn lotec_is_otec_restricted_to_prediction() {
    for mut rng in cases(3) {
        let (view, predicted) = random_view(&mut rng);
        let node = NodeId::new(0);
        let obj = ObjectId::new(0);
        let all: PageSet = (0..view.num_pages).map(PageIndex::new).collect();
        let lotec = pages_of(&plan_transfer(
            ProtocolKind::Lotec,
            &view,
            node,
            obj,
            &predicted,
        ));
        let otec = pages_of(&plan_transfer(ProtocolKind::Otec, &view, node, obj, &all));
        let expected: Vec<u16> = otec
            .into_iter()
            .filter(|&p| predicted.contains(PageIndex::new(p)))
            .collect();
        assert_eq!(lotec, expected);
    }
}

/// COTEC ships the whole object unless the acquirer is the last holder;
/// it never gathers from more than one source.
#[test]
fn cotec_is_whole_object_single_source() {
    for mut rng in cases(4) {
        let (view, _p) = random_view(&mut rng);
        let all: PageSet = (0..view.num_pages).map(PageIndex::new).collect();
        let plan = plan_transfer(
            ProtocolKind::Cotec,
            &view,
            NodeId::new(0),
            ObjectId::new(0),
            &all,
        );
        assert_eq!(plan.num_pages(), view.num_pages as usize);
        assert_eq!(plan.num_sources(), 1);
        let (src, _) = plan.sources().next().expect("one source");
        assert_eq!(src, NodeId::new(view.last_holder));
    }
}

/// LOTEC gathers each page from its owner — sources are exactly the
/// owners of the planned pages.
#[test]
fn lotec_sources_are_page_owners() {
    for mut rng in cases(5) {
        let (view, predicted) = random_view(&mut rng);
        let plan = plan_transfer(
            ProtocolKind::Lotec,
            &view,
            NodeId::new(0),
            ObjectId::new(0),
            &predicted,
        );
        for (source, pages) in plan.sources() {
            for page in pages {
                assert_eq!(
                    NodeId::new(view.owners[page.get() as usize]),
                    source,
                    "page {} must come from its owner",
                    page
                );
            }
        }
    }
}
