//! Differential detector oracle: the incremental waits-for graph must
//! agree with the from-scratch reference at every step.
//!
//! Two layers of checking:
//!
//! 1. **Engine replays.** The fault-free fig3 cells and a sample of chaos
//!    cells run twice — once normally, once with
//!    `SystemConfig::lock_graph_validation` set. In validation mode the
//!    lock table cross-checks the incremental graph against a from-scratch
//!    rebuild after *every* entry mutation, and every detector call is
//!    compared against [`lotec_txn::deadlock::reference`] (panicking on
//!    the first divergence). The two runs must also produce identical
//!    behaviour fingerprints: validation is observation, never mutation.
//!
//! 2. **Scripted lock-table scenarios.** Hand-built `LockTable`/`TxnTree`
//!    sequences drive every mutation site the engine exercises —
//!    enqueueing, granting, pre-commit inheritance, abort return/release,
//!    root-commit release, timeout requeue (`cancel_family_waiters` +
//!    `regrant`) and crash eviction — and after each step assert that the
//!    incremental graph, the `may_deadlock_through` verdict, the found
//!    cycle, and the chosen victim all equal the reference.

use lotec::prelude::*;
use lotec::sim::FaultPlan;
use lotec_core::config::FaultConfig;
use lotec_core::engine::RunReport;
use lotec_core::spec::demo_workload;
use lotec_mem::mix;
use lotec_txn::deadlock::{self, reference};
use lotec_txn::{Acquire, LockMode, LockTable, TxnId, TxnTree};
use lotec_workload::presets;

/// Chaos seeds sampled from the chaos suite's default stream
/// (`101 + 37 * i`) — the same sample `differential_seed` pins.
const CHAOS_SAMPLE: [u64; 3] = [101, 138, 175];

// ---------------------------------------------------------------------------
// Layer 1: engine replays under per-mutation validation.
// ---------------------------------------------------------------------------

/// Behaviour fingerprint (same construction as `differential_seed`): any
/// change in any simulated quantity moves at least one field.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    committed: u64,
    makespan_ns: u64,
    total_messages: u64,
    total_bytes: u64,
    chain_hash: u64,
}

fn fingerprint(report: &RunReport) -> Fingerprint {
    let mut chain_hash = 0u64;
    for (&(object, page), &chain) in &report.final_chains {
        chain_hash = mix(chain_hash, u64::from(object.index()));
        chain_hash = mix(chain_hash, u64::from(page.get()));
        chain_hash = mix(chain_hash, chain);
    }
    let s = &report.stats;
    Fingerprint {
        committed: s.committed_families,
        makespan_ns: s.makespan.as_nanos(),
        total_messages: report.traffic.total().messages,
        total_bytes: report.traffic.total().bytes,
        chain_hash,
    }
}

fn fig3_cell(protocol: ProtocolKind, validate: bool) -> Fingerprint {
    let scenario = presets::quick(presets::fig3());
    let (registry, families) = scenario.generate().expect("workload generates");
    let config = SystemConfig {
        protocol,
        seed: 0xF163,
        num_nodes: scenario.config.num_nodes,
        page_size: scenario.config.schema.page_size,
        lock_graph_validation: validate,
        ..SystemConfig::default()
    };
    let report = run_engine(&config, &registry, &families).expect("fig3 run");
    oracle::verify(&report).expect("serializable");
    fingerprint(&report)
}

fn chaos_cell(protocol: ProtocolKind, seed: u64, validate: bool) -> Fingerprint {
    let faults = FaultConfig {
        plan: FaultPlan {
            drop_prob: 0.10 + 0.02 * (seed % 5) as f64,
            duplicate_prob: 0.05,
            delay_prob: 0.10,
            max_extra_delay: SimDuration::from_micros(25),
            rto: SimDuration::from_micros(50),
            crashes: Vec::new(),
        },
        ..FaultConfig::default()
    };
    let config = SystemConfig {
        protocol,
        seed,
        faults,
        lock_graph_validation: validate,
        ..SystemConfig::default()
    };
    let (registry, families) = demo_workload(&config, seed);
    let report = run_engine(&config, &registry, &families).expect("chaos run");
    oracle::verify(&report).expect("serializable");
    fingerprint(&report)
}

/// Fault-free fig3 under per-mutation validation, all four protocols.
/// The validation-mode run panics on the first incremental/reference
/// divergence; the fingerprint equality shows validation observed an
/// identical execution.
#[test]
fn fig3_validated_replay_matches_plain_run() {
    for protocol in ProtocolKind::ALL {
        assert_eq!(
            fig3_cell(protocol, true),
            fig3_cell(protocol, false),
            "fig3/{protocol}: graph validation changed behaviour"
        );
    }
}

/// Chaos cells (timeouts, retransmits, duplicate grants) under
/// per-mutation validation. These runs exercise the timeout-requeue and
/// abort edge-teardown paths the fault-free cells never reach.
#[test]
fn chaos_validated_replay_matches_plain_run() {
    for protocol in ProtocolKind::ALL {
        for seed in CHAOS_SAMPLE {
            assert_eq!(
                chaos_cell(protocol, seed, true),
                chaos_cell(protocol, seed, false),
                "chaos/{protocol}/{seed}: graph validation changed behaviour"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 2: scripted lock-table scenarios with an explicit oracle.
// ---------------------------------------------------------------------------

fn obj(i: u32) -> ObjectId {
    ObjectId::new(i)
}

fn node(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Builds a table with `n` registered 4-page objects, homed on node 0,
/// with internal per-mutation validation armed.
fn table_with_objects(n: u32) -> LockTable {
    let mut table = LockTable::new();
    for i in 0..n {
        table.register_object(obj(i), 4, node(0));
    }
    table.enable_graph_validation();
    table
}

/// The external oracle: after every mutation the incremental graph, the
/// detector verdicts, the found cycle, and the victim must all equal the
/// from-scratch reference, and the table invariants must hold.
fn check_against_reference(table: &LockTable, tree: &TxnTree, families: &[TxnId]) {
    if let Err(msg) = table.check_invariants(tree) {
        panic!("lock-table invariant violated: {msg}");
    }
    assert_eq!(
        table.waits_for().to_reference(),
        reference::waits_for(table, tree),
        "incremental waits-for graph diverged from reference"
    );
    let cycle = deadlock::find_deadlock_cycle(table, tree);
    assert_eq!(
        cycle,
        reference::find_deadlock_cycle(table, tree),
        "cycle search diverged from reference"
    );
    if let Some(cycle) = &cycle {
        assert_eq!(
            deadlock::pick_victim(cycle),
            *cycle.iter().max().expect("cycle is non-empty"),
            "victim must be the youngest cycle member"
        );
    }
    for &family in families {
        assert_eq!(
            deadlock::may_deadlock_through(table, tree, family),
            reference::may_deadlock_through(table, tree, family),
            "O(1) guard diverged from reference for {family}"
        );
        // The scoped search's contract assumes the graph was acyclic
        // before `family` enqueued, so every cycle passes through it —
        // exercise it exactly where that contract holds.
        let on_cycle = cycle.as_ref().is_some_and(|c| c.contains(&family));
        if cycle.is_none() || on_cycle {
            assert_eq!(
                deadlock::find_deadlock_cycle_through(table, tree, family),
                cycle.clone().filter(|_| on_cycle),
                "scoped cycle search diverged from reference for {family}"
            );
        }
    }
}

/// Aborts `root`'s whole family the way the engine does on deadlock or
/// crash: post-order abort-release of every active member, then waiter
/// cancellation and a regrant pass over the vacated objects.
fn abort_family(table: &mut LockTable, tree: &mut TxnTree, root: TxnId) -> Vec<ObjectId> {
    let mut vacated = Vec::new();
    for txn in tree.active_subtree_post_order(root) {
        let release = table.release_abort(txn, tree);
        vacated.extend(release.released);
        tree.abort(txn);
    }
    vacated.extend(table.cancel_family_waiters(root, tree));
    table.regrant(&vacated, tree);
    vacated
}

/// Two families forming the classic two-object write-write deadlock:
/// A holds 0 and queues on 1; B holds 1 and queues on 0. The guard,
/// cycle, and victim must match the reference at every step, and
/// aborting the (youngest) victim must clean the graph and unblock the
/// survivor.
#[test]
fn two_family_cycle_detected_and_broken_like_reference() {
    let mut tree = TxnTree::new();
    let mut table = table_with_objects(2);
    let a = tree.begin_root(node(1));
    let b = tree.begin_root(node(2));
    let fams = [a, b];

    assert!(matches!(
        table.acquire(obj(0), a, LockMode::Write, &tree),
        Ok(Acquire::GlobalGrant { .. })
    ));
    check_against_reference(&table, &tree, &fams);
    assert!(matches!(
        table.acquire(obj(1), b, LockMode::Write, &tree),
        Ok(Acquire::GlobalGrant { .. })
    ));
    check_against_reference(&table, &tree, &fams);

    // A queues behind B on object 1: one edge, no cycle yet.
    assert!(matches!(
        table.acquire(obj(1), a, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    check_against_reference(&table, &tree, &fams);
    assert!(!deadlock::may_deadlock_through(&table, &tree, a));
    assert!(deadlock::find_deadlock_cycle(&table, &tree).is_none());

    // B queues behind A on object 0: the cycle closes.
    assert!(matches!(
        table.acquire(obj(0), b, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    check_against_reference(&table, &tree, &fams);
    assert!(deadlock::may_deadlock_through(&table, &tree, b));
    let cycle = deadlock::find_deadlock_cycle(&table, &tree).expect("cycle exists");
    let victim = deadlock::pick_victim(&cycle);
    assert_eq!(victim, b, "youngest family is the victim");

    // Break it the engine's way; the survivor must be granted object 1.
    let vacated = abort_family(&mut table, &mut tree, victim);
    check_against_reference(&table, &tree, &fams);
    assert!(deadlock::find_deadlock_cycle(&table, &tree).is_none());
    assert!(table.waits_for().is_empty(), "graph clean after break");
    assert!(vacated.contains(&obj(1)), "victim vacated object 1");
    assert!(
        table.held_objects(a).any(|o| o == obj(1)),
        "survivor inherited the vacated lock via regrant"
    );
}

/// Pre-commit retention keeps the family-level edges stable: a child's
/// locks move to the parent (same family), so a foreign waiter's edge
/// must survive the pre-commit unchanged, and only the root commit
/// releases it.
#[test]
fn pre_commit_retention_and_root_commit_release_track_reference() {
    let mut tree = TxnTree::new();
    let mut table = table_with_objects(2);
    let a = tree.begin_root(node(1));
    let child = tree.begin_child(a);
    let b = tree.begin_root(node(2));
    let fams = [a, b];

    assert!(table
        .acquire(obj(0), child, LockMode::Write, &tree)
        .expect("child acquires")
        .is_granted());
    assert!(matches!(
        table.acquire(obj(0), b, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    check_against_reference(&table, &tree, &fams);
    assert!(table.waits_for().is_blocked(b), "B waits on A's family");

    // Child pre-commits: the parent inherits; B's edge must persist.
    let release = table.release_pre_commit(child, &tree);
    tree.pre_commit(child);
    assert_eq!(release.inherited, vec![obj(0)]);
    check_against_reference(&table, &tree, &fams);
    assert!(table.waits_for().is_blocked(b), "edge survives pre-commit");

    // Root commit finally releases; B is granted and the graph empties.
    let release = table.release_root_commit(a, &tree, &[], node(1));
    tree.commit_root(a);
    assert_eq!(release.released, vec![obj(0)]);
    assert_eq!(release.grants.len(), 1, "B granted on release");
    check_against_reference(&table, &tree, &fams);
    assert!(table.waits_for().is_empty());
    assert!(table.held_objects(b).any(|o| o == obj(0)));
}

/// Sub-transaction abort returns a lock to a retaining ancestor — a
/// family-internal move that must not disturb foreign edges — and then a
/// plain abort without a retainer releases globally and drops the edge.
#[test]
fn abort_return_to_ancestor_keeps_foreign_edges() {
    let mut tree = TxnTree::new();
    let mut table = table_with_objects(1);
    let a = tree.begin_root(node(1));
    let child1 = tree.begin_child(a);
    let b = tree.begin_root(node(2));
    let fams = [a, b];

    // child1 acquires, pre-commits: A retains object 0.
    assert!(table
        .acquire(obj(0), child1, LockMode::Write, &tree)
        .expect("acquire")
        .is_granted());
    table.release_pre_commit(child1, &tree);
    tree.pre_commit(child1);

    // child2 re-acquires from the retaining ancestor (local grant), then
    // B queues behind the family.
    let child2 = tree.begin_child(a);
    assert!(matches!(
        table.acquire(obj(0), child2, LockMode::Write, &tree),
        Ok(Acquire::LocalGrant)
    ));
    assert!(matches!(
        table.acquire(obj(0), b, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    check_against_reference(&table, &tree, &fams);

    // child2 aborts: the lock returns to the retaining root; B still
    // waits on the same family — the graph must be unchanged.
    let before = table.waits_for().to_reference();
    let release = table.release_abort(child2, &tree);
    tree.abort(child2);
    assert_eq!(release.returned_to_ancestor, vec![obj(0)]);
    assert!(release.released.is_empty());
    check_against_reference(&table, &tree, &fams);
    assert_eq!(
        table.waits_for().to_reference(),
        before,
        "family-internal return must not move edges"
    );

    // Aborting the whole family releases globally; B gets the lock.
    abort_family(&mut table, &mut tree, a);
    check_against_reference(&table, &tree, &fams);
    assert!(table.waits_for().is_empty());
    assert!(table.held_objects(b).any(|o| o == obj(0)));
}

/// Timeout requeue: cancelling a family's waiters tears down its edges
/// (including FIFO queue-order edges to earlier-queued families), the
/// regrant pass rebuilds state for the survivors, and a re-request
/// restores the edges — all in lock-step with the reference.
#[test]
fn timeout_requeue_tears_down_and_rebuilds_edges() {
    let mut tree = TxnTree::new();
    let mut table = table_with_objects(1);
    let a = tree.begin_root(node(1));
    let b = tree.begin_root(node(2));
    let c = tree.begin_root(node(3));
    let fams = [a, b, c];

    assert!(table
        .acquire(obj(0), a, LockMode::Write, &tree)
        .expect("acquire")
        .is_granted());
    // B then C queue: C also carries a FIFO edge to the earlier B.
    assert!(matches!(
        table.acquire(obj(0), b, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    check_against_reference(&table, &tree, &fams);
    assert!(matches!(
        table.acquire(obj(0), c, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    check_against_reference(&table, &tree, &fams);
    assert!(
        table.waits_for().blockers_of(c).any(|f| f == b),
        "FIFO edge from C to the earlier-queued B"
    );

    // B times out: its request is cancelled and C's FIFO edge to B must
    // vanish while C's edge to the holder A remains.
    let vacated = table.cancel_family_waiters(b, &tree);
    let grants = table.regrant(&vacated, &tree);
    assert!(grants.is_empty(), "A still holds; nothing to grant");
    check_against_reference(&table, &tree, &fams);
    assert!(!table.waits_for().is_blocked(b));
    assert!(table.waits_for().blockers_of(c).all(|f| f != b));
    assert!(table.waits_for().blockers_of(c).any(|f| f == a));

    // B re-requests: now *it* queues behind both A and the earlier C.
    assert!(matches!(
        table.acquire(obj(0), b, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    check_against_reference(&table, &tree, &fams);
    assert!(table.waits_for().blockers_of(b).any(|f| f == c));
}

/// Crash eviction: a whole family with a deep in-flight tree is evicted
/// mid-run (post-order abort of every active member, waiter cancel,
/// regrant). The graph must track the reference through every member's
/// release, not just at the end.
#[test]
fn crash_eviction_tracks_reference_at_every_member_release() {
    let mut tree = TxnTree::new();
    let mut table = table_with_objects(3);
    let a = tree.begin_root(node(1));
    let a_child = tree.begin_child(a);
    let a_grand = tree.begin_child(a_child);
    let b = tree.begin_root(node(2));
    let fams = [a, b];

    assert!(table
        .acquire(obj(0), a, LockMode::Write, &tree)
        .expect("acquire")
        .is_granted());
    assert!(table
        .acquire(obj(1), a_child, LockMode::Write, &tree)
        .expect("acquire")
        .is_granted());
    assert!(table
        .acquire(obj(2), a_grand, LockMode::Read, &tree)
        .expect("acquire")
        .is_granted());
    assert!(matches!(
        table.acquire(obj(1), b, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    // A also queues somewhere to give the evicted family out-edges too.
    assert!(table
        .acquire(obj(2), b, LockMode::Read, &tree)
        .expect("read lock is shared")
        .is_granted());
    check_against_reference(&table, &tree, &fams);

    // Evict A step by step, checking after every member's release.
    let mut vacated = Vec::new();
    for txn in tree.active_subtree_post_order(a) {
        let release = table.release_abort(txn, &tree);
        vacated.extend(release.released);
        tree.abort(txn);
        check_against_reference(&table, &tree, &fams);
    }
    vacated.extend(table.cancel_family_waiters(a, &tree));
    check_against_reference(&table, &tree, &fams);
    table.regrant(&vacated, &tree);
    check_against_reference(&table, &tree, &fams);
    assert!(
        table.waits_for().is_empty(),
        "no waiters left after eviction"
    );
    assert!(
        table.held_objects(b).any(|o| o == obj(1)),
        "B granted the vacated write lock"
    );
}

/// Three families in a chain (C→B→A) with a read-write mix: no cycle, so
/// the guard must stay false for every family while edges exist — the
/// incremental graph must agree with the reference that a chain is not a
/// cycle.
#[test]
fn waiting_chain_is_not_reported_as_deadlock() {
    let mut tree = TxnTree::new();
    let mut table = table_with_objects(2);
    let a = tree.begin_root(node(1));
    let b = tree.begin_root(node(2));
    let c = tree.begin_root(node(3));
    let fams = [a, b, c];

    assert!(table
        .acquire(obj(0), a, LockMode::Read, &tree)
        .expect("acquire")
        .is_granted());
    assert!(matches!(
        table.acquire(obj(0), b, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    assert!(table
        .acquire(obj(1), b, LockMode::Write, &tree)
        .expect("acquire")
        .is_granted());
    assert!(matches!(
        table.acquire(obj(1), c, LockMode::Write, &tree),
        Ok(Acquire::Queued)
    ));
    check_against_reference(&table, &tree, &fams);
    assert!(!table.waits_for().is_empty());
    // The guard is conservative: A and B have in-edges (someone waits on
    // them) so it fires, but C — the newest waiter, the only family a
    // fresh enqueue could have come from — has none, and the exact search
    // agrees there is no cycle anywhere.
    assert!(deadlock::may_deadlock_through(&table, &tree, a));
    assert!(deadlock::may_deadlock_through(&table, &tree, b));
    assert!(!deadlock::may_deadlock_through(&table, &tree, c));
    assert!(deadlock::find_deadlock_cycle(&table, &tree).is_none());

    // Drain the chain front to back; the graph must empty out.
    table.release_root_commit(a, &tree, &[], node(1));
    tree.commit_root(a);
    check_against_reference(&table, &tree, &fams);
    table.release_root_commit(b, &tree, &[], node(2));
    tree.commit_root(b);
    check_against_reference(&table, &tree, &fams);
    table.release_root_commit(c, &tree, &[], node(3));
    tree.commit_root(c);
    check_against_reference(&table, &tree, &fams);
    assert!(table.waits_for().is_empty());
}
