//! Chaos suite: seeded fault-injection scenarios over the whole engine.
//!
//! Every scenario runs a demo workload under an enabled fault plan —
//! lossy links, scheduled node outages, or both plus lock-request
//! timeouts — and must (a) reproduce itself exactly from its seed,
//! (b) commit a nonzero number of families, and (c) pass the
//! serializability oracle. Faults may slow the system down arbitrarily;
//! they may never make it wrong.
//!
//! The suite enumerates `4 protocols x 3 fault modes x CHAOS_SEEDS
//! seeds` scenarios (60 at the default of 5 seeds). CI sets
//! `CHAOS_SEEDS` lower to bound wall time.

use lotec::prelude::*;
use lotec::sim::{CrashWindow, FaultPlan};
use lotec_core::config::FaultConfig;
use lotec_core::spec::demo_workload;
use lotec_core::AdaptiveConfig;

/// Seeds for the sweep; override the count with `CHAOS_SEEDS=n`.
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    (0..n).map(|i| 101 + 37 * i).collect()
}

fn config_for(protocol: ProtocolKind, seed: u64, faults: FaultConfig) -> SystemConfig {
    SystemConfig {
        protocol,
        seed,
        faults,
        ..SystemConfig::default()
    }
}

/// Fault-free makespan of the scenario, used to place crash windows where
/// they are guaranteed to overlap live traffic.
fn calibrate_makespan(protocol: ProtocolKind, seed: u64) -> SimDuration {
    let config = config_for(protocol, seed, FaultConfig::default());
    let (registry, families) = demo_workload(&config, seed);
    run_engine(&config, &registry, &families)
        .expect("fault-free calibration run")
        .stats
        .makespan
}

/// Runs one chaos scenario twice and checks determinism, liveness, and
/// serializability.
fn check_scenario(protocol: ProtocolKind, seed: u64, faults: FaultConfig, label: &str) {
    let config = config_for(protocol, seed, faults);
    check_config(&config, seed, label);
}

/// Like [`check_scenario`] but takes a prebuilt config (for adaptive
/// variants) and hands the report back for extra assertions.
///
/// The second run carries the flight recorder, so the determinism
/// assertions double as a recorder-does-not-perturb check on every chaos
/// scenario, and an oracle violation leaves a forensics dump behind: the
/// panic message names the dump path so the failing seed can be triaged
/// offline with `obs_report --forensics`.
fn check_config(config: &SystemConfig, seed: u64, label: &str) -> RunReport {
    let protocol = config.protocol;
    let (registry, families) = demo_workload(config, seed);
    let a = run_engine(config, &registry, &families)
        .unwrap_or_else(|e| panic!("{label}/{protocol}/seed {seed}: run failed: {e}"));
    let (b, recorder) =
        lotec_core::run_engine_recorded(config, &registry, &families).expect("second run");

    // (a) Deterministic from the seed: both runs are byte-identical.
    assert_eq!(a.trace, b.trace, "{label}/{protocol}/seed {seed}");
    assert_eq!(a.final_chains, b.final_chains, "{label}/{protocol}/{seed}");
    assert_eq!(
        a.traffic.total(),
        b.traffic.total(),
        "{label}/{protocol}/{seed}"
    );
    assert_eq!(
        a.stats.makespan, b.stats.makespan,
        "{label}/{protocol}/{seed}"
    );

    // (b) Liveness: faults delay commits, they do not eat them. The demo
    // workload has no programmed root faults, so every family commits.
    assert!(
        a.stats.committed_families > 0,
        "{label}/{protocol}/seed {seed}: nothing committed"
    );
    assert_eq!(
        a.stats.committed_families as usize,
        families.len(),
        "{label}/{protocol}/seed {seed}: families lost"
    );

    // (c) Safety: the chaos run is still serializable. On violation,
    // dump the recorder ring before panicking so the anomaly can be
    // triaged without re-running the scenario.
    if let Err(e) = oracle::verify(&a) {
        let stem =
            std::env::temp_dir().join(format!("lotec_forensics_{label}_{protocol}_seed{seed}"));
        let dump = lotec_obs::ForensicsDump::oracle_violation(e.to_string(), &recorder);
        let written = dump
            .write_pair(&stem)
            .map(|(jsonl, _)| jsonl.display().to_string())
            .unwrap_or_else(|w| format!("<dump write failed: {w}>"));
        panic!(
            "{label}/{protocol}/seed {seed}: not serializable: {e}\n\
             forensics dump: {written} (inspect with `obs_report --forensics`)"
        );
    }
    a
}

fn drop_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        drop_prob: 0.10 + 0.02 * (seed % 5) as f64,
        duplicate_prob: 0.05,
        delay_prob: 0.10,
        max_extra_delay: SimDuration::from_micros(25),
        rto: SimDuration::from_micros(50),
        crashes: Vec::new(),
    }
}

fn crash_plan(protocol: ProtocolKind, seed: u64) -> FaultPlan {
    let makespan = calibrate_makespan(protocol, seed);
    let num_nodes = SystemConfig::default().num_nodes;
    let first = NodeId::new((seed % u64::from(num_nodes)) as u32);
    let second = NodeId::new(((seed + 1) % u64::from(num_nodes)) as u32);
    FaultPlan {
        rto: SimDuration::from_micros(50),
        crashes: vec![
            CrashWindow {
                node: first,
                at: SimTime::ZERO + makespan / 8,
                until: SimTime::ZERO + makespan / 3,
            },
            CrashWindow {
                node: second,
                at: SimTime::ZERO + makespan / 2,
                until: SimTime::ZERO + makespan * 3 / 4,
            },
        ],
        ..FaultPlan::default()
    }
}

#[test]
fn chaos_drop_only() {
    for protocol in ProtocolKind::ALL {
        for seed in seeds() {
            let faults = FaultConfig {
                plan: drop_plan(seed),
                ..FaultConfig::default()
            };
            check_scenario(protocol, seed, faults, "drop");
        }
    }
}

#[test]
fn chaos_crash_only() {
    for protocol in ProtocolKind::ALL {
        for seed in seeds() {
            let faults = FaultConfig {
                plan: crash_plan(protocol, seed),
                ..FaultConfig::default()
            };
            check_scenario(protocol, seed, faults, "crash");
        }
    }
}

#[test]
fn chaos_combined() {
    for protocol in ProtocolKind::ALL {
        for seed in seeds() {
            let mut plan = crash_plan(protocol, seed);
            // Milder drops than the drop-only mode: combined scenarios
            // stack three fault kinds on the same run.
            plan.drop_prob = 0.08;
            plan.duplicate_prob = 0.04;
            plan.delay_prob = 0.08;
            plan.max_extra_delay = SimDuration::from_micros(20);
            let faults = FaultConfig {
                plan,
                lock_timeout: SimDuration::from_micros(150),
            };
            check_scenario(protocol, seed, faults, "combined");
        }
    }
}

/// Adaptive LOTEC under every fault mode: the learned profiles must not
/// weaken any chaos guarantee, and a node crash mid-window must
/// invalidate the profile state — the engine drops every learned
/// refinement back to the static baseline and re-learns, rather than
/// trusting pre-crash observations.
#[test]
fn chaos_adaptive_lotec() {
    let protocol = ProtocolKind::Lotec;
    for seed in seeds() {
        let adaptive = AdaptiveConfig {
            enabled: true,
            window: 2,
        };

        let drop_faults = FaultConfig {
            plan: drop_plan(seed),
            ..FaultConfig::default()
        };
        let config = SystemConfig {
            adaptive,
            ..config_for(protocol, seed, drop_faults)
        };
        check_config(&config, seed, "adaptive-drop");

        let crash_faults = FaultConfig {
            plan: crash_plan(protocol, seed),
            ..FaultConfig::default()
        };
        let config = SystemConfig {
            adaptive,
            ..config_for(protocol, seed, crash_faults)
        };
        let report = check_config(&config, seed, "adaptive-crash");
        assert!(
            report.stats.crashes > 0,
            "adaptive-crash/seed {seed}: crash windows missed the run"
        );
        assert!(
            report.stats.profile_resets >= 1,
            "adaptive-crash/seed {seed}: node crash must invalidate \
             learned profiles"
        );

        let mut plan = crash_plan(protocol, seed);
        plan.drop_prob = 0.08;
        plan.duplicate_prob = 0.04;
        plan.delay_prob = 0.08;
        plan.max_extra_delay = SimDuration::from_micros(20);
        let combined_faults = FaultConfig {
            plan,
            lock_timeout: SimDuration::from_micros(150),
        };
        let config = SystemConfig {
            adaptive,
            ..config_for(protocol, seed, combined_faults)
        };
        let report = check_config(&config, seed, "adaptive-combined");
        assert!(
            report.stats.profile_resets >= 1,
            "adaptive-combined/seed {seed}: crash must reset profiles"
        );
    }
}

/// Differential guard on the zero-cost-off property: with the fault
/// machinery compiled in but disabled, the live engine and the
/// figure-replay path still produce identical per-protocol transfer
/// totals — byte for byte, object for object.
#[test]
fn fault_free_engine_matches_figure_replay_per_protocol() {
    for protocol in ProtocolKind::ALL {
        for seed in [3u64, 14] {
            let config = config_for(protocol, seed, FaultConfig::default());
            let (registry, families) = demo_workload(&config, seed);
            let report = run_engine(&config, &registry, &families).expect("fault-free run");
            let replayed =
                lotec_core::replay::replay_trace(protocol, &report.trace, &registry, &config);
            assert_eq!(
                report.traffic.total(),
                replayed.total(),
                "{protocol}/seed {seed}: live engine diverged from figure replay"
            );
            for inst in registry.objects() {
                assert_eq!(
                    report.traffic.object(inst.id),
                    replayed.object(inst.id),
                    "{protocol}/seed {seed}/{}: per-object totals diverged",
                    inst.id
                );
            }
        }
    }
}
