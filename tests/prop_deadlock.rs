//! Property test: random lock-table op streams against the from-scratch
//! deadlock oracle.
//!
//! A seeded [`SimRng`] drives long random streams of every lock-table
//! operation the engine performs — child begins, acquisitions (granted
//! and queued), pre-commits, sub-transaction aborts, root commits,
//! waiter timeouts, and whole-family evictions — while the table runs
//! with internal graph validation armed. After every mutation the test
//! asserts, externally:
//!
//! * the incremental waits-for graph equals a from-scratch rebuild
//!   ([`reference::waits_for`]);
//! * a `false` from the O(1) enqueue gate implies the reference search
//!   finds no cycle at all (soundness of skipping detection);
//! * the scoped search through the newly enqueued family, the full
//!   incremental search, and the reference search return the *same*
//!   cycle, rotation included;
//! * the chosen victim is the youngest (largest-id) cycle member.
//!
//! The stream mirrors the engine's discipline: every cycle is broken the
//! moment it forms (youngest victim aborted, waiters cancelled, vacated
//! objects regranted), which is exactly the acyclic-before-enqueue
//! invariant the O(1) gate and the scoped search rely on.

use lotec::sim::SimRng;
use lotec_mem::ObjectId;
use lotec_sim::NodeId;
use lotec_txn::deadlock::{self, reference};
use lotec_txn::{Acquire, Grant, LockMode, LockTable, TxnId, TxnTree};

const NUM_OBJECTS: u32 = 5;
const NUM_FAMILIES: usize = 4;
const STEPS: usize = 250;
const MAX_DEPTH: usize = 4;
const SEEDS: [u64; 8] = [
    0xD15C_0001,
    0xD15C_0002,
    0xD15C_0003,
    0xD15C_0004,
    0xD15C_0005,
    0xD15C_0006,
    0xD15C_0007,
    0xD15C_0008,
];

/// One live family: its root, the stack of active transactions along the
/// current invocation path (ops act on the top), and whether its top has
/// a queued lock request outstanding (a blocked family runs nothing
/// until granted, timed out, or aborted — same as in the engine).
struct Family {
    root: TxnId,
    stack: Vec<TxnId>,
    waiting: bool,
}

struct Harness {
    tree: TxnTree,
    table: LockTable,
    families: Vec<Family>,
    next_node: u32,
    /// Number of deadlock cycles broken so far (victims aborted).
    deadlocks_broken: u32,
}

impl Harness {
    fn new() -> Self {
        let mut table = LockTable::new();
        for i in 0..NUM_OBJECTS {
            table.register_object(ObjectId::new(i), 4, NodeId::new(0));
        }
        table.enable_graph_validation();
        let mut h = Harness {
            tree: TxnTree::new(),
            table,
            families: Vec::new(),
            next_node: 1,
            deadlocks_broken: 0,
        };
        for _ in 0..NUM_FAMILIES {
            h.spawn_family();
        }
        h
    }

    fn spawn_family(&mut self) {
        let root = self.tree.begin_root(NodeId::new(self.next_node));
        self.next_node += 1;
        self.families.push(Family {
            root,
            stack: vec![root],
            waiting: false,
        });
    }

    /// The oracle, run after every mutation.
    fn check(&self) {
        if let Err(msg) = self.table.check_invariants(&self.tree) {
            panic!("lock-table invariant violated: {msg}");
        }
        assert_eq!(
            self.table.waits_for().to_reference(),
            reference::waits_for(&self.table, &self.tree),
            "incremental waits-for graph diverged from from-scratch rebuild"
        );
    }

    /// Clears the waiting flag of every family that appears in `grants`.
    fn apply_grants(&mut self, grants: &[Grant]) {
        for grant in grants {
            for req in &grant.requests {
                let fam = self.tree.root_of(req.txn);
                if let Some(f) = self.families.iter_mut().find(|f| f.root == fam) {
                    f.waiting = false;
                }
            }
        }
    }

    /// Aborts a whole family the way the engine evicts one (deadlock
    /// victim or crash): post-order abort-release of every active
    /// member, waiter cancellation, then a regrant pass. Checks the
    /// oracle after every member's release.
    fn abort_family(&mut self, root: TxnId) {
        for txn in self.tree.active_subtree_post_order(root) {
            let release = self.table.release_abort(txn, &self.tree);
            self.tree.abort(txn);
            self.apply_grants(&release.grants);
            self.check();
        }
        let vacated = self.table.cancel_family_waiters(root, &self.tree);
        self.check();
        let grants = self.table.regrant(&vacated, &self.tree);
        self.apply_grants(&grants);
        self.check();
        self.families.retain(|f| f.root != root);
        self.spawn_family();
    }

    /// The engine's post-enqueue discipline: consult the O(1) gate, and
    /// if it fires run the scoped search and abort youngest victims
    /// until no cycle remains. Asserts gate soundness and search/victim
    /// agreement along the way.
    fn break_deadlocks_after_enqueue(&mut self, enqueued: TxnId) {
        if !deadlock::may_deadlock_through(&self.table, &self.tree, enqueued) {
            assert_eq!(
                reference::find_deadlock_cycle(&self.table, &self.tree),
                None,
                "gate said skip, but the reference finds a cycle"
            );
            return;
        }
        // First pass is scoped to the enqueued family — any cycle must
        // pass through it. Victim aborts can cascade grants, so keep
        // sweeping with the full search until the graph is clean.
        let mut scoped = Some(enqueued);
        loop {
            let cycle = match scoped.take() {
                Some(fam) => {
                    let through =
                        deadlock::find_deadlock_cycle_through(&self.table, &self.tree, fam);
                    assert_eq!(
                        through,
                        deadlock::find_deadlock_cycle(&self.table, &self.tree),
                        "scoped and full searches disagree"
                    );
                    through
                }
                None => deadlock::find_deadlock_cycle(&self.table, &self.tree),
            };
            let Some(cycle) = cycle else { break };
            assert_eq!(
                Some(&cycle),
                reference::find_deadlock_cycle(&self.table, &self.tree).as_ref(),
                "incremental cycle differs from reference (rotation included)"
            );
            let victim = deadlock::pick_victim(&cycle);
            assert_eq!(
                victim,
                *cycle.iter().max().expect("cycle is non-empty"),
                "victim must be the youngest cycle member"
            );
            self.deadlocks_broken += 1;
            self.abort_family(victim);
        }
    }

    fn step(&mut self, rng: &mut SimRng) {
        let idx = rng.usize_range(0, self.families.len() - 1);
        let (root, top, waiting, depth) = {
            let f = &self.families[idx];
            (
                f.root,
                *f.stack.last().expect("stack non-empty"),
                f.waiting,
                f.stack.len(),
            )
        };

        if waiting {
            // A blocked family can only time out (or sit tight).
            if rng.chance(0.5) {
                let vacated = self.table.cancel_family_waiters(root, &self.tree);
                self.check();
                let grants = self.table.regrant(&vacated, &self.tree);
                self.apply_grants(&grants);
                self.check();
                self.families[idx].waiting = false;
            }
            return;
        }

        match rng.usize_range(0, 9) {
            // Begin a child invocation.
            0 | 1 if depth < MAX_DEPTH => {
                let child = self.tree.begin_child(top);
                self.families[idx].stack.push(child);
                self.check();
            }
            // Acquire a random object in a random mode.
            0..=4 => {
                let object = ObjectId::new(rng.next_below(u64::from(NUM_OBJECTS)) as u32);
                let mode = if rng.chance(0.6) {
                    LockMode::Write
                } else {
                    LockMode::Read
                };
                match self.table.acquire(object, top, mode, &self.tree) {
                    Ok(Acquire::Queued) => {
                        self.check();
                        self.families[idx].waiting = true;
                        self.break_deadlocks_after_enqueue(root);
                    }
                    Ok(_) => self.check(),
                    // Ancestor-held or already-held requests are the
                    // engine's problem to avoid; here they are no-ops.
                    Err(_) => {}
                }
            }
            // Pre-commit the top sub-transaction.
            5 | 6 if depth > 1 => {
                self.table.release_pre_commit(top, &self.tree);
                self.tree.pre_commit(top);
                self.families[idx].stack.pop();
                self.check();
            }
            // Abort the top sub-transaction.
            7 if depth > 1 => {
                let release = self.table.release_abort(top, &self.tree);
                self.tree.abort(top);
                self.families[idx].stack.pop();
                self.apply_grants(&release.grants);
                self.check();
            }
            // Root commit: the family's work is done.
            5..=7 => {
                let release = self
                    .table
                    .release_root_commit(root, &self.tree, &[], NodeId::new(0));
                self.tree.commit_root(root);
                self.apply_grants(&release.grants);
                self.check();
                self.families.retain(|f| f.root != root);
                self.spawn_family();
            }
            // Evict the whole family (crash).
            8 => self.abort_family(root),
            // Idle tick.
            _ => {}
        }
    }
}

#[test]
fn random_op_streams_agree_with_reference_detector() {
    for seed in SEEDS {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut h = Harness::new();
        for _ in 0..STEPS {
            h.step(&mut rng);
        }
        // Drain: evict everything and end with an empty graph.
        while let Some(f) = h.families.first() {
            let root = f.root;
            h.abort_family(root);
            if h.tree.len() > 10_000 {
                panic!("family population failed to drain");
            }
            // `abort_family` respawns; pop the respawned one directly.
            let spawned = h.families.pop().expect("respawned family");
            assert_ne!(spawned.root, root);
        }
        assert!(
            h.table.waits_for().is_empty(),
            "graph must be empty once every family is gone (seed {seed:#x})"
        );
    }
}

/// Deadlocks must actually occur in the streams — otherwise the victim
/// and cycle assertions above never run and the suite silently proves
/// nothing. Count them across all seeds.
#[test]
fn streams_exercise_real_deadlocks() {
    let mut cycles_broken = 0u32;
    for seed in SEEDS {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut h = Harness::new();
        let families_before = h.tree.len();
        for _ in 0..STEPS {
            h.step(&mut rng);
        }
        // Every txn beyond the survivors exists because something
        // committed or aborted; sanity-floor the activity level.
        assert!(
            h.tree.len() > families_before,
            "stream did nothing (seed {seed:#x})"
        );
        cycles_broken += h.deadlocks_broken;
    }
    assert!(
        cycles_broken >= 5,
        "streams broke only {cycles_broken} deadlocks across all seeds — \
         the cycle/victim properties are under-exercised"
    );
}
