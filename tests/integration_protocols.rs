//! Cross-crate integration tests: the protocol suite on the paper's
//! figure scenarios (quick variants).

use lotec::prelude::*;
use lotec::workload::presets;
use lotec_net::MessageKind;

fn run(scenario: lotec::workload::Scenario) -> (ObjectRegistry, ProtocolComparison) {
    let (registry, families) = scenario.generate().expect("workload generates");
    let config = scenario.system_config();
    let cmp = compare_protocols(&config, &registry, &families).expect("simulation runs");
    (registry, cmp)
}

#[test]
fn byte_ordering_holds_on_every_figure_scenario() {
    for scenario in presets::all_figures() {
        let scenario = presets::quick(scenario);
        let name = scenario.name.clone();
        let (_, cmp) = run(scenario);
        let l = cmp.total(ProtocolKind::Lotec).bytes;
        let o = cmp.total(ProtocolKind::Otec).bytes;
        let c = cmp.total(ProtocolKind::Cotec).bytes;
        assert!(l <= o, "{name}: LOTEC {l} > OTEC {o}");
        assert!(o <= c, "{name}: OTEC {o} > COTEC {c}");
        assert!(l > 0, "{name}: no traffic at all");
    }
}

#[test]
fn page_payload_ordering_is_strict_per_object_quantity() {
    // Whole-message bytes can tie or wobble by header sizes; the page
    // payload itself must be strictly ordered LOTEC <= OTEC <= COTEC.
    for scenario in [
        presets::quick(presets::fig2()),
        presets::quick(presets::fig3()),
    ] {
        let config = scenario.system_config();
        let (_, cmp) = run(scenario);
        let sizes = config.sizes;
        let payload = |k: ProtocolKind| cmp.traffic(k).page_payload_bytes(&sizes, config.page_size);
        assert!(payload(ProtocolKind::Lotec) <= payload(ProtocolKind::Otec));
        assert!(payload(ProtocolKind::Otec) <= payload(ProtocolKind::Cotec));
    }
}

#[test]
fn lotec_sends_more_smaller_messages_than_otec() {
    // The paper's §5 trade-off observation.
    let (_, cmp) = run(presets::quick(presets::fig3()));
    let o = cmp.total(ProtocolKind::Otec);
    let l = cmp.total(ProtocolKind::Lotec);
    assert!(
        l.messages >= o.messages,
        "LOTEC {} < OTEC {} messages",
        l.messages,
        o.messages
    );
    let mean = |t: lotec_net::ObjectTraffic| t.bytes as f64 / t.messages as f64;
    assert!(
        mean(l) < mean(o),
        "LOTEC's messages should be smaller on average"
    );
}

#[test]
fn lock_traffic_is_protocol_independent() {
    // O2PL is shared; only page traffic differs between the paper's trio.
    let (_, cmp) = run(presets::quick(presets::fig4()));
    for kind in [
        MessageKind::LockRequest,
        MessageKind::LockGrant,
        MessageKind::LockRelease,
    ] {
        let c = cmp.traffic(ProtocolKind::Cotec).ledger().kind(kind);
        assert_eq!(c, cmp.traffic(ProtocolKind::Otec).ledger().kind(kind));
        assert_eq!(c, cmp.traffic(ProtocolKind::Lotec).ledger().kind(kind));
    }
}

#[test]
fn network_sweep_exhibits_the_papers_crossover_structure() {
    // On a slow link LOTEC's byte savings dominate; at gigabit speeds the
    // per-message software cost decides, so LOTEC's advantage must shrink
    // (and typically invert under a heavyweight stack).
    let (_, cmp) = run(presets::quick(presets::network_sweep()));
    let slow = NetworkConfig::new(Bandwidth::ethernet10(), SoftwareCost::MICROS_100);
    let fast = NetworkConfig::new(Bandwidth::gigabit(), SoftwareCost::MICROS_100);
    let advantage = |net: NetworkConfig| {
        let l = cmp.total_time(ProtocolKind::Lotec, net).as_nanos() as f64;
        let o = cmp.total_time(ProtocolKind::Otec, net).as_nanos() as f64;
        o / l // > 1 means LOTEC wins
    };
    let slow_adv = advantage(slow);
    let fast_adv = advantage(fast);
    assert!(
        slow_adv > 1.0,
        "LOTEC must win on 10Mbps: advantage {slow_adv:.3}"
    );
    assert!(
        fast_adv < slow_adv,
        "LOTEC's advantage must shrink at 1Gbps: {fast_adv:.3} vs {slow_adv:.3}"
    );
}

#[test]
fn faster_software_always_helps_and_never_reorders_causality() {
    let (_, cmp) = run(presets::quick(presets::fig3()));
    for kind in ProtocolKind::ALL {
        let mut last = None;
        for sc in SoftwareCost::paper_sweep() {
            let t = cmp.total_time(kind, NetworkConfig::new(Bandwidth::fast_ethernet(), sc));
            if let Some(prev) = last {
                assert!(
                    t <= prev,
                    "{kind}: cheaper software must not cost more time"
                );
            }
            last = Some(t);
        }
    }
}

#[test]
fn rc_extension_trades_fetches_for_pushes() {
    let (_, cmp) = run(presets::quick(presets::fig3()));
    let rc = cmp.traffic(ProtocolKind::ReleaseConsistency).ledger();
    let lotec = cmp.traffic(ProtocolKind::Lotec).ledger();
    assert!(
        rc.kind(MessageKind::UpdatePush).messages > 0,
        "RC must push"
    );
    assert_eq!(
        lotec.kind(MessageKind::UpdatePush).messages,
        0,
        "LOTEC never pushes"
    );
    // RC acquirers fetch less than OTEC acquirers (caching sites are kept
    // current by the pushes).
    let rc_fetch = rc.kind(MessageKind::PageTransfer).bytes;
    let otec_fetch = cmp
        .traffic(ProtocolKind::Otec)
        .ledger()
        .kind(MessageKind::PageTransfer)
        .bytes;
    assert!(
        rc_fetch <= otec_fetch,
        "RC fetch {rc_fetch} > OTEC fetch {otec_fetch}"
    );
}

#[test]
fn per_object_traffic_sums_to_total() {
    let (registry, cmp) = run(presets::quick(presets::fig2()));
    for kind in ProtocolKind::ALL {
        let mut bytes = 0;
        let mut messages = 0;
        for inst in registry.objects() {
            let t = cmp.object(kind, inst.id);
            bytes += t.bytes;
            messages += t.messages;
        }
        let total = cmp.total(kind);
        assert_eq!(bytes, total.bytes, "{kind}");
        assert_eq!(messages, total.messages, "{kind}");
    }
}

#[test]
fn medium_and_large_scenarios_really_differ_in_object_size() {
    let (reg_medium, _) = run(presets::quick(presets::fig2()));
    let (reg_large, _) = run(presets::quick(presets::fig3()));
    let max_medium = (0..reg_medium.num_objects() as u32)
        .map(|i| reg_medium.num_pages(ObjectId::new(i)))
        .max()
        .expect("nonempty");
    let min_large = (0..reg_large.num_objects() as u32)
        .map(|i| reg_large.num_pages(ObjectId::new(i)))
        .min()
        .expect("nonempty");
    assert!(max_medium <= 5);
    assert!(min_large >= 10);
}
