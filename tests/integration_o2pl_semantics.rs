//! System-level tests of the nested-O2PL semantics of §3: closed nesting,
//! lock inheritance and retention, observed through real engine runs with
//! hand-built transaction families.

use lotec::prelude::*;
use lotec_core::trace::TraceEvent;
use lotec_core::SystemConfig as Cfg;
use lotec_mem::mix;

const PAGE: u32 = 256;

/// One class, `n` single-page-ish objects. Method 0 writes, method 1 reads,
/// method 2 writes and then invokes method 0 on another object, method 3
/// writes and invokes method 0 twice (two children).
fn registry(n: u32, num_nodes: u32) -> ObjectRegistry {
    let class = ClassBuilder::new("Cell")
        .attribute("v", 64)
        .method("write", |m| m.path(|p| p.reads(&["v"]).writes(&["v"])))
        .method("read", |m| m.path(|p| p.reads(&["v"])))
        .method("write_then_one", |m| {
            m.path(|p| {
                p.reads(&["v"])
                    .writes(&["v"])
                    .invokes(ClassId::new(0), MethodId::new(0))
            })
        })
        .method("write_then_two", |m| {
            m.path(|p| {
                p.reads(&["v"])
                    .writes(&["v"])
                    .invokes(ClassId::new(0), MethodId::new(0))
                    .invokes(ClassId::new(0), MethodId::new(0))
            })
        })
        .build();
    let instances: Vec<(ClassId, NodeId)> = (0..n)
        .map(|i| (ClassId::new(0), NodeId::new(i % num_nodes)))
        .collect();
    ObjectRegistry::build(&[class], &instances, PAGE).expect("registry builds")
}

fn leaf(object: u32, method: u32) -> InvocationSpec {
    InvocationSpec::leaf(ObjectId::new(object), MethodId::new(method), PathId::new(0))
}

#[test]
fn closedness_foreign_reader_waits_for_root_commit() {
    // Family A: root writes O0, then runs a slow child on O1. Family B
    // asks to read O0 *while A's root still runs* — under closed nesting B
    // must not be granted until A's root commits, even though A's work on
    // O0 finished long before.
    let config = Cfg {
        num_nodes: 2,
        ..Cfg::default()
    };
    let registry = registry(2, 2);
    let family_a = FamilySpec {
        node: NodeId::new(0),
        start: SimTime::ZERO,
        root: InvocationSpec {
            object: ObjectId::new(0),
            method: MethodId::new(2), // write O0, then child on O1
            path: PathId::new(0),
            children: vec![leaf(1, 0)],
            abort: false,
        },
    };
    let family_b = FamilySpec {
        node: NodeId::new(1),
        // Arrives after A's root grant but well before A finishes.
        start: SimTime::from_micros(100),
        root: leaf(0, 1),
    };
    let report = run_engine(&config, &registry, &[family_a, family_b]).expect("runs");
    oracle::verify(&report).expect("serializable");

    let mut a_commit = None;
    let mut b_grant = None;
    for event in report.trace.events() {
        match event {
            TraceEvent::RootCommit { at, family: 0, .. } => a_commit = Some(*at),
            TraceEvent::Grant {
                at, family, object, ..
            } if *object == ObjectId::new(0) && *family != 0 => {
                b_grant = Some(*at);
            }
            _ => {}
        }
    }
    let (a_commit, b_grant) = (a_commit.expect("A commits"), b_grant.expect("B granted"));
    assert!(
        b_grant > a_commit,
        "closed nesting violated: B granted at {b_grant} before A committed at {a_commit}"
    );
    // And B read A's committed value: the final chain of O0/p0 reflects
    // exactly A's single write (stamp = A's root txn id 0).
    let chain = report.final_chains[&(ObjectId::new(0), PageIndex::new(0))];
    assert_eq!(chain, mix(0, 0), "B must observe A's committed write");
}

#[test]
fn sibling_reuses_retained_lock_locally() {
    // One family: the root writes O0 and invokes two children that both
    // write O1. The second child's acquisition must be served locally from
    // the root's retained lock (no GDO messages).
    let config = Cfg {
        num_nodes: 2,
        ..Cfg::default()
    };
    let registry = registry(2, 2);
    let family = FamilySpec {
        node: NodeId::new(0),
        start: SimTime::ZERO,
        root: InvocationSpec {
            object: ObjectId::new(0),
            method: MethodId::new(3), // two invocation sites
            path: PathId::new(0),
            children: vec![leaf(1, 0), leaf(1, 0)],
            abort: false,
        },
    };
    let report = run_engine(&config, &registry, &[family]).expect("runs");
    oracle::verify(&report).expect("serializable");
    assert_eq!(
        report.stats.local_lock_grants, 1,
        "second sibling is a local grant"
    );
    // Both writes survive: O1's chain is two stamps deep.
    let chain = report.final_chains[&(ObjectId::new(1), PageIndex::new(0))];
    assert_eq!(
        chain,
        mix(mix(0, 1), 2),
        "both sibling writes committed (txns T1, T2)"
    );
}

#[test]
fn aborted_child_work_is_invisible_but_siblings_survive() {
    // Root writes O0; child 1 writes O1 and is fault-injected to abort;
    // child 2 writes O2 and succeeds. After commit: O0 and O2 carry the
    // writes, O1 is untouched.
    let config = Cfg {
        num_nodes: 2,
        ..Cfg::default()
    };
    let registry = registry(3, 2);
    let mut doomed = leaf(1, 0);
    doomed.abort = true;
    let family = FamilySpec {
        node: NodeId::new(0),
        start: SimTime::ZERO,
        root: InvocationSpec {
            object: ObjectId::new(0),
            method: MethodId::new(3),
            path: PathId::new(0),
            children: vec![doomed, leaf(2, 0)],
            abort: false,
        },
    };
    let report = run_engine(&config, &registry, &[family]).expect("runs");
    oracle::verify(&report).expect("serializable");
    assert_eq!(report.stats.subtxn_aborts, 1);
    assert_eq!(report.stats.committed_families, 1);
    assert_eq!(
        report.final_chains[&(ObjectId::new(1), PageIndex::new(0))],
        0,
        "aborted child's write must be rolled back"
    );
    assert_ne!(
        report.final_chains[&(ObjectId::new(2), PageIndex::new(0))],
        0,
        "surviving sibling's write must commit"
    );
    assert_ne!(
        report.final_chains[&(ObjectId::new(0), PageIndex::new(0))],
        0
    );
}

#[test]
fn two_phase_rule_no_lock_released_before_root_commit() {
    // Structural check over the trace: for every family, every grant it
    // receives happens before its root commit — and no foreign family is
    // granted any of its objects in between (strictness).
    let scenario = lotec::workload::presets::quick(lotec::workload::presets::fig2());
    let (registry, families) = scenario.generate().expect("generates");
    let report = run_engine(&scenario.system_config(), &registry, &families).expect("runs");
    oracle::verify(&report).expect("serializable");

    use std::collections::BTreeMap;
    // family -> commit time.
    let mut commit_at = BTreeMap::new();
    for event in report.trace.events() {
        if let TraceEvent::RootCommit { at, family, .. } = event {
            commit_at.insert(*family, *at);
        }
    }
    // For every WRITE grant to family F on object O, no other family may
    // be granted O before F's commit.
    let events = report.trace.events();
    for (i, event) in events.iter().enumerate() {
        let TraceEvent::Grant {
            family,
            object,
            mode,
            ..
        } = event
        else {
            continue;
        };
        if *mode != lotec::txn::LockMode::Write {
            continue;
        }
        let Some(&commit) = commit_at.get(family) else {
            continue; // aborted family: strictness until its abort instead
        };
        for later in &events[i + 1..] {
            if later.at() >= commit {
                break;
            }
            if let TraceEvent::Grant {
                family: f2,
                object: o2,
                ..
            } = later
            {
                assert!(
                    !(o2 == object && f2 != family),
                    "strict 2PL violated: {f2} granted {o2} before {family} committed"
                );
            }
        }
    }
}

#[test]
fn read_only_family_never_appears_in_dirty_info() {
    let config = Cfg {
        num_nodes: 2,
        ..Cfg::default()
    };
    let registry = registry(1, 2);
    let writer = FamilySpec {
        node: NodeId::new(0),
        start: SimTime::ZERO,
        root: leaf(0, 0),
    };
    let reader = FamilySpec {
        node: NodeId::new(1),
        start: SimTime::from_micros(1),
        root: leaf(0, 1),
    };
    let report = run_engine(&config, &registry, &[writer, reader]).expect("runs");
    oracle::verify(&report).expect("serializable");
    let mut commits = 0;
    for event in report.trace.events() {
        if let TraceEvent::RootCommit {
            family,
            dirty,
            released,
            ..
        } = event
        {
            commits += 1;
            if *family == 1 {
                assert!(dirty.is_empty(), "reader must piggyback no dirty info");
                assert_eq!(released.len(), 1, "reader still releases its read lock");
            }
        }
    }
    assert_eq!(commits, 2);
}
