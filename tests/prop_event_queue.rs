//! Differential property suite for the calendar event queue.
//!
//! The simulator's pop order is the bedrock every golden fingerprint rests
//! on, so the two-tier calendar queue (`lotec_sim::EventQueue`) is checked
//! operation-for-operation against the retained single-heap implementation
//! (`lotec_sim::event::reference::HeapQueue`): for seeded random streams of
//! interleaved pushes and pops — with deliberately heavy timestamp ties —
//! every pop must return the same `(time, payload)` pair, every peek the
//! same timestamp, and every length query the same count. Edge-case suites
//! cover bucket wraparound, far-future overflow spill, and the
//! overflow-behind-ring window-jump case.

use lotec::sim::event::reference::HeapQueue;
use lotec::sim::{EventQueue, SimRng, SimTime};

const CASES: u64 = 48;

/// Mirrors the queue's internal geometry (256 buckets x 4096 ns): offsets
/// are sized relative to it so streams exercise in-bucket ties, cross-bucket
/// order, horizon spill, and multi-window jumps.
const BUCKET_NS: u64 = 4096;
const SPAN_NS: u64 = 256 * BUCKET_NS;

fn t(n: u64) -> SimTime {
    SimTime::from_nanos(n)
}

/// Drives both queues through the same operation stream, asserting
/// lock-step equivalence after every operation.
struct Differ {
    calendar: EventQueue<u32>,
    oracle: HeapQueue<u32>,
    /// Simulated clock: pops advance it, pushes never precede it, matching
    /// the `Simulator`'s schedule-at-or-after-now contract.
    now: u64,
    tag: u32,
}

impl Differ {
    fn new() -> Self {
        Self {
            calendar: EventQueue::new(),
            oracle: HeapQueue::new(),
            now: 0,
            tag: 0,
        }
    }

    fn push(&mut self, at: u64) {
        self.calendar.push(t(at), self.tag);
        self.oracle.push(t(at), self.tag);
        self.tag += 1;
        self.check();
    }

    fn pop(&mut self) {
        let got = self.calendar.pop();
        let want = self.oracle.pop();
        assert_eq!(got, want, "pop diverged after {} ops", self.tag);
        if let Some((time, _)) = got {
            assert!(time.as_nanos() >= self.now, "time went backwards");
            self.now = time.as_nanos();
        }
        self.check();
    }

    fn check(&self) {
        assert_eq!(self.calendar.peek_time(), self.oracle.peek_time());
        assert_eq!(self.calendar.len(), self.oracle.len());
        assert_eq!(self.calendar.is_empty(), self.oracle.is_empty());
    }

    fn drain(&mut self) {
        while !self.oracle.is_empty() {
            self.pop();
        }
        assert!(self.calendar.is_empty());
    }
}

fn random_offset(rng: &mut SimRng) -> u64 {
    match rng.next_below(6) {
        // Exact tie with the clock — exercises FIFO ordering at `now`.
        0 => 0,
        // Same-bucket neighbours (ties by bucket, distinct times).
        1 => rng.next_below(BUCKET_NS),
        // A few buckets out.
        2 => rng.next_below(16 * BUCKET_NS),
        // Anywhere in the ring window.
        3 => rng.next_below(SPAN_NS),
        // Just around the horizon boundary.
        4 => SPAN_NS - BUCKET_NS + rng.next_below(2 * BUCKET_NS),
        // Deep in overflow territory, up to several windows out.
        _ => SPAN_NS + rng.next_below(4 * SPAN_NS),
    }
}

#[test]
fn random_streams_match_reference_heap() {
    let root = SimRng::seed_from_u64(0xE7E9_71BD);
    for case in 0..CASES {
        let mut rng = root.fork(case);
        let mut d = Differ::new();
        let ops = 200 + rng.next_below(600);
        for _ in 0..ops {
            if d.oracle.is_empty() || rng.next_below(5) < 3 {
                let offset = random_offset(&mut rng);
                d.push(d.now + offset);
            } else {
                d.pop();
            }
        }
        d.drain();
    }
}

#[test]
fn heavy_tie_streams_preserve_fifo() {
    // Many events at identical timestamps, pushed across several
    // interleaved batches: tie-break must stay insertion-ordered even when
    // pops interleave with pushes at the same instant.
    let root = SimRng::seed_from_u64(0x71E5_CAFE);
    for case in 0..CASES {
        let mut rng = root.fork(case);
        let mut d = Differ::new();
        for _ in 0..200 {
            // At most three distinct timestamps live at once.
            let offset = rng.next_below(3) * BUCKET_NS;
            d.push(d.now + offset);
            if rng.next_below(3) == 0 {
                d.pop();
            }
        }
        d.drain();
    }
}

#[test]
fn burst_drain_cycles_cross_many_windows() {
    // Push bursts, then full drains, with the clock leaping multiple ring
    // spans between bursts — stresses window wraparound and the
    // empty-ring window jump.
    let root = SimRng::seed_from_u64(0x0B5E_55ED);
    for case in 0..CASES {
        let mut rng = root.fork(case);
        let mut d = Differ::new();
        for _ in 0..12 {
            let burst = 1 + rng.next_below(40);
            for _ in 0..burst {
                let offset = random_offset(&mut rng);
                d.push(d.now + offset);
            }
            d.drain();
            // Leap the clock: the next burst starts in a distant window.
            d.now += rng.next_below(8 * SPAN_NS);
        }
    }
}

#[test]
fn far_future_spill_returns_in_order() {
    // All pushes beyond the horizon, popped interleaved with near pushes:
    // overflow entries must surface exactly when they become the global
    // minimum, even though the ring window has advanced past them.
    let root = SimRng::seed_from_u64(0xFA57_F00D);
    for case in 0..CASES {
        let mut rng = root.fork(case);
        let mut d = Differ::new();
        // Seed overflow with far-future events.
        for _ in 0..20 {
            let offset = SPAN_NS + rng.next_below(3 * SPAN_NS);
            d.push(d.now + offset);
        }
        // Interleave near-term traffic that drags the window forward.
        for _ in 0..120 {
            if rng.next_below(2) == 0 {
                d.push(d.now + rng.next_below(2 * BUCKET_NS));
            } else {
                d.pop();
            }
        }
        d.drain();
    }
}

#[test]
fn clear_resets_both_tiers_and_keeps_seq_monotonic() {
    let mut d = Differ::new();
    for i in 0..50 {
        d.push(i * 17 % (2 * SPAN_NS));
    }
    d.calendar.clear();
    d.oracle.clear();
    assert!(d.calendar.is_empty());
    d.check();
    // Ties pushed after a clear still pop FIFO against the oracle.
    for _ in 0..10 {
        d.push(BUCKET_NS);
    }
    d.drain();
}
