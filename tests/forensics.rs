//! End-to-end failure forensics: the seeded deadlock-victim scenario
//! must leave a deterministic dump behind, the dump must reconstruct the
//! cycle the engine actually broke, and the flight recorder must be
//! invisible to the simulation it rides along with.
//!
//! The scenario is the quick fig3 preset under LOTEC at a pinned seed —
//! a configuration verified to break exactly one deadlock — so every
//! assertion here is exact, not probabilistic.

use lotec_core::engine::{run_engine, run_engine_with_probe, MAX_FORENSICS_DUMPS};
use lotec_core::protocol::ProtocolKind;
use lotec_core::{oracle, run_engine_recorded, SystemConfig};
use lotec_obs::{find_cycle, Anomaly, CompactRecord, ForensicsDump, RecordingSink};
use lotec_workload::presets;

/// Seed at which quick-fig3/LOTEC breaks exactly one deadlock.
const DEADLOCK_SEED: u64 = 11;

fn deadlock_config(slots: u32) -> (SystemConfig, lotec_workload::Scenario) {
    let scenario = presets::quick(presets::fig3());
    let config = SystemConfig {
        protocol: ProtocolKind::Lotec,
        seed: DEADLOCK_SEED,
        num_nodes: scenario.config.num_nodes,
        page_size: scenario.config.schema.page_size,
        ..SystemConfig::default()
    }
    .with_flight_recorder(slots);
    (config, scenario)
}

fn run_recorded(slots: u32) -> (lotec_core::RunReport, lotec_obs::FlightRecorder) {
    let (config, scenario) = deadlock_config(slots);
    let (registry, families) = scenario.generate().expect("workload generates");
    run_engine_recorded(&config, &registry, &families).expect("recorded run")
}

/// The pinned scenario produces a deadlock-victim dump whose anomaly,
/// dumped waits-for edges, and triage report all agree: the cycle
/// reconstructed from the edges is the cycle the engine broke.
#[test]
fn deadlock_victim_dump_reconstructs_the_cycle() {
    let (report, _recorder) = run_recorded(4096);
    assert_eq!(
        report.stats.deadlocks, 1,
        "scenario must break one deadlock"
    );
    assert!(
        !report.forensics.is_empty() && report.forensics.len() <= MAX_FORENSICS_DUMPS,
        "deadlock break must capture a bounded number of dumps"
    );
    oracle::verify(&report).expect("serializable despite the deadlock");

    let dump = report
        .forensics
        .iter()
        .find(|d| matches!(d.anomaly, Anomaly::DeadlockVictim { .. }))
        .expect("a deadlock-victim dump");
    let Anomaly::DeadlockVictim {
        ref cycle, victim, ..
    } = dump.anomaly
    else {
        unreachable!()
    };
    assert!(cycle.contains(&victim), "victim is a cycle member");

    // The cycle rebuilt from the dumped edges must cover the same roots
    // the engine's detector reported at the moment of the break.
    let rebuilt = find_cycle(&dump.waits_for).expect("dumped edges contain the cycle");
    let set = |c: &[u64]| {
        let mut v = c.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    assert_eq!(
        set(&rebuilt),
        set(cycle),
        "reconstructed cycle diverged from the anomaly's"
    );

    let triage = dump.render_triage();
    assert!(
        triage.contains("matches anomaly: yes"),
        "triage must confirm the reconstruction:\n{triage}"
    );
    assert!(
        triage.contains("victim family") && triage.contains("waits-for cycle"),
        "triage names the victim and the cycle:\n{triage}"
    );
}

/// The dump is deterministic: rerunning the identical scenario renders a
/// byte-identical JSONL, and parsing it back reproduces the same bytes.
#[test]
fn deadlock_victim_dump_is_byte_deterministic() {
    let (a, _) = run_recorded(4096);
    let (b, _) = run_recorded(4096);
    assert_eq!(a.forensics.len(), b.forensics.len());
    for (da, db) in a.forensics.iter().zip(&b.forensics) {
        let ja = da.to_jsonl();
        assert_eq!(ja, db.to_jsonl(), "dump not deterministic across reruns");
        let parsed = ForensicsDump::parse(&ja).expect("dump parses");
        assert_eq!(parsed.to_jsonl(), ja, "parse/render round trip drifted");
    }
}

/// The flight recorder is an observer: with it attached, the simulated
/// outputs are identical to the plain run, so every golden fingerprint
/// pinned elsewhere is untouched by recording.
#[test]
fn recorder_does_not_perturb_the_simulation() {
    let (config, scenario) = deadlock_config(4096);
    let (registry, families) = scenario.generate().expect("workload generates");
    let plain = run_engine(&config, &registry, &families).expect("plain run");
    let (recorded, recorder) =
        run_engine_recorded(&config, &registry, &families).expect("recorded run");
    assert_eq!(plain.trace, recorded.trace);
    assert_eq!(plain.final_chains, recorded.final_chains);
    assert_eq!(plain.traffic.total(), recorded.traffic.total());
    assert_eq!(plain.stats.makespan, recorded.stats.makespan);
    assert!(recorder.recorded() > 0, "the probe plane was live");
}

/// Ring wraparound at tiny capacities: the recorder's snapshot is
/// exactly the tail of the unbounded event stream, and the drop counter
/// accounts for everything that fell off the front.
#[test]
fn tiny_ring_keeps_exactly_the_tail() {
    let (config, scenario) = deadlock_config(4096);
    let (registry, families) = scenario.generate().expect("workload generates");
    let mut full = RecordingSink::new();
    run_engine_with_probe(&config, &registry, &families, &mut full).expect("full-capture run");
    let all = full.into_events();
    assert!(
        all.len() > 8,
        "scenario emits enough events to wrap a tiny ring"
    );

    for slots in [1usize, 2, 7, 8] {
        let (_, recorder) = run_recorded(slots as u32);
        assert_eq!(recorder.recorded() as usize, all.len(), "slots={slots}");
        assert_eq!(
            recorder.dropped() as usize,
            all.len() - slots,
            "slots={slots}"
        );
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.len(), slots, "slots={slots}");
        // The ring stores fixed-width records, so variable-length page
        // lists truncate greedily on entry — compare against the
        // unbounded capture pushed through the same compaction.
        let expected: Vec<_> = all[all.len() - slots..]
            .iter()
            .map(|e| CompactRecord::encode(e).decode())
            .collect();
        assert_eq!(
            snapshot, expected,
            "slots={slots}: ring tail diverged from the unbounded capture"
        );
    }
}
