//! Network parameter sweep: where does LOTEC make sense?
//!
//! The paper's Figures 6–8 vary link bandwidth (10 Mbps / 100 Mbps /
//! 1 Gbps) and per-message software cost (100 µs → 500 ns) and plot total
//! message time to maintain one object's consistency. Their conclusion:
//! LOTEC — which sends fewer bytes but more, smaller messages — "should
//! perform well with current, fast Ethernet networks using only mildly
//! aggressive, low-latency network protocols", but gigabit networks demand
//! extremely efficient message transmission.
//!
//! This example reproduces the sweep over a high-contention large-object
//! workload and prints the whole grid.
//!
//! ```sh
//! cargo run --release --example network_sweep
//! ```

use lotec::prelude::*;
use lotec::workload::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = presets::quick(presets::network_sweep());
    println!("workload: {}\n", scenario.name);

    let (registry, families) = scenario.generate()?;
    let config = scenario.system_config();
    let cmp = compare_protocols(&config, &registry, &families)?;

    for bandwidth in Bandwidth::paper_sweep() {
        println!("=== {bandwidth} ===");
        println!(
            "{:>10} {:>14} {:>14} {:>14}   winner",
            "sw cost", "COTEC", "OTEC", "LOTEC"
        );
        for sc in SoftwareCost::paper_sweep() {
            let net = NetworkConfig::new(bandwidth, sc);
            let times: Vec<SimDuration> = ProtocolKind::PAPER_TRIO
                .iter()
                .map(|&k| cmp.total_time(k, net))
                .collect();
            let winner = ProtocolKind::PAPER_TRIO[times
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| **t)
                .expect("3 entries")
                .0];
            println!(
                "{:>10} {:>14} {:>14} {:>14}   {winner}",
                sc.to_string(),
                times[0].to_string(),
                times[1].to_string(),
                times[2].to_string()
            );
        }
        println!();
    }

    println!(
        "Reading the grid: on slow links the byte savings dominate and LOTEC \
         wins everywhere; as bandwidth rises, wire time stops mattering and \n\
         the per-message software cost decides — LOTEC's extra (small) \
         messages only pay off once the messaging stack is lean."
    );
    Ok(())
}
