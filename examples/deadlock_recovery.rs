//! Deadlock detection and recovery in action.
//!
//! Classic two-phase locking — nested or not — can deadlock across
//! transaction families: family A holds `O0` and waits for `O1` while
//! family B holds `O1` and waits for `O0`. The paper does not discuss this
//! (its randomized simulation presumably avoided the case), but any real
//! deployment needs liveness, so the engine detects waits-for cycles at
//! the GDO and aborts the youngest family, which rolls back, backs off and
//! retries.
//!
//! This example engineers a workload that *guarantees* deadlocks — every
//! family writes two hot objects in opposite orders from different nodes —
//! and shows the engine breaking them while the oracle certifies the final
//! execution serializable.
//!
//! ```sh
//! cargo run --release --example deadlock_recovery
//! ```

use lotec::prelude::*;

fn schema() -> Vec<lotec::object::ClassDef> {
    vec![ClassBuilder::new("Hot")
        .attribute("state", 2048)
        // touch(): read-modify-write of the whole object, optionally
        // invoking touch() on another Hot object (the nesting that builds
        // the deadly embrace).
        .method("touch_then", |m| {
            m.path(|p| {
                p.reads(&["state"])
                    .writes(&["state"])
                    .invokes(ClassId::new(0), MethodId::new(1))
            })
        })
        .method("touch", |m| {
            m.path(|p| p.reads(&["state"]).writes(&["state"]))
        })
        .build()]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig {
        num_nodes: 2,
        ..SystemConfig::default()
    };
    let registry = ObjectRegistry::build(
        &schema(),
        &[
            (ClassId::new(0), NodeId::new(0)),
            (ClassId::new(0), NodeId::new(1)),
        ],
        config.page_size,
    )?;

    // 20 colliding pairs: even families lock O0 then O1, odd families lock
    // O1 then O0, arriving nearly simultaneously from the two nodes.
    let mut families = Vec::new();
    for i in 0..20u32 {
        let (first, second) = if i % 2 == 0 {
            (ObjectId::new(0), ObjectId::new(1))
        } else {
            (ObjectId::new(1), ObjectId::new(0))
        };
        families.push(FamilySpec {
            node: NodeId::new(i % 2),
            start: SimTime::from_micros(u64::from(i / 2) * 400),
            root: InvocationSpec {
                object: first,
                method: MethodId::new(0), // touch_then -> nested touch
                path: PathId::new(0),
                children: vec![InvocationSpec::leaf(
                    second,
                    MethodId::new(1),
                    PathId::new(0),
                )],
                abort: false,
            },
        });
    }

    let report = run_engine(&config, &registry, &families)?;
    oracle::verify(&report)?;

    println!(
        "deadly-embrace workload: {} families, 2 nodes, 2 hot objects",
        families.len()
    );
    println!(
        "  deadlocks detected and broken : {}",
        report.stats.deadlocks
    );
    println!(
        "  victim restarts               : {}",
        report.stats.restarts
    );
    println!(
        "  committed families            : {}",
        report.stats.committed_families
    );
    println!(
        "  makespan                      : {}",
        report.stats.makespan
    );
    assert_eq!(
        report.stats.committed_families, 20,
        "every family must commit eventually"
    );
    assert!(
        report.stats.deadlocks > 0,
        "this workload is built to deadlock"
    );
    println!(
        "\nEvery family committed despite {} deadlocks; the serializability \
         oracle confirms the surviving execution is equivalent to some serial \
         order — aborted attempts left no trace in the data.",
        report.stats.deadlocks
    );
    Ok(())
}
