//! Observability: run a workload with a recording probe sink, inspect the
//! phase-attributed latency breakdown and prediction quality, and export
//! the trace for Perfetto.
//!
//! ```sh
//! cargo run --release --example observability
//! ```
//!
//! Load the written `observability.chrome.json` at <https://ui.perfetto.dev>
//! (or `chrome://tracing`): one track per simulated node, one row per
//! transaction family, one slice per phase.

use lotec::obs::{chrome_trace, jsonl_encode};
use lotec::prelude::*;
use lotec::workload::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = presets::quick(presets::fig2());
    println!("scenario: {}", scenario.name);
    let (registry, families) = scenario.generate()?;
    let config = scenario.system_config();

    // Same engine, same run — but lend a recording sink. With the default
    // `NoopSink` every probe site compiles away; with a recording sink the
    // run is still bit-identical (a facade test proves it), just observed.
    let mut sink = RecordingSink::new();
    let report = run_engine_with_probe(&config, &registry, &families, &mut sink)?;
    println!(
        "engine: {} commits, {} deadlocks, {} events recorded\n",
        report.stats.committed_families,
        report.stats.deadlocks,
        sink.len()
    );

    // Where did the time go? The engine attributes every family's
    // wall-clock to lock-wait / transfer / compute / backoff.
    if let Some(f) = report.stats.phases.fractions() {
        println!("phase breakdown (all families):");
        for (name, frac) in ["lock wait", "transfer", "compute", "backoff"]
            .iter()
            .zip(f)
        {
            println!("  {name:<10} {:>5.1}%", frac * 100.0);
        }
        println!();
    }

    // The same numbers, recovered purely from the event stream.
    let summary = TraceSummary::of(sink.events());
    print!("{}", summary.render());

    // Export: JSONL for tooling (`obs_report` re-summarizes it), Chrome
    // trace JSON for Perfetto.
    std::fs::write("observability.trace.jsonl", jsonl_encode(sink.events()))?;
    std::fs::write(
        "observability.chrome.json",
        chrome_trace(sink.events()).render_pretty(),
    )?;
    println!("\nwrote observability.trace.jsonl and observability.chrome.json");
    Ok(())
}
