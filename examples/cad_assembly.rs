//! CAD assembly editing: the domain this work was originally built for.
//!
//! The paper notes (§5.1, footnote 5) that the coarse-grained object focus
//! "includes computer aided design environments for which this work was
//! originally developed". CAD parts are the ideal LOTEC citizens: large,
//! multi-page objects (geometry meshes, constraint sets, metadata) whose
//! methods touch well-separated attribute subsets — so conservative
//! per-method prediction shaves most of the object off every transfer.
//!
//! This example builds an `Assembly`/`Part` schema, runs a simulated team
//! of engineers concurrently editing parts from different workstations,
//! and contrasts per-object transfer bytes across the protocol suite.
//!
//! ```sh
//! cargo run --release --example cad_assembly
//! ```

use lotec::prelude::*;

const PAGE: u32 = 4096;

fn schema() -> Vec<lotec::object::ClassDef> {
    // An Assembly references Parts; editing a part goes through the
    // assembly (update bounding data, then edit the part itself).
    let assembly = ClassBuilder::new("Assembly")
        .attribute("bom", 2 * PAGE) // bill of materials
        .attribute("bounds", 512) // bounding volumes
        .attribute("meta", 256)
        .method("edit_part", |m| {
            m.path(|p| {
                p.reads(&["bom", "bounds"])
                    .writes(&["bounds"])
                    .invokes(ClassId::new(1), MethodId::new(0)) // Part::reshape
            })
        })
        .method("review", |m| m.path(|p| p.reads(&["bom", "meta"])))
        .build();

    // A Part is a large object: a 12-page mesh, a 3-page constraint set,
    // and small metadata. Different methods touch different slices.
    let part = ClassBuilder::new("Part")
        .attribute("mesh", 12 * PAGE)
        .attribute("constraints", 3 * PAGE)
        .attribute("meta", 512)
        // reshape(): the common path tweaks the mesh; a rarer path also
        // re-solves constraints.
        .method("reshape", |m| {
            m.path(|p| p.reads(&["mesh"]).writes(&["mesh", "meta"]))
                .path(|p| {
                    p.reads(&["mesh", "constraints"])
                        .writes(&["mesh", "constraints", "meta"])
                })
        })
        // annotate(): touches only the metadata page.
        .method("annotate", |m| {
            m.path(|p| p.reads(&["meta"]).writes(&["meta"]))
        })
        // inspect(): read-only constraint check.
        .method("inspect", |m| m.path(|p| p.reads(&["constraints", "meta"])))
        .build();

    vec![assembly, part]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig {
        num_nodes: 5,
        page_size: PAGE,
        ..SystemConfig::default()
    };

    // 2 assemblies, 8 parts homed around the cluster.
    let mut instances = Vec::new();
    for i in 0..2u32 {
        instances.push((ClassId::new(0), NodeId::new(i)));
    }
    for i in 0..8u32 {
        instances.push((ClassId::new(1), NodeId::new(i % config.num_nodes)));
    }
    let registry = ObjectRegistry::build(&schema(), &instances, config.page_size)?;

    // Five engineers at five workstations edit in interleaved sessions:
    // mesh edits dominate, with annotations and inspections mixed in.
    let mut families = Vec::new();
    for i in 0..80u32 {
        let node = NodeId::new(i % config.num_nodes);
        let start = SimTime::from_micros(u64::from(i) * 120);
        let part = ObjectId::new(2 + (i * 3) % 8);
        let root = match i % 4 {
            0 | 1 => {
                // Edit through the assembly: nested reshape.
                let assembly = ObjectId::new(i % 2);
                InvocationSpec {
                    object: assembly,
                    method: MethodId::new(0),
                    path: PathId::new(0),
                    children: vec![InvocationSpec {
                        object: part,
                        method: MethodId::new(0), // reshape
                        path: PathId::new(u32::from(i % 6 == 0)),
                        children: vec![],
                        abort: false,
                    }],
                    abort: false,
                }
            }
            2 => InvocationSpec::leaf(part, MethodId::new(1), PathId::new(0)), // annotate
            _ => InvocationSpec::leaf(part, MethodId::new(2), PathId::new(0)), // inspect
        };
        families.push(FamilySpec { node, start, root });
    }

    let cmp = compare_protocols(&config, &registry, &families)?;
    let run = cmp.schedule_run();
    println!(
        "CAD session: {} edits committed, {} deadlocks broken, makespan {}\n",
        run.stats.committed_families, run.stats.deadlocks, run.stats.makespan
    );

    // Per-part transfer bytes: the LOTEC advantage concentrates on the
    // large parts, whose annotate/inspect calls never need the 12-page
    // mesh.
    println!("consistency bytes per part (16-page objects):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "part", "COTEC", "OTEC", "LOTEC"
    );
    for i in 0..8u32 {
        let id = ObjectId::new(2 + i);
        println!(
            "{:>6} {:>12} {:>12} {:>12}",
            id.to_string(),
            cmp.object(ProtocolKind::Cotec, id).bytes,
            cmp.object(ProtocolKind::Otec, id).bytes,
            cmp.object(ProtocolKind::Lotec, id).bytes,
        );
    }
    println!(
        "\ntotals: COTEC {} / OTEC {} / LOTEC {} bytes — LOTEC ships only the \
         updated pages each method is predicted to need.",
        cmp.total(ProtocolKind::Cotec).bytes,
        cmp.total(ProtocolKind::Otec).bytes,
        cmp.total(ProtocolKind::Lotec).bytes,
    );
    Ok(())
}
