//! Order processing: a hand-modelled transaction-processing workload.
//!
//! The paper's motivation (§2) is exactly this class of application:
//! throughput-oriented commercial transaction processing, where the
//! programmer writes plain object methods and the system hides both
//! distribution (via DSM) and concurrency/failure handling (via nested
//! transactions).
//!
//! This example builds an order-entry schema by hand with the public
//! `ClassBuilder` API — `Order`, `Customer` and `Inventory` classes whose
//! methods nest (placing an order debits inventory and updates the
//! customer's balance as sub-transactions) — and runs a burst of orders
//! across a cluster, with a slice of fault-injected sub-transactions to
//! show closed-nesting recovery at work.
//!
//! ```sh
//! cargo run --release --example order_processing
//! ```

use lotec::prelude::*;

/// Classes: 0 = Order, 1 = Customer, 2 = Inventory.
fn schema() -> Vec<lotec::object::ClassDef> {
    let order = ClassBuilder::new("Order")
        .attribute("status", 64)
        .attribute("lines", 6 * 4096) // order lines span several pages
        .attribute("totals", 256)
        // place(): builds the lines, then debits stock and charges the
        // customer as nested sub-transactions.
        .method("place", |m| {
            m.path(|p| {
                p.reads(&["status", "lines", "totals"])
                    .writes(&["status", "lines", "totals"])
                    .invokes(ClassId::new(2), MethodId::new(0)) // Inventory::debit
                    .invokes(ClassId::new(1), MethodId::new(0)) // Customer::charge
            })
        })
        // summarize(): reads only the compact totals page.
        .method("summarize", |m| m.path(|p| p.reads(&["status", "totals"])))
        .build();

    let customer = ClassBuilder::new("Customer")
        .attribute("balance", 128)
        .attribute("history", 3 * 4096)
        // charge(): fast path touches only the balance; slow path also
        // appends to the multi-page history. Conservative prediction must
        // cover both — LOTEC still skips the history pages when nobody
        // updated them.
        .method("charge", |m| {
            m.path(|p| p.reads(&["balance"]).writes(&["balance"]))
                .path(|p| {
                    p.reads(&["balance", "history"])
                        .writes(&["balance", "history"])
                })
        })
        .method("statement", |m| {
            m.path(|p| p.reads(&["balance", "history"]))
        })
        .build();

    let inventory = ClassBuilder::new("Inventory")
        .attribute("levels", 2 * 4096)
        .attribute("reorder_queue", 1024)
        .method("debit", |m| {
            m.path(|p| p.reads(&["levels"]).writes(&["levels"]))
                .path(|p| p.reads(&["levels"]).writes(&["levels", "reorder_queue"]))
        })
        .build();

    vec![order, customer, inventory]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig {
        num_nodes: 6,
        ..SystemConfig::default()
    };

    // 6 order objects, 4 customers, 3 inventory shards, spread over nodes.
    let mut instances = Vec::new();
    for i in 0..6u32 {
        instances.push((ClassId::new(0), NodeId::new(i % config.num_nodes)));
    }
    for i in 0..4u32 {
        instances.push((ClassId::new(1), NodeId::new((i + 1) % config.num_nodes)));
    }
    for i in 0..3u32 {
        instances.push((ClassId::new(2), NodeId::new((i + 2) % config.num_nodes)));
    }
    let registry = ObjectRegistry::build(&schema(), &instances, config.page_size)?;

    // A burst of order transactions: each places an order against a
    // customer and an inventory shard; every 7th charge hits the slow
    // (history-appending) path, and every 11th inventory debit is
    // fault-injected to abort — its parent order still commits, matching
    // closed-nesting semantics.
    let mut families = Vec::new();
    for i in 0..60u32 {
        let order = ObjectId::new(i % 6);
        let customer = ObjectId::new(6 + (i % 4));
        let inventory = ObjectId::new(10 + (i % 3));
        let charge_path = PathId::new(u32::from(i % 7 == 0));
        let debit = InvocationSpec {
            object: inventory,
            method: MethodId::new(0),
            path: PathId::new(u32::from(i % 5 == 0)),
            children: vec![],
            abort: i % 11 == 0,
        };
        let charge = InvocationSpec {
            object: customer,
            method: MethodId::new(0),
            path: charge_path,
            children: vec![],
            abort: false,
        };
        families.push(FamilySpec {
            node: NodeId::new(i % config.num_nodes),
            start: SimTime::from_micros(u64::from(i) * 25),
            root: InvocationSpec {
                object: order,
                method: MethodId::new(0),
                path: PathId::new(0),
                children: vec![debit, charge],
                abort: false,
            },
        });
    }
    // Interleave read-only reporting transactions.
    for i in 0..20u32 {
        families.push(FamilySpec {
            node: NodeId::new((i + 3) % config.num_nodes),
            start: SimTime::from_micros(u64::from(i) * 70 + 11),
            root: InvocationSpec::leaf(ObjectId::new(i % 6), MethodId::new(1), PathId::new(0)),
        });
    }

    let report = run_engine(&config, &registry, &families)?;
    oracle::verify(&report)?;

    println!(
        "order processing on {} nodes under {}:",
        config.num_nodes, report.protocol
    );
    println!("  committed families : {}", report.stats.committed_families);
    println!(
        "  sub-txn aborts     : {} (fault-injected debits, rolled back locally)",
        report.stats.subtxn_aborts
    );
    println!("  deadlocks broken   : {}", report.stats.deadlocks);
    println!("  demand fetches     : {}", report.stats.demand_fetches);
    println!("  makespan           : {}", report.stats.makespan);
    if let Some(mean) = report.stats.mean_latency() {
        println!("  mean order latency : {mean}");
    }
    println!(
        "  throughput         : {:.0} txn/s (simulated)",
        report.stats.throughput_per_sec()
    );
    let t = report.traffic.total();
    println!(
        "  consistency traffic: {} bytes in {} messages",
        t.bytes, t.messages
    );
    println!(
        "\nserializability oracle: OK — the distributed execution is \
              equivalent to serial execution in commit order."
    );
    Ok(())
}
