//! Protocol tuning cookbook: composing the configuration surface.
//!
//! A downstream user rarely wants one global protocol. This example walks
//! the knobs this reproduction exposes — the per-class protocol
//! assignment, DSD transfer granularity, multicast pushes, lock
//! prefetching and GDO replication — and measures each step's effect on
//! one mixed workload. The per-class + multicast + DSD stack moves a
//! fraction of any uniform protocol's bytes; the final step then spends a
//! little of that margin on latency hiding and directory redundancy.
//!
//! ```sh
//! cargo run --release --example protocol_tuning
//! ```

use lotec::prelude::*;
use lotec_core::config::GdoPlacement;

const PAGE: u32 = 1024;

/// Two deliberately different classes:
/// * `Ledger` — large (8 pages), read-mostly with focused writes: ideal
///   LOTEC territory.
/// * `Counter` — tiny (1 page), write-hot, cached everywhere: eager RC
///   plus multicast suits it.
fn registry(num_nodes: u32) -> ObjectRegistry {
    let ledger = ClassBuilder::new("Ledger")
        .attribute("entries", 6 * PAGE)
        .attribute("index", PAGE)
        .attribute("summary", 256)
        .method("post", |m| {
            m.path(|p| p.reads(&["index", "summary"]).writes(&["index", "summary"]))
                .path(|p| {
                    p.reads(&["entries", "index"])
                        .writes(&["entries", "index", "summary"])
                })
        })
        .method("report", |m| m.path(|p| p.reads(&["summary"])))
        .build();
    let counter = ClassBuilder::new("Counter")
        .attribute("n", 64)
        .method("bump", |m| m.path(|p| p.reads(&["n"]).writes(&["n"])))
        .build();
    let mut instances = Vec::new();
    for i in 0..6u32 {
        instances.push((ClassId::new(0), NodeId::new(i % num_nodes)));
    }
    for i in 0..4u32 {
        instances.push((ClassId::new(1), NodeId::new(i % num_nodes)));
    }
    ObjectRegistry::build(&[ledger, counter], &instances, PAGE).expect("registry builds")
}

fn workload(num_nodes: u32) -> Vec<FamilySpec> {
    let mut families = Vec::new();
    for i in 0..120u32 {
        let node = NodeId::new(i % num_nodes);
        let start = SimTime::from_micros(u64::from(i) * 45);
        // Receivers are decoupled from the executing node (stride 7 walks
        // all ledgers from every node), so objects genuinely migrate.
        let ledger = ObjectId::new((i * 7 + 3) % 6);
        let root = match i % 5 {
            // Ledger postings dominate.
            0 | 1 => InvocationSpec {
                object: ledger,
                method: MethodId::new(0),
                path: PathId::new(u32::from(i % 3 == 0)),
                children: vec![],
                abort: false,
            },
            // Reports: read-only summaries.
            2 => InvocationSpec::leaf(ledger, MethodId::new(1), PathId::new(0)),
            // Counter bumps: tiny hot writes.
            _ => InvocationSpec::leaf(ObjectId::new(6 + i % 4), MethodId::new(0), PathId::new(0)),
        };
        families.push(FamilySpec { node, start, root });
    }
    families
}

fn measure(label: &str, config: &SystemConfig, registry: &ObjectRegistry, families: &[FamilySpec]) {
    let report = run_engine(config, registry, families).expect("engine runs");
    oracle::verify(&report).expect("serializable");
    let t = report.traffic.total();
    println!(
        "{:<34} {:>12} {:>8} {:>14} {:>12}",
        label,
        t.bytes,
        t.messages,
        t.message_time(config.network).to_string(),
        report.stats.makespan.to_string(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_nodes = 6;
    let registry = registry(num_nodes);
    let families = workload(num_nodes);
    let base = SystemConfig {
        num_nodes,
        page_size: PAGE,
        ..SystemConfig::default()
    };

    println!(
        "{:<34} {:>12} {:>8} {:>14} {:>12}",
        "configuration", "bytes", "messages", "msg time", "makespan"
    );
    for protocol in ProtocolKind::ALL {
        measure(
            &format!("uniform {protocol}"),
            &base.clone().with_protocol(protocol),
            &registry,
            &families,
        );
    }
    // Step 1: split protocols by class behaviour.
    let mixed = base
        .clone()
        .with_protocol(ProtocolKind::Lotec)
        .with_class_protocol(ClassId::new(1), ProtocolKind::ReleaseConsistency);
    measure(
        "per-class: LOTEC + RC counters",
        &mixed,
        &registry,
        &families,
    );
    // Step 2: multicast rescues the RC class's pushes.
    let mixed_mc = SystemConfig {
        multicast: true,
        ..mixed
    };
    measure("  + multicast pushes", &mixed_mc, &registry, &families);
    // Step 3: DSD granularity shaves partial pages off every transfer.
    let mixed_dsd = SystemConfig {
        dsd_transfers: true,
        ..mixed_mc
    };
    measure("  + DSD transfers", &mixed_dsd, &registry, &families);
    // Step 4: hide child lock latency and replicate the directory.
    let tuned = SystemConfig {
        lock_prefetch: true,
        gdo_replication: 2,
        gdo_placement: GdoPlacement::Partitioned,
        ..mixed_dsd
    };
    measure("  + prefetch + GDO replica", &tuned, &registry, &families);

    println!(
        "\nEach knob is orthogonal and every row is oracle-verified \
         serializable; the layered configuration tailors the consistency \
         machinery to each class's sharing behaviour instead of forcing one \
         global choice."
    );
    Ok(())
}
