//! Quickstart: generate a paper workload, run it once, and compare what
//! each consistency protocol would have sent over the wire.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lotec::prelude::*;
use lotec::workload::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 2's scenario (medium objects, high contention), shrunk for a
    // fast demo run.
    let scenario = presets::quick(presets::fig2());
    println!("scenario: {}", scenario.name);

    let (registry, families) = scenario.generate()?;
    let config = scenario.system_config();
    println!(
        "generated {} objects / {} transaction families on {} nodes\n",
        registry.num_objects(),
        families.len(),
        config.num_nodes
    );

    // One engine run fixes the lock schedule; the comparison replays it
    // through every protocol's placement model.
    let cmp = compare_protocols(&config, &registry, &families)?;
    let run = cmp.schedule_run();
    println!(
        "engine: {} commits, {} deadlocks broken, makespan {}",
        run.stats.committed_families, run.stats.deadlocks, run.stats.makespan
    );

    println!("\nconsistency traffic for the identical schedule:");
    println!("{:>8} {:>14} {:>10}", "protocol", "bytes", "messages");
    for kind in ProtocolKind::ALL {
        let t = cmp.total(kind);
        println!("{:>8} {:>14} {:>10}", kind.to_string(), t.bytes, t.messages);
    }

    let saved_vs_cotec = 100.0 * (1.0 - cmp.byte_ratio(ProtocolKind::Lotec, ProtocolKind::Cotec));
    let saved_vs_otec = 100.0 * (1.0 - cmp.byte_ratio(ProtocolKind::Lotec, ProtocolKind::Otec));
    println!(
        "\nLOTEC moved {saved_vs_cotec:.1}% fewer bytes than COTEC \
         and {saved_vs_otec:.1}% fewer than OTEC."
    );

    // Message time depends on the network: sweep the paper's three
    // Ethernet generations at a 20us software cost.
    println!("\ntotal message time (20us per-message software cost):");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "protocol", "10Mbps", "100Mbps", "1Gbps"
    );
    for kind in ProtocolKind::PAPER_TRIO {
        let times: Vec<String> = Bandwidth::paper_sweep()
            .into_iter()
            .map(|bw| {
                cmp.total_time(kind, NetworkConfig::new(bw, SoftwareCost::MICROS_20))
                    .to_string()
            })
            .collect();
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            kind.to_string(),
            times[0],
            times[1],
            times[2]
        );
    }
    Ok(())
}
