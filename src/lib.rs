//! # LOTEC — Lazy Object Transactional Entry Consistency
//!
//! A from-scratch reproduction of *Graham & Sui, "LOTEC: A Simple DSM
//! Consistency Protocol for Nested Object Transactions" (PODC 1999)*:
//! a software-only, page-based DSM consistency protocol for nested object
//! transactions, together with every substrate its evaluation needs —
//! a discrete-event cluster simulator, a network cost model, a versioned
//! page store with undo/shadow recovery, an object model with
//! compiler-style conservative access prediction, a nested object
//! two-phase-locking (O2PL) manager with a global directory of objects
//! (GDO), the in-paper baselines COTEC and OTEC, a release-consistency
//! extension, and a randomized workload generator regenerating every
//! figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! names so applications need a single dependency.
//!
//! ## Quickstart
//!
//! ```
//! use lotec::prelude::*;
//!
//! // Generate a paper workload (quick variant) and compare protocols
//! // on the identical transaction schedule.
//! let scenario = lotec::workload::presets::quick(lotec::workload::presets::fig2());
//! let (registry, families) = scenario.generate()?;
//! let config = scenario.system_config();
//! let cmp = compare_protocols(&config, &registry, &families)?;
//!
//! let lotec = cmp.total(ProtocolKind::Lotec).bytes;
//! let otec = cmp.total(ProtocolKind::Otec).bytes;
//! let cotec = cmp.total(ProtocolKind::Cotec).bytes;
//! assert!(lotec <= otec && otec <= cotec);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Layout
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`sim`] | discrete-event kernel: virtual time, event queue, RNG |
//! | [`net`] | bandwidth/software-cost model, message sizing, ledgers |
//! | [`mem`] | pages, versions, per-node stores, undo/shadow recovery |
//! | [`object`] | classes, methods, layouts, conservative prediction |
//! | [`txn`] | transaction trees, nested O2PL, GDO entries, deadlock |
//! | [`core`] | the protocols, the engine, replay comparison, oracle |
//! | [`workload`] | randomized scenario generation, figure presets |
//! | [`obs`] | event probes, trace summaries, JSONL/Chrome export |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lotec_core as core;
pub use lotec_mem as mem;
pub use lotec_net as net;
pub use lotec_object as object;
pub use lotec_obs as obs;
pub use lotec_sim as sim;
pub use lotec_txn as txn;
pub use lotec_workload as workload;

/// The most common imports, in one place.
pub mod prelude {
    pub use lotec_core::compare::{compare_protocols, ProtocolComparison};
    pub use lotec_core::config::SystemConfig;
    pub use lotec_core::engine::{
        run_engine, run_engine_instrumented, run_engine_with_probe, Engine, RunReport,
    };
    pub use lotec_core::oracle;
    pub use lotec_core::protocol::ProtocolKind;
    pub use lotec_core::spec::{FamilySpec, InvocationSpec};
    pub use lotec_mem::{ObjectId, PageIndex};
    pub use lotec_net::{Bandwidth, NetworkConfig, SoftwareCost};
    pub use lotec_object::{ClassBuilder, ClassId, MethodId, ObjectRegistry, PathId};
    pub use lotec_obs::{EventSink, NoopSink, RecordingSink, TraceSummary};
    pub use lotec_sim::{NodeId, SimDuration, SimTime};
    pub use lotec_workload::{Scenario, WorkloadConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let cfg = SystemConfig::default();
        assert_eq!(cfg.protocol, ProtocolKind::Lotec);
        assert_eq!(NodeId::new(3).index(), 3);
    }
}
