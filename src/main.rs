//! `lotec` — command-line front end for the LOTEC reproduction.
//!
//! ```text
//! lotec presets                         list the named scenarios
//! lotec figures [--quick]               regenerate Figures 2-5 (byte tables)
//! lotec sweep [--quick]                 regenerate Figures 6-8 (time grid)
//! lotec run <preset|file.json> [opts]   run one scenario end to end
//! lotec export <preset>                 print a scenario's JSON to stdout
//!
//! run options:
//!   --protocol <lotec|otec|cotec|rc>    engine protocol (default lotec)
//!   --quick                             8x reduced family count
//!   --dsd                               data-granularity transfers
//!   --multicast                         multicast update pushes
//!   --prefetch                          optimistic lock prefetching
//! ```

use std::process::ExitCode;

use lotec::prelude::*;
use lotec::workload::{persist, presets, Scenario};

fn preset_by_name(name: &str) -> Option<Scenario> {
    match name {
        "fig2" => Some(presets::fig2()),
        "fig3" => Some(presets::fig3()),
        "fig4" => Some(presets::fig4()),
        "fig5" => Some(presets::fig5()),
        "network" | "fig6" | "fig7" | "fig8" => Some(presets::network_sweep()),
        "faults" => Some(presets::ablation_faults()),
        _ => None,
    }
}

fn parse_protocol(name: &str) -> Option<ProtocolKind> {
    match name.to_ascii_lowercase().as_str() {
        "lotec" => Some(ProtocolKind::Lotec),
        "otec" => Some(ProtocolKind::Otec),
        "cotec" => Some(ProtocolKind::Cotec),
        "rc" => Some(ProtocolKind::ReleaseConsistency),
        _ => None,
    }
}

fn usage() -> &'static str {
    "usage: lotec <presets|figures|sweep|run|export> [args]\n\
     \n  lotec presets\
     \n  lotec figures [--quick]\
     \n  lotec sweep [--quick]\
     \n  lotec run <preset|file.json> [--protocol P] [--quick] [--dsd] [--multicast] [--prefetch]\
     \n  lotec export <preset>"
}

fn load_scenario(source: &str) -> Result<Scenario, String> {
    if let Some(preset) = preset_by_name(source) {
        return Ok(preset);
    }
    if source.ends_with(".json") {
        let text =
            std::fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?;
        return persist::from_json(&text).map_err(|e| format!("bad scenario JSON: {e}"));
    }
    Err(format!(
        "unknown preset `{source}` (try `lotec presets`) and not a .json file"
    ))
}

fn cmd_presets() {
    println!("available presets:");
    for s in presets::all_figures() {
        println!("  {:<8} {}", preset_name(&s), s.name);
    }
    println!("  {:<8} {}", "network", presets::network_sweep().name);
    println!("  {:<8} {}", "faults", presets::ablation_faults().name);
}

fn preset_name(s: &Scenario) -> &str {
    s.name.split(':').next().unwrap_or("?")
}

fn cmd_figures(quick: bool) -> Result<(), String> {
    for mut scenario in presets::all_figures() {
        if quick {
            scenario = presets::quick(scenario);
        }
        let (registry, families) = scenario.generate().map_err(|e| e.to_string())?;
        let cmp = compare_protocols(&scenario.system_config(), &registry, &families)
            .map_err(|e| e.to_string())?;
        println!("== {} ==", scenario.name);
        println!("{:>8} {:>14} {:>10}", "protocol", "bytes", "messages");
        for kind in ProtocolKind::PAPER_TRIO {
            let t = cmp.total(kind);
            println!("{:>8} {:>14} {:>10}", kind.to_string(), t.bytes, t.messages);
        }
        println!();
    }
    Ok(())
}

fn cmd_sweep(quick: bool) -> Result<(), String> {
    let mut scenario = presets::network_sweep();
    if quick {
        scenario = presets::quick(scenario);
    }
    let (registry, families) = scenario.generate().map_err(|e| e.to_string())?;
    let cmp = compare_protocols(&scenario.system_config(), &registry, &families)
        .map_err(|e| e.to_string())?;
    for bw in Bandwidth::paper_sweep() {
        println!("== {bw} ==");
        println!(
            "{:>10} {:>14} {:>14} {:>14}",
            "sw cost", "COTEC", "OTEC", "LOTEC"
        );
        for sc in SoftwareCost::paper_sweep() {
            let net = NetworkConfig::new(bw, sc);
            let row: Vec<String> = ProtocolKind::PAPER_TRIO
                .iter()
                .map(|&k| cmp.total_time(k, net).to_string())
                .collect();
            println!(
                "{:>10} {:>14} {:>14} {:>14}",
                sc.to_string(),
                row[0],
                row[1],
                row[2]
            );
        }
        println!();
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let source = args.first().ok_or("run: missing <preset|file.json>")?;
    let mut scenario = load_scenario(source)?;
    let mut config = scenario.system_config();
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scenario = presets::quick(scenario),
            "--dsd" => config.dsd_transfers = true,
            "--multicast" => config.multicast = true,
            "--prefetch" => config.lock_prefetch = true,
            "--protocol" => {
                let p = iter.next().ok_or("--protocol needs a value")?;
                config.protocol =
                    parse_protocol(p).ok_or_else(|| format!("unknown protocol `{p}`"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    // --quick replaced the scenario; refresh derived config knobs.
    config.num_nodes = scenario.config.num_nodes;
    config.page_size = scenario.config.schema.page_size;
    config.seed = scenario.config.seed;

    let (registry, families) = scenario.generate().map_err(|e| e.to_string())?;
    let report = run_engine(&config, &registry, &families).map_err(|e| e.to_string())?;
    oracle::verify(&report).map_err(|e| e.to_string())?;

    println!("{} under {}:", scenario.name, report.protocol);
    let s = &report.stats;
    println!(
        "  committed {} / aborted {} families, {} sub-txn aborts",
        s.committed_families, s.aborted_families, s.subtxn_aborts
    );
    println!(
        "  deadlocks {} (restarts {}), demand fetches {}",
        s.deadlocks, s.restarts, s.demand_fetches
    );
    println!(
        "  lock ops: {} local / {} global / {} queued",
        s.local_lock_grants, s.global_lock_grants, s.queued_lock_requests
    );
    let t = report.traffic.total();
    println!("  traffic: {} bytes in {} messages", t.bytes, t.messages);
    println!(
        "  makespan {}  throughput {:.0} txn/s",
        s.makespan,
        s.throughput_per_sec()
    );
    println!("  serializability oracle: OK");
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("export: missing <preset>")?;
    let scenario = preset_by_name(name).ok_or_else(|| format!("unknown preset `{name}`"))?;
    let json = persist::to_json(&scenario).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let result = match args.first().map(String::as_str) {
        Some("presets") => {
            cmd_presets();
            Ok(())
        }
        Some("figures") => cmd_figures(quick),
        Some("sweep") => cmd_sweep(quick),
        Some("run") => cmd_run(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        _ => {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_parse() {
        assert_eq!(parse_protocol("LOTEC"), Some(ProtocolKind::Lotec));
        assert_eq!(parse_protocol("rc"), Some(ProtocolKind::ReleaseConsistency));
        assert_eq!(parse_protocol("bogus"), None);
    }

    #[test]
    fn presets_resolve() {
        assert!(preset_by_name("fig2").is_some());
        assert!(preset_by_name("network").is_some());
        assert!(preset_by_name("nope").is_none());
    }

    #[test]
    fn load_scenario_rejects_unknown() {
        assert!(load_scenario("definitely-not-a-preset").is_err());
        assert!(load_scenario("/nonexistent/path.json").is_err());
    }

    #[test]
    fn export_then_load_roundtrips() {
        let scenario = preset_by_name("fig3").unwrap();
        let json = persist::to_json(&scenario).unwrap();
        let dir = std::env::temp_dir().join("lotec-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig3.json");
        std::fs::write(&path, json).unwrap();
        let loaded = load_scenario(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, scenario);
    }
}
