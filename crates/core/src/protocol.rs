//! The consistency-protocol suite: COTEC, OTEC, LOTEC and the RC
//! extension.
//!
//! All four share nested O2PL locking; they differ only in the *transfer
//! policy* — which pages move at lock acquisition — and, for RC, in eager
//! pushes at root commit. The policies are pure functions over a
//! [`PlacementView`], so the discrete-event engine (live `PageStore`s +
//! GDO page maps) and the figure-replay path (abstract
//! [`PlacementModel`](crate::placement::PlacementModel)) share one
//! implementation and can never drift apart.

use std::collections::BTreeMap;
use std::fmt;

use lotec_mem::{ObjectId, PageIndex, Version};
use lotec_object::PageSet;
use lotec_sim::NodeId;

/// Which consistency protocol is in effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolKind {
    /// Conservative OTEC: the whole object moves on every acquisition —
    /// the paper's baseline.
    Cotec,
    /// Object Transactional Entry Consistency: only updated pages move.
    Otec,
    /// Lazy OTEC: only updated pages the acquiring method is predicted to
    /// need move — the paper's contribution.
    Lotec,
    /// Release consistency for nested objects: updates are pushed eagerly
    /// to every caching site at root commit (the comparison the paper
    /// lists as "now underway").
    ReleaseConsistency,
}

impl ProtocolKind {
    /// The three protocols the paper's figures compare, in the figures'
    /// legend order.
    pub const PAPER_TRIO: [ProtocolKind; 3] =
        [ProtocolKind::Cotec, ProtocolKind::Otec, ProtocolKind::Lotec];

    /// All four protocols, including the RC extension.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Cotec,
        ProtocolKind::Otec,
        ProtocolKind::Lotec,
        ProtocolKind::ReleaseConsistency,
    ];

    /// True for the protocol that pushes updates eagerly at commit.
    pub fn pushes_on_commit(self) -> bool {
        self == ProtocolKind::ReleaseConsistency
    }

    /// True for the protocol that consults method access predictions.
    pub fn uses_prediction(self) -> bool {
        self == ProtocolKind::Lotec
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolKind::Cotec => "COTEC",
            ProtocolKind::Otec => "OTEC",
            ProtocolKind::Lotec => "LOTEC",
            ProtocolKind::ReleaseConsistency => "RC",
        };
        f.write_str(s)
    }
}

/// What a transfer policy needs to know about page placement.
///
/// * `local_version` — the version of `page` cached at `node`, or `None`
///   if the node has no copy (a missing copy of a never-written page is
///   materialized locally by demand-zeroing and costs nothing).
/// * `global_version` — the newest committed version.
/// * `page_owner` — the node holding the newest version of `page` (the GDO
///   page map's entry: the last updater, or the object's home if never
///   written).
/// * `last_holder` — the site of the family that last held the object's
///   lock. Under COTEC and OTEC that site always holds a complete,
///   current copy, so it is the single transfer source; only LOTEC must
///   gather scattered pages via `page_owner`.
pub trait PlacementView {
    /// Version of `page` cached at `node`, if any.
    fn local_version(&self, node: NodeId, object: ObjectId, page: PageIndex) -> Option<Version>;
    /// Newest committed version of `page`.
    fn global_version(&self, object: ObjectId, page: PageIndex) -> Version;
    /// Node holding the newest version of `page`.
    fn page_owner(&self, object: ObjectId, page: PageIndex) -> NodeId;
    /// Site of the family that last held (and released) the object's lock.
    fn last_holder(&self, object: ObjectId) -> NodeId;
    /// Number of pages `object` spans.
    fn num_pages(&self, object: ObjectId) -> u16;
}

/// A planned gather: for each source node, the pages to pull from it
/// (Algorithm 4.5, `TransferOfUpdatedPages`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferPlan {
    by_source: BTreeMap<NodeId, Vec<PageIndex>>,
}

impl TransferPlan {
    /// No pages to move.
    pub fn is_empty(&self) -> bool {
        self.by_source.is_empty()
    }

    /// Number of distinct source nodes (each costs one request/transfer
    /// message pair — this is where LOTEC's "more, smaller messages"
    /// behaviour comes from).
    pub fn num_sources(&self) -> usize {
        self.by_source.len()
    }

    /// Total pages moved.
    pub fn num_pages(&self) -> usize {
        self.by_source.values().map(Vec::len).sum()
    }

    /// Iterator over `(source node, pages)` in node order.
    pub fn sources(&self) -> impl Iterator<Item = (NodeId, &[PageIndex])> {
        self.by_source.iter().map(|(&n, v)| (n, v.as_slice()))
    }

    fn add(&mut self, source: NodeId, page: PageIndex) {
        self.by_source.entry(source).or_default().push(page);
    }
}

/// The pages `node` must fetch to satisfy an acquisition of `object` under
/// `kind`, given the acquiring method's conservative `predicted` page set
/// (LOTEC only consults it; pass the full page set for other protocols).
///
/// Rules:
/// * **COTEC** — every page of the object, from the last holder
///   (demand-zero exception: a page never written anywhere needs no wire
///   transfer when the acquirer can zero-fill it, but COTEC does not track
///   versions, so it can only skip transfers when it *is* the last
///   holder).
/// * **OTEC** — pages whose global version is newer than the local copy
///   (a missing local copy of a version-0 page is demand-zeroed), from the
///   last holder.
/// * **LOTEC** — the OTEC set intersected with `predicted`, gathered
///   per-page from each page's owner.
/// * **RC** — like OTEC, but because commits push eagerly, an RC node that
///   caches the object is already current; only never-seen pages move.
///   (Operationally identical staleness test; the difference is in the
///   placement state RC maintains.)
pub fn plan_transfer(
    kind: ProtocolKind,
    view: &dyn PlacementView,
    node: NodeId,
    object: ObjectId,
    predicted: &PageSet,
) -> TransferPlan {
    let mut plan = TransferPlan::default();
    let num_pages = view.num_pages(object);
    match kind {
        ProtocolKind::Cotec => {
            let source = view.last_holder(object);
            if source == node {
                return plan;
            }
            for i in 0..num_pages {
                plan.add(source, PageIndex::new(i));
            }
        }
        ProtocolKind::Otec | ProtocolKind::ReleaseConsistency => {
            let source = view.last_holder(object);
            for i in 0..num_pages {
                let page = PageIndex::new(i);
                if is_stale(view, node, object, page) {
                    let src = if source == node {
                        view.page_owner(object, page)
                    } else {
                        source
                    };
                    if src != node {
                        plan.add(src, page);
                    }
                }
            }
        }
        ProtocolKind::Lotec => {
            for page in predicted.iter() {
                if page.get() >= num_pages {
                    continue;
                }
                if is_stale(view, node, object, page) {
                    let src = view.page_owner(object, page);
                    if src != node {
                        plan.add(src, page);
                    }
                }
            }
        }
    }
    plan
}

/// Staleness test shared by OTEC/LOTEC/RC: the acquirer needs the page iff
/// the newest committed version is newer than its local copy; a missing
/// local copy counts as version 0 (demand-zeroable).
fn is_stale(view: &dyn PlacementView, node: NodeId, object: ObjectId, page: PageIndex) -> bool {
    let global = view.global_version(object, page);
    let local = view
        .local_version(node, object, page)
        .unwrap_or(Version::INITIAL);
    global.is_newer_than(local)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-rolled placement for policy tests.
    struct FakeView {
        num_pages: u16,
        global: Vec<Version>,
        owners: Vec<NodeId>,
        last_holder: NodeId,
        // (node, page) -> version
        local: BTreeMap<(NodeId, u16), Version>,
    }

    impl PlacementView for FakeView {
        fn local_version(&self, node: NodeId, _o: ObjectId, page: PageIndex) -> Option<Version> {
            self.local.get(&(node, page.get())).copied()
        }
        fn global_version(&self, _o: ObjectId, page: PageIndex) -> Version {
            self.global[page.get() as usize]
        }
        fn page_owner(&self, _o: ObjectId, page: PageIndex) -> NodeId {
            self.owners[page.get() as usize]
        }
        fn last_holder(&self, _o: ObjectId) -> NodeId {
            self.last_holder
        }
        fn num_pages(&self, _o: ObjectId) -> u16 {
            self.num_pages
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn obj() -> ObjectId {
        ObjectId::new(0)
    }

    fn all_pages(n: u16) -> PageSet {
        (0..n).map(PageIndex::new).collect()
    }

    /// 4-page object: p0 current at acquirer, p1 updated by node 2,
    /// p2 updated by node 3, p3 never written. Last holder: node 2.
    fn scattered() -> FakeView {
        let mut local = BTreeMap::new();
        local.insert((n(0), 0u16), Version::new(1)); // current
        local.insert((n(0), 1u16), Version::new(1)); // stale (global 2)
        FakeView {
            num_pages: 4,
            global: vec![
                Version::new(1),
                Version::new(2),
                Version::new(1),
                Version::INITIAL,
            ],
            owners: vec![n(1), n(2), n(3), n(1)],
            last_holder: n(2),
            local,
        }
    }

    #[test]
    fn cotec_moves_everything_from_last_holder() {
        let v = scattered();
        let plan = plan_transfer(ProtocolKind::Cotec, &v, n(0), obj(), &all_pages(4));
        assert_eq!(plan.num_pages(), 4);
        assert_eq!(plan.num_sources(), 1);
        let (src, pages) = plan.sources().next().unwrap();
        assert_eq!(src, n(2));
        assert_eq!(pages.len(), 4);
    }

    #[test]
    fn cotec_free_when_acquirer_is_last_holder() {
        let mut v = scattered();
        v.last_holder = n(0);
        let plan = plan_transfer(ProtocolKind::Cotec, &v, n(0), obj(), &all_pages(4));
        assert!(plan.is_empty());
    }

    #[test]
    fn otec_moves_only_stale_pages() {
        let v = scattered();
        let plan = plan_transfer(ProtocolKind::Otec, &v, n(0), obj(), &all_pages(4));
        // p0 current, p3 demand-zeroed; p1 stale, p2 never seen (global 1 > 0).
        assert_eq!(plan.num_pages(), 2);
        assert_eq!(plan.num_sources(), 1, "single source: last holder");
    }

    #[test]
    fn lotec_intersects_with_prediction_and_scatters_sources() {
        let v = scattered();
        // Method predicted to touch p1 and p2 only.
        let predicted: PageSet = [PageIndex::new(1), PageIndex::new(2)].into_iter().collect();
        let plan = plan_transfer(ProtocolKind::Lotec, &v, n(0), obj(), &predicted);
        assert_eq!(plan.num_pages(), 2);
        assert_eq!(plan.num_sources(), 2, "p1 from N2, p2 from N3");
        let sources: Vec<NodeId> = plan.sources().map(|(s, _)| s).collect();
        assert_eq!(sources, vec![n(2), n(3)]);
    }

    #[test]
    fn lotec_skips_unpredicted_stale_pages() {
        let v = scattered();
        let predicted: PageSet = [PageIndex::new(0)].into_iter().collect(); // current page only
        let plan = plan_transfer(ProtocolKind::Lotec, &v, n(0), obj(), &predicted);
        assert!(plan.is_empty());
    }

    #[test]
    fn lotec_never_exceeds_otec_per_event_on_shared_state() {
        let v = scattered();
        for pred_bits in 0u32..16 {
            let predicted: PageSet = (0..4)
                .filter(|i| pred_bits & (1 << i) != 0)
                .map(PageIndex::new)
                .collect();
            let lotec = plan_transfer(ProtocolKind::Lotec, &v, n(0), obj(), &predicted);
            let otec = plan_transfer(ProtocolKind::Otec, &v, n(0), obj(), &all_pages(4));
            let cotec = plan_transfer(ProtocolKind::Cotec, &v, n(0), obj(), &all_pages(4));
            assert!(lotec.num_pages() <= otec.num_pages());
            assert!(otec.num_pages() <= cotec.num_pages());
        }
    }

    #[test]
    fn never_written_pages_are_demand_zeroed_not_transferred() {
        let v = FakeView {
            num_pages: 3,
            global: vec![Version::INITIAL; 3],
            owners: vec![n(1); 3],
            last_holder: n(1),
            local: BTreeMap::new(),
        };
        for kind in [
            ProtocolKind::Otec,
            ProtocolKind::Lotec,
            ProtocolKind::ReleaseConsistency,
        ] {
            let plan = plan_transfer(kind, &v, n(0), obj(), &all_pages(3));
            assert!(plan.is_empty(), "{kind}: fresh object needs no transfers");
        }
        // COTEC has no version knowledge: it ships the zero pages anyway.
        let plan = plan_transfer(ProtocolKind::Cotec, &v, n(0), obj(), &all_pages(3));
        assert_eq!(plan.num_pages(), 3);
    }

    #[test]
    fn out_of_range_predicted_pages_ignored() {
        let v = scattered();
        let predicted: PageSet = [PageIndex::new(9)].into_iter().collect();
        let plan = plan_transfer(ProtocolKind::Lotec, &v, n(0), obj(), &predicted);
        assert!(plan.is_empty());
    }

    #[test]
    fn kind_helpers() {
        assert!(ProtocolKind::ReleaseConsistency.pushes_on_commit());
        assert!(!ProtocolKind::Lotec.pushes_on_commit());
        assert!(ProtocolKind::Lotec.uses_prediction());
        assert!(!ProtocolKind::Otec.uses_prediction());
        assert_eq!(ProtocolKind::Lotec.to_string(), "LOTEC");
        assert_eq!(ProtocolKind::PAPER_TRIO.len(), 3);
        assert_eq!(ProtocolKind::ALL.len(), 4);
    }

    #[test]
    fn otec_falls_back_to_page_owner_when_acquirer_was_last_holder() {
        // Acquirer was the last holder but another family's commit has
        // since... cannot happen under O2PL while holding; this models the
        // acquirer re-acquiring later after others held. last_holder==node
        // but a page is stale: fetch from its owner.
        let mut v = scattered();
        v.last_holder = n(0);
        let plan = plan_transfer(ProtocolKind::Otec, &v, n(0), obj(), &all_pages(4));
        // p1 stale (owner N2), p2 never-seen global v1 (owner N3).
        assert_eq!(plan.num_pages(), 2);
        assert_eq!(plan.num_sources(), 2);
    }
}
