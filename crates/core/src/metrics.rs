//! Run metrics: what the paper's figures plot.

use lotec_mem::ObjectId;
use lotec_net::{NetworkConfig, ObjectTraffic, TrafficLedger};
use lotec_obs::{PhaseTimes, QuantileSketch};
use lotec_sim::stats::Histogram;
use lotec_sim::SimDuration;

/// One family's phase-attributed time, as folded into
/// [`PhaseBreakdown::per_family`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamilyPhases {
    /// Index into the workload's family list.
    pub family_index: usize,
    /// Cumulative time per coarse phase, across all attempts.
    pub times: PhaseTimes,
    /// Whether the family ultimately committed.
    pub committed: bool,
}

/// Where each family's wall-clock went: lock wait vs. page transfer vs.
/// compute vs. restart backoff. Filled by the engine for every run — the
/// accounting is pure bookkeeping on phase transitions, so it costs the
/// same whether or not an event sink is attached and is byte-identical
/// between probed and unprobed runs.
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// Totals over all families (committed and failed).
    pub aggregate: PhaseTimes,
    /// Per-family breakdown, in workload order.
    pub per_family: Vec<FamilyPhases>,
    /// Distribution of per-family lock-wait time (committed families), ns.
    pub lock_wait_histogram: Histogram,
    /// Distribution of per-family transfer-wait time (committed), ns.
    pub transfer_wait_histogram: Histogram,
    /// Distribution of per-family compute time (committed), ns.
    pub compute_histogram: Histogram,
}

impl PhaseBreakdown {
    /// Fraction of all attributed time spent in each phase, in
    /// `(lock_wait, transfer_wait, running, backoff)` order; `None` when
    /// no time was attributed at all.
    pub fn fractions(&self) -> Option<[f64; 4]> {
        let total = self.aggregate.total().as_nanos();
        (total > 0).then(|| {
            [
                self.aggregate.lock_wait,
                self.aggregate.transfer_wait,
                self.aggregate.running,
                self.aggregate.backoff,
            ]
            .map(|d| d.as_nanos() as f64 / total as f64)
        })
    }

    /// Fraction of attributed time spent waiting on locks — the headline
    /// contention indicator. `None` when nothing was attributed.
    pub fn lock_wait_fraction(&self) -> Option<f64> {
        self.fractions().map(|f| f[0])
    }
}

/// Aggregated statistics of one engine run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Families that committed.
    pub committed_families: u64,
    /// Family-level aborts (deadlock victims, root faults).
    pub aborted_families: u64,
    /// Sub-transaction aborts (fault injection).
    pub subtxn_aborts: u64,
    /// Deadlocks detected and broken.
    pub deadlocks: u64,
    /// Family restarts performed.
    pub restarts: u64,
    /// Demand fetches (LOTEC misprediction path).
    pub demand_fetches: u64,
    /// Adaptive prediction: pages added to a profile on misprediction
    /// feedback (under-prediction repairs).
    pub profile_expansions: u64,
    /// Adaptive prediction: pages dropped from a profile after going
    /// untouched for a full confidence window (over-prediction trims).
    pub profile_shrinks: u64,
    /// Adaptive prediction: whole-predictor resets (profiles invalidated
    /// by a node crash and regenerated from the static baseline).
    pub profile_resets: u64,
    /// Lock grants served from locally cached GDO state (a retaining
    /// ancestor at the same site — no messages; §5.1's cheap case).
    pub local_lock_grants: u64,
    /// Lock grants requiring a GDO round trip (immediately granted).
    pub global_lock_grants: u64,
    /// Lock requests that queued behind conflicting holders before being
    /// granted by a later release.
    pub queued_lock_requests: u64,
    /// Global lock acquisitions whose grant latency was (partially)
    /// hidden by optimistic lock prefetching.
    pub prefetch_hits: u64,
    /// Total grant latency absorbed by prefetching.
    pub prefetch_saved: SimDuration,
    /// Fault injection: message transmission attempts beyond the first
    /// (lost copies that had to be resent after an RTO).
    pub retransmits: u64,
    /// Fault injection: duplicate copies delivered by the lossy link.
    pub duplicates: u64,
    /// Fault injection: node crashes that occurred during the run.
    pub crashes: u64,
    /// Fault injection: in-flight families crash-aborted because their
    /// executing node died.
    pub crash_aborts: u64,
    /// Fault injection: queued lock requests that timed out and were
    /// requeued.
    pub lock_timeouts: u64,
    /// Fault injection: total sender idle time spent waiting out RTOs on
    /// latency-critical messages (attributed to the backoff phase).
    pub retransmit_wait: SimDuration,
    /// Total simulated wall-clock until the last commit.
    pub makespan: SimDuration,
    /// Sum of per-family latencies (start → commit).
    pub total_latency: SimDuration,
    /// Distribution of per-family commit latencies, in nanoseconds.
    ///
    /// Kept alongside [`RunStats::latency_sketch`] because the golden
    /// differential fingerprints fold its bucket-resolution quantiles;
    /// new consumers should prefer the sketch.
    pub latency_histogram: Histogram,
    /// Streaming quantile sketch of the same per-family commit latencies
    /// (≤ 1.57% relative error, memory-flat, deterministically mergeable
    /// across sweep workers). See [`QuantileSketch`].
    pub latency_sketch: QuantileSketch,
    /// Phase-attributed latency breakdown (lock wait / transfer / compute
    /// / backoff), aggregate and per family.
    pub phases: PhaseBreakdown,
    /// Simulator events processed during the run — the engine's unit of
    /// real (host) work, used by the perf baseline to report events/sec.
    pub sim_events: u64,
}

impl RunStats {
    /// Mean family latency, if any family committed.
    pub fn mean_latency(&self) -> Option<SimDuration> {
        (self.committed_families > 0).then(|| self.total_latency / self.committed_families)
    }

    /// Approximate latency quantile (bucket resolution), e.g. `0.5` for the
    /// median or `0.99` for the tail that dominates a user-facing
    /// workload's worst-case response time.
    ///
    /// Returns `None` when no family committed, or when `q` falls outside
    /// `[0, 1]` (including NaN) — an out-of-range quantile is a caller
    /// bug, but a plotting script deserves a `None`, not a panic.
    pub fn latency_quantile(&self, q: f64) -> Option<SimDuration> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        self.latency_histogram
            .quantile(q)
            .map(SimDuration::from_nanos)
    }

    /// Latency quantile from the streaming sketch — ≤ 1.57% relative
    /// error at any stream length, versus the log₂ bucket resolution of
    /// [`RunStats::latency_quantile`]. Same `None` contract: empty run or
    /// out-of-range `q`.
    pub fn latency_quantile_precise(&self, q: f64) -> Option<SimDuration> {
        if !(0.0..=1.0).contains(&q) || self.latency_sketch.count() == 0 {
            return None;
        }
        Some(SimDuration::from_nanos(self.latency_sketch.quantile(q)))
    }

    /// Fraction of family outcomes that ended in a permanent abort:
    /// `aborted / (committed + aborted)`, or `0.0` when nothing finished.
    /// Restarted-then-committed families count as commits — this is the
    /// user-visible failure rate the scenario success criteria bound, not
    /// the retry churn (see `restarts` for that).
    pub fn abort_rate(&self) -> f64 {
        let finished = self.committed_families + self.aborted_families;
        if finished == 0 {
            0.0
        } else {
            self.aborted_families as f64 / finished as f64
        }
    }

    /// Total lock acquisition operations (local + global + queued).
    pub fn total_lock_ops(&self) -> u64 {
        self.local_lock_grants + self.global_lock_grants + self.queued_lock_requests
    }

    /// Fraction of lock operations served locally (§5.1: "Keeping the
    /// overhead of lock operations small is an important implementation
    /// issue"). `None` when no lock ops happened.
    pub fn local_lock_fraction(&self) -> Option<f64> {
        let total = self.total_lock_ops();
        (total > 0).then(|| self.local_lock_grants as f64 / total as f64)
    }

    /// Committed families per simulated second (the throughput metric the
    /// paper's §2 motivates).
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.committed_families as f64 / secs
        }
    }
}

/// One protocol's traffic ledger evaluated against a network
/// configuration.
#[derive(Debug, Clone)]
pub struct ProtocolTraffic {
    ledger: TrafficLedger,
}

impl ProtocolTraffic {
    /// Wraps a ledger.
    pub fn new(ledger: TrafficLedger) -> Self {
        ProtocolTraffic { ledger }
    }

    /// The underlying ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// Bytes + messages charged to `object` (a bar of Figures 2–5).
    pub fn object(&self, object: ObjectId) -> ObjectTraffic {
        self.ledger.object(object)
    }

    /// Whole-run totals.
    pub fn total(&self) -> ObjectTraffic {
        self.ledger.total()
    }

    /// Total message time for `object` under `net` (a bar of Figures 6–8).
    /// Respects the active-message split when `net` enables it.
    pub fn object_time(&self, object: ObjectId, net: NetworkConfig) -> SimDuration {
        self.ledger.object_time(object, net)
    }

    /// Total *page payload* bytes moved — transfer bytes with per-message
    /// and per-page framing stripped.
    ///
    /// Whole-message byte totals can rank LOTEC marginally above OTEC when
    /// LOTEC gathers the same pages from more sources (more small
    /// messages, hence more headers — exactly the trade-off the paper
    /// discusses). Payload bytes are the header-free quantity for which
    /// `LOTEC ≤ OTEC ≤ COTEC` holds strictly; the workspace property tests
    /// assert on it.
    pub fn page_payload_bytes(&self, sizes: &lotec_net::MessageSizes, page_size: u32) -> u64 {
        use lotec_net::MessageKind;
        let mut payload = 0;
        for kind in [
            MessageKind::PageTransfer,
            MessageKind::DemandPageTransfer,
            MessageKind::UpdatePush,
        ] {
            let t = self.ledger.kind(kind);
            // Each message: header + n*(page_header + page_size); recover
            // the page payload by stripping framing.
            let framed = t.bytes - sizes.header * t.messages;
            let per_page = sizes.page_header + u64::from(page_size);
            debug_assert_eq!(
                framed % per_page,
                0,
                "page transfer sizes must be page-framed"
            );
            payload += (framed / per_page) * u64::from(page_size);
        }
        payload
    }

    /// Whole-run message time under `net`. Respects the active-message
    /// split when `net` enables it.
    pub fn total_time(&self, net: NetworkConfig) -> SimDuration {
        self.ledger.total_time(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotec_net::{Bandwidth, Message, MessageKind, SoftwareCost};
    use lotec_sim::NodeId;

    #[test]
    fn run_stats_derived_metrics() {
        let stats = RunStats {
            committed_families: 10,
            makespan: SimDuration::from_millis(2),
            total_latency: SimDuration::from_millis(5),
            ..RunStats::default()
        };
        assert_eq!(stats.mean_latency(), Some(SimDuration::from_micros(500)));
        assert_eq!(stats.throughput_per_sec(), 5000.0);
    }

    #[test]
    fn abort_rate_counts_finished_families_only() {
        let stats = RunStats {
            committed_families: 95,
            aborted_families: 5,
            restarts: 40, // retry churn must not count as failure
            ..RunStats::default()
        };
        assert!((stats.abort_rate() - 0.05).abs() < 1e-12);
        assert_eq!(RunStats::default().abort_rate(), 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = RunStats::default();
        assert_eq!(stats.mean_latency(), None);
        assert_eq!(stats.throughput_per_sec(), 0.0);
        assert_eq!(stats.phases.fractions(), None);
        assert_eq!(stats.phases.lock_wait_fraction(), None);
    }

    #[test]
    fn out_of_range_quantiles_are_none_not_panics() {
        let mut stats = RunStats::default();
        stats.latency_histogram.record(100);
        assert!(stats.latency_quantile(0.5).is_some());
        assert_eq!(stats.latency_quantile(-0.1), None);
        assert_eq!(stats.latency_quantile(1.5), None);
        assert_eq!(stats.latency_quantile(f64::NAN), None);
        stats.latency_sketch.record(100);
        assert_eq!(
            stats.latency_quantile_precise(0.5),
            Some(SimDuration::from_nanos(100))
        );
        assert_eq!(stats.latency_quantile_precise(1.5), None);
        assert_eq!(stats.latency_quantile_precise(f64::NAN), None);
        assert_eq!(RunStats::default().latency_quantile_precise(0.5), None);
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        let mut b = PhaseBreakdown::default();
        b.aggregate.lock_wait = SimDuration::from_micros(1);
        b.aggregate.transfer_wait = SimDuration::from_micros(2);
        b.aggregate.running = SimDuration::from_micros(5);
        b.aggregate.backoff = SimDuration::from_micros(2);
        let f = b.fractions().unwrap();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(b.lock_wait_fraction(), Some(0.1));
    }

    #[test]
    fn page_payload_strips_framing() {
        let sizes = lotec_net::MessageSizes::default();
        let page_size = 4096u32;
        let mut ledger = TrafficLedger::new();
        // One transfer of 3 pages and one demand transfer of 1 page.
        ledger.record(&Message::new(
            MessageKind::PageTransfer,
            NodeId::new(0),
            NodeId::new(1),
            ObjectId::new(0),
            sizes.page_transfer(3, page_size as u64),
        ));
        ledger.record(&Message::new(
            MessageKind::DemandPageTransfer,
            NodeId::new(2),
            NodeId::new(1),
            ObjectId::new(0),
            sizes.page_transfer(1, page_size as u64),
        ));
        // Requests and lock traffic must not count as payload.
        ledger.record(&Message::new(
            MessageKind::PageRequest,
            NodeId::new(1),
            NodeId::new(0),
            ObjectId::new(0),
            sizes.page_request(3),
        ));
        let t = ProtocolTraffic::new(ledger);
        assert_eq!(
            t.page_payload_bytes(&sizes, page_size),
            4 * u64::from(page_size)
        );
    }

    #[test]
    fn protocol_traffic_wraps_ledger() {
        let mut ledger = TrafficLedger::new();
        ledger.record(&Message::new(
            MessageKind::PageTransfer,
            NodeId::new(0),
            NodeId::new(1),
            ObjectId::new(3),
            1000,
        ));
        let t = ProtocolTraffic::new(ledger);
        assert_eq!(t.object(ObjectId::new(3)).bytes, 1000);
        assert_eq!(t.total().messages, 1);
        let net = NetworkConfig::new(Bandwidth::ethernet10(), SoftwareCost::MICROS_100);
        // 100us + 800us wire.
        assert_eq!(
            t.object_time(ObjectId::new(3), net),
            SimDuration::from_micros(900)
        );
        assert_eq!(t.total_time(net), SimDuration::from_micros(900));
    }
}
