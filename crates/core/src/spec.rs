//! Workload specifications: concrete transaction families to execute.
//!
//! A [`FamilySpec`] is one user-invoked root method invocation — where and
//! when it starts and the full tree of nested invocations it will make,
//! with each invocation's run-time control path already drawn (the path a
//! real execution would take based on run-time values). The workload
//! generator (crate `lotec-workload`) produces these; [`validate_family`]
//! checks them against the registry so the engine never dispatches into a
//! dangling class/method/path.

use lotec_mem::ObjectId;
use lotec_object::{ClassBuilder, ClassId, MethodId, ObjectRegistry, PathId};
use lotec_sim::{NodeId, SimTime};

use crate::config::SystemConfig;
use crate::error::CoreError;

/// One method invocation in a family's execution tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationSpec {
    /// Receiver object.
    pub object: ObjectId,
    /// Method invoked on it.
    pub method: MethodId,
    /// The control-flow path this run takes.
    pub path: PathId,
    /// Nested invocations, one per invocation site of the chosen path, in
    /// program order.
    pub children: Vec<InvocationSpec>,
    /// Fault injection: this [sub-]transaction aborts after its children
    /// finish (its work and its children's pre-committed work roll back).
    pub abort: bool,
}

impl InvocationSpec {
    /// A leaf invocation (no children, no fault).
    pub fn leaf(object: ObjectId, method: MethodId, path: PathId) -> Self {
        InvocationSpec {
            object,
            method,
            path,
            children: Vec::new(),
            abort: false,
        }
    }

    /// Number of invocations in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(InvocationSpec::size)
            .sum::<usize>()
    }

    /// Maximum nesting depth of this subtree (1 for a leaf).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(InvocationSpec::depth)
            .max()
            .unwrap_or(0)
    }
}

/// One transaction family: a root invocation arriving at a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySpec {
    /// Site where the family executes.
    pub node: NodeId,
    /// Arrival (start) time.
    pub start: SimTime,
    /// The root invocation.
    pub root: InvocationSpec,
}

impl FamilySpec {
    /// Number of invocations in the family.
    pub fn size(&self) -> usize {
        self.root.size()
    }
}

/// Validates `family` against `registry` and `config`.
///
/// Checks performed:
/// * the executing node exists,
/// * every receiver object / method / path exists,
/// * each invocation's children match the chosen path's invocation sites
///   one-to-one (same target class, same method),
/// * no invocation targets an object locked by a *strict ancestor*
///   invocation in the same tree — such a request would be a mutually
///   recursive invocation, which §3.4 precludes (the engine would reject
///   it at run time; validation rejects it statically).
///
/// # Errors
///
/// Returns [`CoreError::InvalidSpec`] describing the first violation.
pub fn validate_family(
    family: &FamilySpec,
    registry: &ObjectRegistry,
    config: &SystemConfig,
) -> Result<(), CoreError> {
    if family.node.index() >= config.num_nodes {
        return Err(CoreError::InvalidSpec(format!(
            "family starts at {} but the system has {} nodes",
            family.node, config.num_nodes
        )));
    }
    let mut lock_chain = Vec::new();
    validate_invocation(&family.root, registry, &mut lock_chain)
}

fn validate_invocation(
    inv: &InvocationSpec,
    registry: &ObjectRegistry,
    lock_chain: &mut Vec<ObjectId>,
) -> Result<(), CoreError> {
    if inv.object.index() as usize >= registry.num_objects() {
        return Err(CoreError::InvalidSpec(format!(
            "unknown object {}",
            inv.object
        )));
    }
    if lock_chain.contains(&inv.object) {
        return Err(CoreError::InvalidSpec(format!(
            "invocation on {} nested under an invocation already holding it \
             (mutually recursive invocation, precluded by §3.4)",
            inv.object
        )));
    }
    let instance = registry.object(inv.object);
    let compiled = registry.class_of(inv.object);
    let class = compiled.class();
    let Some(method) = class.methods().get(inv.method.index() as usize) else {
        return Err(CoreError::InvalidSpec(format!(
            "object {} (class {}) has no method {}",
            inv.object,
            class.name(),
            inv.method
        )));
    };
    let Some(path) = method.paths().get(inv.path.index() as usize) else {
        return Err(CoreError::InvalidSpec(format!(
            "method {}::{} has no {}",
            class.name(),
            method.name(),
            inv.path
        )));
    };
    let sites = path.invokes();
    if sites.len() != inv.children.len() {
        return Err(CoreError::InvalidSpec(format!(
            "{}::{} {} has {} invocation sites but the spec provides {} children",
            class.name(),
            method.name(),
            inv.path,
            sites.len(),
            inv.children.len()
        )));
    }
    let _ = instance;
    lock_chain.push(inv.object);
    for (site, child) in sites.iter().zip(&inv.children) {
        // Check recursion before class conformance so the more fundamental
        // violation is the one reported.
        if (child.object.index() as usize) < registry.num_objects()
            && lock_chain.contains(&child.object)
        {
            return Err(CoreError::InvalidSpec(format!(
                "invocation on {} nested under an invocation already holding it \
                 (mutually recursive invocation, precluded by §3.4)",
                child.object
            )));
        }
        let child_class = registry.object(child.object).class;
        if child_class != site.class {
            return Err(CoreError::InvalidSpec(format!(
                "invocation site expects class {} but child object {} has class {}",
                site.class, child.object, child_class
            )));
        }
        if child.method != site.method {
            return Err(CoreError::InvalidSpec(format!(
                "invocation site expects method {} but child invokes {}",
                site.method, child.method
            )));
        }
        validate_invocation(child, registry, lock_chain)?;
    }
    lock_chain.pop();
    Ok(())
}

/// A tiny self-contained workload used by doctests and smoke tests: two
/// classes (a multi-page `Container` and a small `Item`), a handful of
/// objects spread over the configured nodes, and one family per object
/// invoking a writer method that nests an item update.
///
/// Real experiments use `lotec-workload`; this exists so `lotec-core`'s
/// documentation examples run without the generator crate.
pub fn demo_workload(config: &SystemConfig, seed: u64) -> (ObjectRegistry, Vec<FamilySpec>) {
    let container = ClassBuilder::new("Container")
        .attribute("header", 128)
        .attribute("bulk", config.page_size * 3)
        .attribute("index", config.page_size)
        .method("touch_header", |m| {
            m.path(|p| {
                p.reads(&["header"])
                    .writes(&["header"])
                    .invokes(ClassId::new(1), MethodId::new(0))
            })
        })
        .method("rebuild", |m| {
            m.path(|p| p.reads(&["bulk"]).writes(&["bulk", "index"]))
                .path(|p| p.reads(&["index"]).writes(&["index"]))
        })
        .build();
    let item = ClassBuilder::new("Item")
        .attribute("value", 64)
        .method("bump", |m| {
            m.path(|p| p.reads(&["value"]).writes(&["value"]))
        })
        .build();

    let num_containers = 4u32;
    let num_items = 4u32;
    let mut objects = Vec::new();
    for i in 0..num_containers {
        objects.push((ClassId::new(0), NodeId::new(i % config.num_nodes)));
    }
    for i in 0..num_items {
        objects.push((ClassId::new(1), NodeId::new(i % config.num_nodes)));
    }
    let registry = ObjectRegistry::build(&[container, item], &objects, config.page_size)
        .expect("demo classes compile");

    let mut rng = lotec_sim::SimRng::seed_from_u64(seed);
    let mut families = Vec::new();
    for f in 0..8u32 {
        let container = ObjectId::new(f % num_containers);
        let item = ObjectId::new(num_containers + (f + 1) % num_items);
        let use_rebuild = rng.chance(0.5);
        let root = if use_rebuild {
            InvocationSpec {
                object: container,
                method: MethodId::new(1),
                path: PathId::new(if rng.chance(0.5) { 0 } else { 1 }),
                children: Vec::new(),
                abort: false,
            }
        } else {
            InvocationSpec {
                object: container,
                method: MethodId::new(0),
                path: PathId::new(0),
                children: vec![InvocationSpec::leaf(item, MethodId::new(0), PathId::new(0))],
                abort: false,
            }
        };
        families.push(FamilySpec {
            node: NodeId::new(f % config.num_nodes),
            start: SimTime::from_micros(u64::from(f) * 3),
            root,
        });
    }
    for family in &families {
        validate_family(family, &registry, config).expect("demo workload is valid");
    }
    (registry, families)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_workload_validates() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 1);
        assert!(!families.is_empty());
        for f in &families {
            validate_family(f, &registry, &config).unwrap();
        }
    }

    #[test]
    fn demo_workload_is_deterministic() {
        let config = SystemConfig::default();
        let (_, a) = demo_workload(&config, 7);
        let (_, b) = demo_workload(&config, 7);
        assert_eq!(a, b);
        let (_, c) = demo_workload(&config, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn size_and_depth() {
        let leaf = InvocationSpec::leaf(ObjectId::new(0), MethodId::new(0), PathId::new(0));
        assert_eq!(leaf.size(), 1);
        assert_eq!(leaf.depth(), 1);
        let parent = InvocationSpec {
            object: ObjectId::new(1),
            method: MethodId::new(0),
            path: PathId::new(0),
            children: vec![leaf.clone(), leaf],
            abort: false,
        };
        assert_eq!(parent.size(), 3);
        assert_eq!(parent.depth(), 2);
    }

    #[test]
    fn unknown_object_rejected() {
        let config = SystemConfig::default();
        let (registry, mut families) = demo_workload(&config, 1);
        families[0].root.object = ObjectId::new(999);
        let err = validate_family(&families[0], &registry, &config).unwrap_err();
        assert!(err.to_string().contains("unknown object"));
    }

    #[test]
    fn bad_node_rejected() {
        let config = SystemConfig::default();
        let (registry, mut families) = demo_workload(&config, 1);
        families[0].node = NodeId::new(config.num_nodes + 1);
        assert!(validate_family(&families[0], &registry, &config).is_err());
    }

    #[test]
    fn child_count_mismatch_rejected() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 1);
        // Find a family whose root has a child and drop it.
        let mut fam = families
            .iter()
            .find(|f| !f.root.children.is_empty())
            .expect("demo has nested families")
            .clone();
        fam.root.children.clear();
        let err = validate_family(&fam, &registry, &config).unwrap_err();
        assert!(err.to_string().contains("invocation sites"));
    }

    #[test]
    fn recursive_invocation_rejected() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 1);
        let mut fam = families
            .iter()
            .find(|f| !f.root.children.is_empty())
            .expect("demo has nested families")
            .clone();
        // Point the child back at the parent's object (wrong class too, but
        // the recursion check fires first).
        fam.root.children[0].object = fam.root.object;
        let err = validate_family(&fam, &registry, &config).unwrap_err();
        assert!(err.to_string().contains("recursive"), "{err}");
    }

    #[test]
    fn wrong_child_method_rejected() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 1);
        let mut fam = families
            .iter()
            .find(|f| !f.root.children.is_empty())
            .unwrap()
            .clone();
        fam.root.children[0].method = MethodId::new(5);
        assert!(validate_family(&fam, &registry, &config).is_err());
    }
}
