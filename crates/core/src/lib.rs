//! LOTEC — Lazy Object Transactional Entry Consistency.
//!
//! This crate is the paper's primary contribution: the LOTEC DSM
//! consistency protocol for nested object transactions, its two in-paper
//! baselines (COTEC and OTEC), the release-consistency extension the paper
//! lists as work-in-progress (RC), and the simulated distributed execution
//! engine used to evaluate them.
//!
//! ## The protocol suite (paper §5)
//!
//! All four protocols share nested O2PL locking (crate `lotec-txn`); they
//! differ only in *which pages move, when*:
//!
//! | Protocol | Pages transferred on lock acquisition | Eager pushes |
//! |----------|----------------------------------------|--------------|
//! | COTEC    | every page of the object               | none         |
//! | OTEC     | pages updated since the acquirer's copy | none        |
//! | LOTEC    | updated ∩ predicted-needed pages        | none         |
//! | RC       | only never-seen pages                   | updates to all caching sites at root commit |
//!
//! ## Two evaluation paths
//!
//! * [`engine::Engine`] — a full discrete-event simulation: families of
//!   nested transactions execute at their sites, lock traffic flows to GDO
//!   partitions, pages move with realistic message timing, faults and
//!   deadlocks abort and restart families. One protocol per run.
//! * [`replay`] — the figure-generation path: one engine run records a
//!   [`trace::ScheduleTrace`] (every grant and commit); the trace is then
//!   replayed through each protocol's [`placement::PlacementModel`] to
//!   count exactly the bytes/messages each protocol *would* send for the
//!   identical transaction schedule. This is the fair same-workload
//!   comparison the paper's Figures 2–8 report, and because the lock
//!   schedule is shared, byte differences are purely protocol effects.
//!
//! Correctness is checked by [`oracle`]: strict O2PL makes every execution
//! equivalent to the serial execution in root-commit order, so the oracle
//! re-executes the committed stamps serially and verifies every page chain
//! and every recorded read.
//!
//! # Quickstart
//!
//! ```
//! use lotec_core::compare::compare_protocols;
//! use lotec_core::config::SystemConfig;
//! use lotec_core::spec::demo_workload;
//!
//! let config = SystemConfig::default();
//! let (registry, families) = demo_workload(&config, 42);
//! let cmp = compare_protocols(&config, &registry, &families).unwrap();
//! let lotec = cmp.total(lotec_core::protocol::ProtocolKind::Lotec).bytes;
//! let otec = cmp.total(lotec_core::protocol::ProtocolKind::Otec).bytes;
//! let cotec = cmp.total(lotec_core::protocol::ProtocolKind::Cotec).bytes;
//! assert!(lotec <= otec && otec <= cotec);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod compare;
pub mod config;
pub mod engine;
pub mod error;
pub mod granularity;
pub mod metrics;
pub mod oracle;
pub mod placement;
pub mod protocol;
pub mod replay;
pub mod spec;
pub mod trace;

pub use compare::{compare_protocols, ProtocolComparison};
pub use config::{AdaptiveConfig, CostModel, FlightRecorderConfig, SystemConfig};
pub use engine::{run_engine_recorded, Engine, RunReport};
pub use error::CoreError;
pub use protocol::ProtocolKind;
pub use spec::{FamilySpec, InvocationSpec};
pub use trace::ScheduleTrace;
