//! Error type for the core crate.

use std::fmt;

use lotec_txn::LockError;

/// Errors surfaced by engine runs and replay comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A workload specification failed validation.
    InvalidSpec(String),
    /// The lock manager rejected an operation the engine expected to be
    /// legal — either a workload bug (mutual recursion) or an engine bug.
    Lock(LockError),
    /// A family exceeded the configured restart budget.
    RestartBudgetExhausted {
        /// Index of the failing family in the workload.
        family_index: usize,
        /// Restarts attempted.
        restarts: u32,
    },
    /// The serializability oracle found a divergence.
    OracleViolation(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSpec(msg) => write!(f, "invalid workload spec: {msg}"),
            CoreError::Lock(e) => write!(f, "lock manager rejection: {e}"),
            CoreError::RestartBudgetExhausted {
                family_index,
                restarts,
            } => write!(
                f,
                "family #{family_index} exhausted its restart budget after {restarts} attempts"
            ),
            CoreError::OracleViolation(msg) => write!(f, "serializability violation: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lock(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LockError> for CoreError {
    fn from(e: LockError) -> Self {
        CoreError::Lock(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidSpec("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = CoreError::RestartBudgetExhausted {
            family_index: 3,
            restarts: 25,
        };
        assert!(e.to_string().contains("#3"));
        assert!(e.to_string().contains("25"));
    }

    #[test]
    fn lock_errors_convert() {
        let e: CoreError = LockError::UnknownObject(lotec_mem::ObjectId::new(1)).into();
        assert!(matches!(e, CoreError::Lock(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
