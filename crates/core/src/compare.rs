//! The protocol comparison harness: one workload, one schedule, all four
//! protocols' costs.
//!
//! [`compare_protocols`] runs the engine once (under the configured
//! protocol — LOTEC by default — whose timing fixes the lock schedule),
//! verifies the run against the serializability oracle, and replays the
//! schedule through every protocol's placement model. The result answers
//! the questions the paper's figures pose: bytes per shared object
//! (Figs. 2–5) and total message time under any network configuration
//! (Figs. 6–8).

use lotec_mem::ObjectId;
use lotec_net::{NetworkConfig, ObjectTraffic};
use lotec_object::ObjectRegistry;
use lotec_sim::SimDuration;

use crate::config::SystemConfig;
use crate::engine::{run_engine, RunReport};
use crate::error::CoreError;
use crate::metrics::ProtocolTraffic;
use crate::oracle;
use crate::protocol::ProtocolKind;
use crate::replay::replay_trace;
use crate::spec::FamilySpec;

/// Per-protocol traffic for one shared workload schedule.
#[derive(Debug, Clone)]
pub struct ProtocolComparison {
    report: RunReport,
    per_protocol: Vec<(ProtocolKind, ProtocolTraffic)>,
}

impl ProtocolComparison {
    /// The engine run that fixed the schedule (timing, stats, trace).
    pub fn schedule_run(&self) -> &RunReport {
        &self.report
    }

    /// The traffic `kind` generates for the shared schedule.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was not part of the comparison (all four always
    /// are).
    pub fn traffic(&self, kind: ProtocolKind) -> &ProtocolTraffic {
        &self
            .per_protocol
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("all protocols compared")
            .1
    }

    /// Bytes/messages `kind` charges to `object` — one bar of Figures 2–5.
    pub fn object(&self, kind: ProtocolKind, object: ObjectId) -> ObjectTraffic {
        self.traffic(kind).object(object)
    }

    /// Whole-run totals for `kind`.
    pub fn total(&self, kind: ProtocolKind) -> ObjectTraffic {
        self.traffic(kind).total()
    }

    /// Total message time of `object` under `kind` for a network
    /// configuration — one bar of Figures 6–8.
    pub fn object_time(
        &self,
        kind: ProtocolKind,
        object: ObjectId,
        net: NetworkConfig,
    ) -> SimDuration {
        self.traffic(kind).object_time(object, net)
    }

    /// Whole-run message time for `kind` under `net`.
    pub fn total_time(&self, kind: ProtocolKind, net: NetworkConfig) -> SimDuration {
        self.traffic(kind).total_time(net)
    }

    /// The byte ratio `a / b` over whole-run totals (the paper's in-text
    /// "OTEC outperforms COTEC by ~20–25%" style numbers are
    /// `1 - ratio`).
    pub fn byte_ratio(&self, a: ProtocolKind, b: ProtocolKind) -> f64 {
        let a = self.total(a).bytes as f64;
        let b = self.total(b).bytes as f64;
        if b == 0.0 {
            0.0
        } else {
            a / b
        }
    }
}

/// Runs `workload` once and compares all four protocols on the resulting
/// schedule.
///
/// The engine run is checked against the serializability oracle before the
/// comparison is trusted.
///
/// # Errors
///
/// Propagates engine errors and oracle violations.
pub fn compare_protocols(
    config: &SystemConfig,
    registry: &ObjectRegistry,
    workload: &[FamilySpec],
) -> Result<ProtocolComparison, CoreError> {
    let report = run_engine(config, registry, workload)?;
    oracle::verify(&report)?;
    let per_protocol = ProtocolKind::ALL
        .iter()
        .map(|&kind| (kind, replay_trace(kind, &report.trace, registry, config)))
        .collect();
    Ok(ProtocolComparison {
        report,
        per_protocol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::demo_workload;

    #[test]
    fn comparison_orders_bytes_lotec_otec_cotec() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 11);
        let cmp = compare_protocols(&config, &registry, &families).unwrap();
        let lotec = cmp.total(ProtocolKind::Lotec).bytes;
        let otec = cmp.total(ProtocolKind::Otec).bytes;
        let cotec = cmp.total(ProtocolKind::Cotec).bytes;
        assert!(lotec <= otec, "LOTEC {lotec} > OTEC {otec}");
        assert!(otec <= cotec, "OTEC {otec} > COTEC {cotec}");
        assert!(lotec > 0, "some traffic must flow");
    }

    #[test]
    fn per_object_ordering_holds_on_demo() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 12);
        let cmp = compare_protocols(&config, &registry, &families).unwrap();
        for inst in registry.objects() {
            let l = cmp.object(ProtocolKind::Lotec, inst.id).bytes;
            let o = cmp.object(ProtocolKind::Otec, inst.id).bytes;
            let c = cmp.object(ProtocolKind::Cotec, inst.id).bytes;
            assert!(l <= o && o <= c, "{}: {l} / {o} / {c}", inst.id);
        }
    }

    #[test]
    fn lock_traffic_identical_across_paper_trio() {
        use lotec_net::MessageKind;
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 13);
        let cmp = compare_protocols(&config, &registry, &families).unwrap();
        for kind in [
            MessageKind::LockRequest,
            MessageKind::LockGrant,
            MessageKind::LockRelease,
        ] {
            let c = cmp.traffic(ProtocolKind::Cotec).ledger().kind(kind);
            let o = cmp.traffic(ProtocolKind::Otec).ledger().kind(kind);
            let l = cmp.traffic(ProtocolKind::Lotec).ledger().kind(kind);
            assert_eq!(c, o, "{kind}");
            assert_eq!(o, l, "{kind}");
        }
    }

    #[test]
    fn message_time_shrinks_with_faster_software() {
        use lotec_net::{Bandwidth, SoftwareCost};
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 14);
        let cmp = compare_protocols(&config, &registry, &families).unwrap();
        let slow = NetworkConfig::new(Bandwidth::ethernet10(), SoftwareCost::MICROS_100);
        let fast = NetworkConfig::new(Bandwidth::ethernet10(), SoftwareCost::NANOS_500);
        for kind in ProtocolKind::PAPER_TRIO {
            assert!(
                cmp.total_time(kind, fast) < cmp.total_time(kind, slow),
                "{kind}"
            );
        }
    }

    #[test]
    fn byte_ratio_is_sane() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 15);
        let cmp = compare_protocols(&config, &registry, &families).unwrap();
        let ratio = cmp.byte_ratio(ProtocolKind::Lotec, ProtocolKind::Cotec);
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio}");
    }
}
