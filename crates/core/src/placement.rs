//! Per-protocol page-placement state for trace replay.
//!
//! A [`PlacementModel`] tracks, for one protocol, where every page of every
//! object lives and at which version — the same information the live
//! engine keeps in `PageStore`s and GDO page maps, but as a lightweight
//! state machine advanced by trace events. Each protocol evolves its own
//! placement because partial transfers (LOTEC) leave different nodes with
//! different staleness than full transfers (COTEC/OTEC) or eager pushes
//! (RC).

use std::collections::{BTreeMap, BTreeSet};

use lotec_mem::{ObjectId, PageIndex, Version};
use lotec_object::{ObjectRegistry, PageSet};
use lotec_sim::NodeId;

use crate::protocol::{plan_transfer, PlacementView, ProtocolKind, TransferPlan};

#[derive(Debug, Clone)]
struct ObjectPlacement {
    kind: ProtocolKind,
    num_pages: u16,
    last_holder: NodeId,
    global: Vec<Version>,
    owner: Vec<NodeId>,
    caching: BTreeSet<NodeId>,
    /// node -> per-page cached version (`None` = no copy).
    local: BTreeMap<NodeId, Vec<Option<Version>>>,
}

/// The pages pushed at a commit under RC: `(destination, pages)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PushPlan {
    /// Each destination site and the pages pushed to it.
    pub destinations: Vec<(NodeId, Vec<PageIndex>)>,
}

impl PushPlan {
    /// True when nothing is pushed.
    pub fn is_empty(&self) -> bool {
        self.destinations.is_empty()
    }
}

/// One protocol's evolving view of page placement.
#[derive(Debug, Clone)]
pub struct PlacementModel {
    kind: ProtocolKind,
    objects: Vec<ObjectPlacement>,
}

impl PlacementModel {
    /// Initial placement: every object whole, at version 0, at its home
    /// node; every object governed by `kind`.
    pub fn new(kind: ProtocolKind, registry: &ObjectRegistry) -> Self {
        Self::with_assignment(kind, registry, |_| kind)
    }

    /// Initial placement with a per-object protocol assignment (the
    /// per-class consistency extension): `protocol_of` maps each object's
    /// class to its governing protocol. `default` is reported by
    /// [`PlacementModel::kind`].
    pub fn with_assignment(
        default: ProtocolKind,
        registry: &ObjectRegistry,
        protocol_of: impl Fn(lotec_object::ClassId) -> ProtocolKind,
    ) -> Self {
        let objects = registry
            .objects()
            .map(|inst| {
                let num_pages = registry.num_pages(inst.id);
                ObjectPlacement {
                    kind: protocol_of(inst.class),
                    num_pages,
                    last_holder: inst.home,
                    global: vec![Version::INITIAL; num_pages as usize],
                    owner: vec![inst.home; num_pages as usize],
                    caching: BTreeSet::from([inst.home]),
                    local: BTreeMap::from([(
                        inst.home,
                        vec![Some(Version::INITIAL); num_pages as usize],
                    )]),
                }
            })
            .collect();
        PlacementModel {
            kind: default,
            objects,
        }
    }

    /// The default protocol this model evolves under (individual objects
    /// may override it via [`PlacementModel::with_assignment`]).
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The protocol governing `object` under this model's assignment.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn kind_of(&self, object: ObjectId) -> ProtocolKind {
        self.obj(object).kind
    }

    fn obj(&self, object: ObjectId) -> &ObjectPlacement {
        &self.objects[object.index() as usize]
    }

    fn obj_mut(&mut self, object: ObjectId) -> &mut ObjectPlacement {
        &mut self.objects[object.index() as usize]
    }

    /// Advances the model over a lock grant: plans the transfer the
    /// protocol performs for this acquisition (given the acquiring
    /// method's `prefetch` page set — the conservative prediction for
    /// LOTEC, the full page set otherwise) and applies its effects.
    ///
    /// Returns the plan so the caller can charge messages and bytes.
    pub fn on_grant(&mut self, node: NodeId, object: ObjectId, prefetch: &PageSet) -> TransferPlan {
        let kind = self.obj(object).kind;
        let plan = plan_transfer(kind, &*self, node, object, prefetch);
        self.apply_fetch(node, object, &plan);
        // Under COTEC/OTEC the acquirer also demand-zeroes any never-written
        // pages, making it a complete current copy; record its cached
        // versions for every page.
        let o = self.obj_mut(object);
        match kind {
            ProtocolKind::Cotec | ProtocolKind::Otec | ProtocolKind::ReleaseConsistency => {
                let versions: Vec<Option<Version>> = o.global.iter().map(|&v| Some(v)).collect();
                o.local.insert(node, versions);
            }
            ProtocolKind::Lotec => {
                // Only fetched pages (plus demand-zeroed v0 pages within the
                // prefetch set) become current; apply_fetch already recorded
                // the fetched ones. Materialize demand-zero copies for
                // prefetched v0 pages the node lacks.
                let np = o.num_pages as usize;
                let entry = o.local.entry(node).or_insert_with(|| vec![None; np]);
                for page in prefetch.iter() {
                    let idx = page.get() as usize;
                    if idx < entry.len()
                        && entry[idx].is_none()
                        && o.global[idx] == Version::INITIAL
                    {
                        entry[idx] = Some(Version::INITIAL);
                    }
                }
            }
        }
        o.caching.insert(node);
        o.last_holder = node;
        plan
    }

    /// Demand fetch of a single page at `node` (LOTEC misprediction path).
    /// Returns the source node, or `None` if no transfer is needed (local
    /// copy already current or page demand-zeroable).
    pub fn demand_fetch(
        &mut self,
        node: NodeId,
        object: ObjectId,
        page: PageIndex,
    ) -> Option<NodeId> {
        let o = self.obj(object);
        let idx = page.get() as usize;
        let global = o.global[idx];
        let local = o
            .local
            .get(&node)
            .and_then(|v| v[idx])
            .unwrap_or(Version::INITIAL);
        if !global.is_newer_than(local) {
            return None;
        }
        let source = o.owner[idx];
        debug_assert_ne!(source, node, "owner cannot be stale at itself");
        let o = self.obj_mut(object);
        let np = o.num_pages as usize;
        o.local.entry(node).or_insert_with(|| vec![None; np])[idx] = Some(global);
        Some(source)
    }

    fn apply_fetch(&mut self, node: NodeId, object: ObjectId, plan: &TransferPlan) {
        let pages: Vec<PageIndex> = plan
            .sources()
            .flat_map(|(_, pages)| pages.iter().copied())
            .collect();
        let o = self.obj_mut(object);
        let np = o.num_pages as usize;
        let globals = o.global.clone();
        let entry = o.local.entry(node).or_insert_with(|| vec![None; np]);
        for page in pages {
            let idx = page.get() as usize;
            entry[idx] = Some(globals[idx]);
        }
    }

    /// Advances the model over a root commit: `node` committed updates to
    /// `dirty` pages of `object`. Bumps global versions and ownership;
    /// under RC also computes the eager pushes to every other caching
    /// site and applies them.
    pub fn on_commit(&mut self, node: NodeId, object: ObjectId, dirty: &[PageIndex]) -> PushPlan {
        let o = self.obj_mut(object);
        let kind = o.kind;
        debug_assert!(o.caching.contains(&node), "committer must cache the object");
        let np = o.num_pages as usize;
        for &page in dirty {
            let idx = page.get() as usize;
            o.global[idx] = o.global[idx].next();
            o.owner[idx] = node;
            let new_v = o.global[idx];
            o.local.entry(node).or_insert_with(|| vec![None; np])[idx] = Some(new_v);
        }
        // `last_holder` is NOT updated here: it tracks the last *grantee*.
        // A write committer is necessarily the last grantee already (the
        // write lock excluded everyone since its grant), and a read-only
        // commit changes nothing — while under read sharing several
        // families commit in arbitrary order and updating here would
        // diverge from the grant-ordered view the engine maintains.

        let mut push = PushPlan::default();
        if kind.pushes_on_commit() && !dirty.is_empty() {
            let sites: Vec<NodeId> = o.caching.iter().copied().filter(|&s| s != node).collect();
            let globals = o.global.clone();
            for site in sites {
                let entry = o.local.entry(site).or_insert_with(|| vec![None; np]);
                let mut pushed = Vec::with_capacity(dirty.len());
                for &page in dirty {
                    let idx = page.get() as usize;
                    entry[idx] = Some(globals[idx]);
                    pushed.push(page);
                }
                push.destinations.push((site, pushed));
            }
        }
        push
    }

    /// Checks internal coherence: owners hold what the map claims; local
    /// versions never exceed the global version. Used by tests.
    pub fn check_coherence(&self) -> Result<(), String> {
        for (i, o) in self.objects.iter().enumerate() {
            for (idx, (&global, &owner)) in o.global.iter().zip(&o.owner).enumerate() {
                let at_owner = o
                    .local
                    .get(&owner)
                    .and_then(|v| v[idx])
                    .unwrap_or(Version::INITIAL);
                if at_owner != global {
                    return Err(format!(
                        "O{i}/p{idx}: owner {owner} has {at_owner}, global is {global}"
                    ));
                }
                for (node, versions) in &o.local {
                    if let Some(v) = versions[idx] {
                        if v.is_newer_than(global) {
                            return Err(format!(
                                "O{i}/p{idx}: {node} caches {v} newer than global {global}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl PlacementView for PlacementModel {
    fn local_version(&self, node: NodeId, object: ObjectId, page: PageIndex) -> Option<Version> {
        self.obj(object)
            .local
            .get(&node)
            .and_then(|v| v[page.get() as usize])
    }

    fn global_version(&self, object: ObjectId, page: PageIndex) -> Version {
        self.obj(object).global[page.get() as usize]
    }

    fn page_owner(&self, object: ObjectId, page: PageIndex) -> NodeId {
        self.obj(object).owner[page.get() as usize]
    }

    fn last_holder(&self, object: ObjectId) -> NodeId {
        self.obj(object).last_holder
    }

    fn num_pages(&self, object: ObjectId) -> u16 {
        self.obj(object).num_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotec_object::{ClassBuilder, ClassId};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn registry() -> ObjectRegistry {
        // One class spanning 4 pages of 100 bytes.
        let class = ClassBuilder::new("Blob")
            .attribute("a", 100)
            .attribute("b", 100)
            .attribute("c", 100)
            .attribute("d", 100)
            .method("m", |m| m.path(|p| p.reads(&["a"]).writes(&["a"])))
            .build();
        ObjectRegistry::build(&[class], &[(ClassId::new(0), n(0))], 100).unwrap()
    }

    fn obj() -> ObjectId {
        ObjectId::new(0)
    }

    fn pages(idx: &[u16]) -> Vec<PageIndex> {
        idx.iter().map(|&i| PageIndex::new(i)).collect()
    }

    fn all() -> PageSet {
        (0..4).map(PageIndex::new).collect()
    }

    #[test]
    fn fresh_object_needs_no_transfer_under_otec() {
        let mut m = PlacementModel::new(ProtocolKind::Otec, &registry());
        let plan = m.on_grant(n(1), obj(), &all());
        assert!(plan.is_empty(), "all pages are version 0");
        m.check_coherence().unwrap();
    }

    #[test]
    fn commit_then_foreign_grant_moves_dirty_pages() {
        let mut m = PlacementModel::new(ProtocolKind::Otec, &registry());
        m.on_grant(n(1), obj(), &all());
        let push = m.on_commit(n(1), obj(), &pages(&[0, 2]));
        assert!(push.is_empty(), "OTEC never pushes");
        let plan = m.on_grant(n(2), obj(), &all());
        assert_eq!(plan.num_pages(), 2, "only the two updated pages move");
        assert_eq!(plan.sources().next().unwrap().0, n(1));
        m.check_coherence().unwrap();
    }

    #[test]
    fn cotec_moves_whole_object_every_time() {
        let mut m = PlacementModel::new(ProtocolKind::Cotec, &registry());
        let plan = m.on_grant(n(1), obj(), &all());
        assert_eq!(plan.num_pages(), 4, "COTEC ships v0 pages too");
        m.on_commit(n(1), obj(), &pages(&[0]));
        let plan = m.on_grant(n(2), obj(), &all());
        assert_eq!(plan.num_pages(), 4);
        // Re-acquisition by the same node is free (it is the last holder).
        m.on_commit(n(2), obj(), &pages(&[0]));
        let plan = m.on_grant(n(2), obj(), &all());
        assert!(plan.is_empty());
        m.check_coherence().unwrap();
    }

    #[test]
    fn lotec_fetches_predicted_intersection_and_scatters() {
        let mut m = PlacementModel::new(ProtocolKind::Lotec, &registry());
        // N1 updates p0+p1; N2 updates p2.
        m.on_grant(n(1), obj(), &all());
        m.on_commit(n(1), obj(), &pages(&[0, 1]));
        let pred: PageSet = [PageIndex::new(2), PageIndex::new(3)].into_iter().collect();
        m.on_grant(n(2), obj(), &pred);
        m.on_commit(n(2), obj(), &pages(&[2]));
        // N3 predicted to need p0 and p2: must gather from two sources.
        let pred: PageSet = [PageIndex::new(0), PageIndex::new(2)].into_iter().collect();
        let plan = m.on_grant(n(3), obj(), &pred);
        assert_eq!(plan.num_pages(), 2);
        assert_eq!(plan.num_sources(), 2, "scattered up-to-date pages");
        m.check_coherence().unwrap();
    }

    #[test]
    fn lotec_unfetched_pages_stay_stale_and_cost_later() {
        let mut m = PlacementModel::new(ProtocolKind::Lotec, &registry());
        m.on_grant(n(1), obj(), &all());
        m.on_commit(n(1), obj(), &pages(&[0, 1, 2, 3]));
        // N2 predicted only p0.
        let pred0: PageSet = [PageIndex::new(0)].into_iter().collect();
        let plan = m.on_grant(n(2), obj(), &pred0);
        assert_eq!(plan.num_pages(), 1);
        m.on_commit(n(2), obj(), &pages(&[0]));
        // N2 re-acquires, now needing p1: it is still stale locally.
        let pred1: PageSet = [PageIndex::new(1)].into_iter().collect();
        let plan = m.on_grant(n(2), obj(), &pred1);
        assert_eq!(plan.num_pages(), 1);
        assert_eq!(plan.sources().next().unwrap().0, n(1));
        m.check_coherence().unwrap();
    }

    #[test]
    fn rc_pushes_to_all_caching_sites() {
        let mut m = PlacementModel::new(ProtocolKind::ReleaseConsistency, &registry());
        m.on_grant(n(1), obj(), &all());
        m.on_commit(n(1), obj(), &pages(&[0]));
        m.on_grant(n(2), obj(), &all());
        let push = m.on_commit(n(2), obj(), &pages(&[1]));
        // Caching sites: home N0, N1, N2 -> pushes to N0 and N1.
        assert_eq!(push.destinations.len(), 2);
        // After the push, N1 acquiring again needs nothing.
        let plan = m.on_grant(n(1), obj(), &all());
        assert!(plan.is_empty(), "RC keeps caching sites current");
        m.check_coherence().unwrap();
    }

    #[test]
    fn demand_fetch_updates_local_copy() {
        let mut m = PlacementModel::new(ProtocolKind::Lotec, &registry());
        m.on_grant(n(1), obj(), &all());
        m.on_commit(n(1), obj(), &pages(&[3]));
        // N2 acquires predicting nothing, then touches p3 -> demand fetch.
        m.on_grant(n(2), obj(), &PageSet::new());
        let src = m.demand_fetch(n(2), obj(), PageIndex::new(3));
        assert_eq!(src, Some(n(1)));
        // Second touch: now current, no fetch.
        assert_eq!(m.demand_fetch(n(2), obj(), PageIndex::new(3)), None);
        // Never-written page: demand-zeroed, no fetch.
        assert_eq!(m.demand_fetch(n(2), obj(), PageIndex::new(2)), None);
        m.check_coherence().unwrap();
    }

    #[test]
    fn byte_ordering_over_a_shared_random_schedule() {
        // Drive all three paper protocols over one identical schedule and
        // check LOTEC <= OTEC <= COTEC on cumulative pages moved.
        let reg = registry();
        let mut rng = lotec_sim::SimRng::seed_from_u64(99);
        let mut models: Vec<PlacementModel> = ProtocolKind::PAPER_TRIO
            .iter()
            .map(|&k| PlacementModel::new(k, &reg))
            .collect();
        let mut moved = [0usize; 3];
        for _ in 0..200 {
            let node = n(rng.next_below(4) as u32);
            let pred: PageSet = (0..4)
                .filter(|_| rng.chance(0.5))
                .map(PageIndex::new)
                .collect();
            let writes: Vec<PageIndex> = pred.iter().filter(|_| rng.chance(0.6)).collect();
            for (i, m) in models.iter_mut().enumerate() {
                let full: PageSet = (0..4).map(PageIndex::new).collect();
                let prefetch = if m.kind() == ProtocolKind::Lotec {
                    &pred
                } else {
                    &full
                };
                let plan = m.on_grant(node, obj(), prefetch);
                moved[i] += plan.num_pages();
                m.on_commit(node, obj(), &writes);
                m.check_coherence().unwrap();
            }
        }
        let [cotec, otec, lotec] = moved;
        assert!(lotec <= otec, "LOTEC {lotec} > OTEC {otec}");
        assert!(otec <= cotec, "OTEC {otec} > COTEC {cotec}");
        assert!(lotec > 0);
    }
}
