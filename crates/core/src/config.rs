//! System-wide configuration for simulated runs.

use lotec_net::{MessageSizes, NetworkConfig};
use lotec_sim::SimDuration;

use crate::protocol::ProtocolKind;

/// Local processing costs (everything that is *not* network time).
///
/// The paper's evaluation focuses on network quantities; local costs exist
/// so the event timeline is realistic enough for queueing effects (who
/// reaches the GDO first) without dominating the results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// A lock operation served from locally cached GDO state.
    pub local_lock_op: SimDuration,
    /// GDO-side processing of one request.
    pub gdo_processing: SimDuration,
    /// Fixed cost of entering a method invocation.
    pub invocation_base: SimDuration,
    /// Compute cost per page actually touched by a method.
    pub per_page_access: SimDuration,
    /// UNDO cost per rolled-back page (local log replay).
    pub undo_per_page: SimDuration,
    /// Base backoff before a deadlock-victim family restarts; doubles per
    /// restart.
    pub retry_backoff_base: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            local_lock_op: SimDuration::from_nanos(200),
            gdo_processing: SimDuration::from_nanos(500),
            invocation_base: SimDuration::from_micros(2),
            per_page_access: SimDuration::from_micros(1),
            undo_per_page: SimDuration::from_nanos(500),
            retry_backoff_base: SimDuration::from_micros(100),
        }
    }
}

/// How the Global Directory of Objects is placed across the cluster.
///
/// §4.1: "To ensure efficiency and reliability, the GDO design is
/// partitioned and replicated as well as being partially cacheable at
/// local sites." Partitioning spreads directory load and gives every node
/// a share of zero-cost local lock operations; a central directory is the
/// classic bottleneck alternative worth measuring against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GdoPlacement {
    /// Hash-partitioned over all nodes (the paper's design).
    #[default]
    Partitioned,
    /// Every entry lives on one directory node.
    Central(lotec_sim::NodeId),
}

/// Which recovery mechanism the engine uses for UNDO (paper §4.1 names
/// both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryKind {
    /// Per-transaction undo logs.
    #[default]
    UndoLog,
    /// Shadow pages.
    ShadowPages,
}

/// Fault-injection configuration: a [`FaultPlan`](lotec_sim::FaultPlan)
/// for the network and node layer, plus engine-level fault knobs.
///
/// The default is fully disabled ([`FaultConfig::enabled`] is false) and
/// the engine's fault path is then zero-cost: no RNG draws, no extra
/// ledger entries, no behavior change relative to a fault-free build.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// Message-loss/duplication/delay probabilities and node crash
    /// windows, interpreted deterministically from the engine seed.
    pub plan: lotec_sim::FaultPlan,
    /// Lock-request timeout: a request still queued after this long is
    /// cancelled and requeued at the tail (modelling a timed-out waiter
    /// re-issuing its request). [`SimDuration::ZERO`] disables timeouts.
    pub lock_timeout: SimDuration,
}

impl FaultConfig {
    /// True when any fault mechanism can fire.
    pub fn enabled(&self) -> bool {
        self.plan.enabled() || self.lock_timeout > SimDuration::ZERO
    }

    /// Validates the embedded plan against the cluster size.
    ///
    /// # Panics
    ///
    /// Panics on the conditions documented for
    /// [`FaultPlan::validate`](lotec_sim::FaultPlan::validate).
    pub fn validate(&self, num_nodes: u32) {
        self.plan.validate(num_nodes);
    }
}

/// Adaptive access-prediction configuration.
///
/// When enabled, LOTEC-family protocols replace the static compile-time
/// prediction with a per-(class, method)
/// [`PredictionProfile`](lotec_object::PredictionProfile) refined online
/// from observed access sets: under-predictions (demand fetches) expand
/// the profile immediately, over-predicted pages are dropped after going
/// untouched for [`window`](AdaptiveConfig::window) consecutive
/// observations, and shrinking is floored at the statically-proven
/// must-access set. Adaptive runs also coalesce transfers: gather
/// requests are sized by maximal adjacent-page runs and same-phase demand
/// fetches batch into one round trip per source.
///
/// The default is fully disabled and then zero-cost: no profile state, no
/// extra events, byte-identical behavior to a build without the feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Master switch.
    pub enabled: bool,
    /// Confidence window: consecutive observations a predicted page must
    /// go untouched before the profile drops it.
    pub window: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            enabled: false,
            window: 4,
        }
    }
}

impl AdaptiveConfig {
    /// An enabled config with the default window.
    pub fn on() -> Self {
        AdaptiveConfig {
            enabled: true,
            ..AdaptiveConfig::default()
        }
    }
}

/// Flight-recorder (black box) configuration.
///
/// The recorder is a fixed-capacity ring of compact fixed-width event
/// records ([`lotec_obs::FlightRecorder`]) that the forensics pipeline
/// snapshots on anomaly. The config only sizes the ring; whether a
/// recorder runs at all is decided by the sink the caller passes to the
/// engine (e.g. via [`run_engine_recorded`](crate::run_engine_recorded)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecorderConfig {
    /// Ring capacity in records (each record is a fixed 176 bytes, so
    /// the default keeps under 1 MiB resident). Must be at least 1.
    pub slots: u32,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig { slots: 4096 }
    }
}

/// Full configuration of a simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of sites. Transaction families are distributed across them;
    /// the GDO is hash-partitioned over all of them.
    pub num_nodes: u32,
    /// DSM page size in bytes.
    pub page_size: u32,
    /// Network parameters (bandwidth + per-message software cost).
    pub network: NetworkConfig,
    /// Wire-structure byte sizes.
    pub sizes: MessageSizes,
    /// Local processing costs.
    pub costs: CostModel,
    /// The consistency protocol the engine runs (the default for every
    /// class not listed in [`SystemConfig::per_class_protocol`]).
    pub protocol: ProtocolKind,
    /// Per-class protocol overrides — the paper's §6 future-work item
    /// "extensions to support different consistency protocols … on a
    /// per-class basis". Keys are class indices
    /// ([`ClassId::index`](lotec_object::ClassId::index)).
    pub per_class_protocol: std::collections::BTreeMap<u32, ProtocolKind>,
    /// UNDO mechanism.
    pub recovery: RecoveryKind,
    /// GDO placement strategy.
    pub gdo_placement: GdoPlacement,
    /// GDO replication factor (§4.1: the directory is "partitioned and
    /// replicated … to ensure efficiency and reliability"). Each directory
    /// mutation (global grant, release) is propagated to `factor - 1`
    /// backup replicas by small write-behind messages; 1 = no replication.
    pub gdo_replication: u32,
    /// Distributed-Shared-Data transfer granularity (paper §4.2/§6):
    /// transfers carry only each page's *occupied* object bytes instead of
    /// whole pages. Objects rarely fill their last page, so DSD shaves the
    /// internal fragmentation off every transfer; per §4.2 this is also
    /// what makes diff-based false-sharing machinery unnecessary.
    pub dsd_transfers: bool,
    /// Models a multicast-capable network (paper §6: verifying "LOTEC's
    /// compatibility with conventional DSM optimization techniques
    /// including the use of multicast-capable networks"): an eager update
    /// push to N caching sites costs one message instead of N. Only the
    /// release-consistency extension generates one-to-many traffic, so
    /// only RC (or RC-assigned classes) is affected.
    pub multicast: bool,
    /// Enables optimistic lock prefetching (paper §6 future work): when a
    /// parent invocation enters its compute phase, the lock requests of
    /// its pending child invocations are issued early, overlapping their
    /// GDO round trips with the parent's computation. Lock *semantics*
    /// are unchanged (requests keep their queue position; this models
    /// pure latency hiding), only grant-message latency is absorbed.
    pub lock_prefetch: bool,
    /// Probability that a predicted page is dropped from LOTEC's prefetch
    /// plan, forcing a demand fetch if actually touched (0.0 = the paper's
    /// conservative compiler; > 0 models an unsound/imprecise analyzer for
    /// the prediction ablation).
    pub prediction_miss_rate: f64,
    /// Give up restarting a deadlock-victim family after this many
    /// attempts.
    pub max_restarts: u32,
    /// Deterministic fault injection (lossy links, node crashes, lock
    /// timeouts). Disabled by default; see [`FaultConfig`].
    pub faults: FaultConfig,
    /// Adaptive access prediction with misprediction feedback. Disabled
    /// by default; see [`AdaptiveConfig`].
    pub adaptive: AdaptiveConfig,
    /// Seed for the engine's internal randomness (backoff jitter,
    /// prediction-miss draws). Workload generation has its own seed.
    pub seed: u64,
    /// Sim-time interval between state samples
    /// ([`ObsEventKind::StateSample`](lotec_obs::ObsEventKind)): gauge
    /// snapshots of queue depth, lock-table occupancy, in-flight work and
    /// per-node cache bytes. Samples are emitted *inline* by the run loop
    /// at sample-period boundaries — never as scheduled events — so
    /// enabling them cannot perturb the simulation. `ZERO` (the default)
    /// disables sampling; it is also skipped when the probe sink is a
    /// no-op.
    pub state_sample_interval: SimDuration,
    /// Oracle mode for the incrementally maintained waits-for graph:
    /// after every lock-table mutation the engine's table compares the
    /// incremental graph against a from-scratch rebuild, and every
    /// deadlock-detector call cross-checks its verdict, found cycle, and
    /// victim against the reference implementation
    /// ([`lotec_txn::deadlock::reference`]). Purely diagnostic — any
    /// divergence panics, and with no divergence the simulation output
    /// is identical. Off by default (each check is O(whole table)); the
    /// differential oracle suite turns it on.
    pub lock_graph_validation: bool,
    /// Flight-recorder ring sizing; see [`FlightRecorderConfig`]. Only
    /// consulted when the run actually attaches a recorder sink.
    pub flight_recorder: FlightRecorderConfig,
    /// Retain the per-family phase-time rows
    /// ([`RunStats::phases`](crate::metrics::PhaseBreakdown)`::per_family`)
    /// at end of run. On (the default) each family contributes one
    /// `FamilyPhases` row — O(families) memory that the forensics and
    /// observability reports consume. Production-scale scenario sweeps
    /// turn it off to stay memory-flat; the aggregate phase totals and
    /// histograms are unaffected either way, and the flag is consulted
    /// only in end-of-run bookkeeping, so it cannot perturb simulated
    /// behaviour.
    pub per_family_phases: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            num_nodes: 8,
            page_size: 4096,
            network: NetworkConfig::default_cluster(),
            sizes: MessageSizes::default(),
            costs: CostModel::default(),
            protocol: ProtocolKind::Lotec,
            per_class_protocol: std::collections::BTreeMap::new(),
            recovery: RecoveryKind::default(),
            gdo_placement: GdoPlacement::default(),
            gdo_replication: 1,
            dsd_transfers: false,
            multicast: false,
            lock_prefetch: false,
            prediction_miss_rate: 0.0,
            max_restarts: 25,
            faults: FaultConfig::default(),
            adaptive: AdaptiveConfig::default(),
            seed: 0,
            state_sample_interval: SimDuration::ZERO,
            lock_graph_validation: false,
            flight_recorder: FlightRecorderConfig::default(),
            per_family_phases: true,
        }
    }
}

impl SystemConfig {
    /// Convenience: the same config with a different protocol.
    #[must_use]
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Convenience: the same config with a different network.
    #[must_use]
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Convenience: the same config with a fault-injection setup.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Convenience: the same config with an adaptive-prediction setup.
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Convenience: the same config with a flight-recorder ring of
    /// `slots` records.
    #[must_use]
    pub fn with_flight_recorder(mut self, slots: u32) -> Self {
        self.flight_recorder = FlightRecorderConfig { slots };
        self
    }

    /// Convenience: override the protocol for one class.
    #[must_use]
    pub fn with_class_protocol(
        mut self,
        class: lotec_object::ClassId,
        protocol: ProtocolKind,
    ) -> Self {
        self.per_class_protocol.insert(class.index(), protocol);
        self
    }

    /// The protocol governing objects of `class`: the per-class override
    /// if present, the run-wide default otherwise.
    pub fn protocol_for(&self, class: lotec_object::ClassId) -> ProtocolKind {
        self.per_class_protocol
            .get(&class.index())
            .copied()
            .unwrap_or(self.protocol)
    }

    /// True when any class runs a different protocol from the default.
    pub fn is_mixed_protocol(&self) -> bool {
        self.per_class_protocol
            .values()
            .any(|&p| p != self.protocol)
    }

    /// The node hosting `object`'s GDO entry under the configured
    /// placement.
    pub fn gdo_home(&self, object: lotec_mem::ObjectId) -> lotec_sim::NodeId {
        match self.gdo_placement {
            GdoPlacement::Partitioned => lotec_txn::gdo_home(object, self.num_nodes),
            GdoPlacement::Central(node) => node,
        }
    }

    /// The backup replicas of `object`'s GDO partition: the
    /// `gdo_replication - 1` nodes following the home in ring order.
    pub fn gdo_replicas(&self, object: lotec_mem::ObjectId) -> Vec<lotec_sim::NodeId> {
        let home = self.gdo_home(object).index();
        (1..self.gdo_replication)
            .map(|i| lotec_sim::NodeId::new((home + i) % self.num_nodes))
            .collect()
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero, `page_size < 8`, or
    /// `prediction_miss_rate` is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.num_nodes > 0, "need at least one node");
        if let GdoPlacement::Central(node) = self.gdo_placement {
            assert!(
                node.index() < self.num_nodes,
                "central GDO node out of range"
            );
        }
        assert!(
            self.gdo_replication >= 1 && self.gdo_replication <= self.num_nodes,
            "gdo_replication must be in 1..=num_nodes"
        );
        assert!(self.page_size >= 8, "page size must be at least 8 bytes");
        assert!(
            (0.0..=1.0).contains(&self.prediction_miss_rate),
            "prediction_miss_rate must be a probability"
        );
        assert!(
            !self.adaptive.enabled || self.adaptive.window > 0,
            "adaptive confidence window must be positive"
        );
        assert!(
            self.flight_recorder.slots >= 1,
            "flight recorder needs at least one slot"
        );
        self.faults.validate(self.num_nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SystemConfig::default().validate();
    }

    #[test]
    fn builders_override() {
        let cfg = SystemConfig::default().with_protocol(ProtocolKind::Cotec);
        assert_eq!(cfg.protocol, ProtocolKind::Cotec);
        let net = NetworkConfig::new(
            lotec_net::Bandwidth::gigabit(),
            lotec_net::SoftwareCost::NANOS_500,
        );
        let cfg = cfg.with_network(net);
        assert_eq!(cfg.network, net);
    }

    #[test]
    fn fault_config_defaults_to_disabled() {
        let cfg = SystemConfig::default();
        assert!(!cfg.faults.enabled());
        let cfg = cfg.with_faults(FaultConfig {
            lock_timeout: SimDuration::from_millis(5),
            ..FaultConfig::default()
        });
        assert!(cfg.faults.enabled());
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn fault_plan_checked_against_cluster_size() {
        let cfg = SystemConfig {
            faults: FaultConfig {
                plan: lotec_sim::FaultPlan {
                    crashes: vec![lotec_sim::CrashWindow {
                        node: lotec_sim::NodeId::new(99),
                        at: lotec_sim::SimTime::ZERO,
                        until: lotec_sim::SimTime::from_micros(1),
                    }],
                    ..lotec_sim::FaultPlan::default()
                },
                ..FaultConfig::default()
            },
            ..SystemConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn adaptive_defaults_to_disabled() {
        let cfg = SystemConfig::default();
        assert!(!cfg.adaptive.enabled);
        let cfg = cfg.with_adaptive(AdaptiveConfig::on());
        assert!(cfg.adaptive.enabled);
        assert_eq!(cfg.adaptive.window, 4);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "confidence window")]
    fn zero_adaptive_window_rejected() {
        let cfg = SystemConfig {
            adaptive: AdaptiveConfig {
                enabled: true,
                window: 0,
            },
            ..SystemConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn flight_recorder_defaults_and_builder() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.flight_recorder.slots, 4096);
        let cfg = cfg.with_flight_recorder(16);
        assert_eq!(cfg.flight_recorder.slots, 16);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_recorder_slots_rejected() {
        let cfg = SystemConfig::default().with_flight_recorder(0);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_miss_rate_rejected() {
        let cfg = SystemConfig {
            prediction_miss_rate: 1.5,
            ..SystemConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let cfg = SystemConfig {
            num_nodes: 0,
            ..SystemConfig::default()
        };
        cfg.validate();
    }
}
