//! Trace replay: count the traffic each protocol would send for one
//! identical lock schedule.
//!
//! Replaying decouples *what the protocols cost* from *how the run
//! unfolded*: the lock schedule (grants, commits, aborts) comes from a
//! single engine run, and each protocol's placement model is advanced over
//! that schedule, charging exactly the messages that protocol would emit.
//! Because the schedule is shared, byte/message differences between
//! protocols are pure protocol effects — the comparison the paper's
//! figures make.
//!
//! Message charging follows the engine's accounting rules:
//!
//! * a *global* grant costs a lock-request and a lock-grant (skipped when
//!   the requester is the GDO partition's home node);
//! * each transfer source costs a page-request + page-transfer pair;
//! * LOTEC demand fetches cost a single-page request/transfer pair each;
//! * a root commit costs one lock-release per released object whose GDO
//!   partition is remote (dirty info piggybacked — Alg. 4.4);
//! * RC commits additionally cost one update-push per other caching site.

use lotec_mem::{ObjectId, PageIndex};
use lotec_net::{Message, MessageKind, TrafficLedger};
use lotec_object::{ObjectRegistry, PageSet};
use lotec_sim::{NodeId, SimRng};

use crate::analysis::adjacent_run_count;
use crate::config::SystemConfig;
use crate::granularity::transfer_message_bytes;
use crate::metrics::ProtocolTraffic;
use crate::placement::PlacementModel;
use crate::protocol::ProtocolKind;
use crate::trace::{ScheduleTrace, TraceEvent};

/// Replays `trace` under `kind` (uniformly, for every object), returning
/// the traffic that protocol would generate.
pub fn replay_trace(
    kind: ProtocolKind,
    trace: &ScheduleTrace,
    registry: &ObjectRegistry,
    config: &SystemConfig,
) -> ProtocolTraffic {
    let model = PlacementModel::new(kind, registry);
    replay_with_model(model, trace, registry, config)
}

/// Replays `trace` under `config`'s own protocol assignment — the default
/// protocol plus any per-class overrides. This is the replay counterpart
/// of a mixed-protocol engine run.
pub fn replay_run(
    trace: &ScheduleTrace,
    registry: &ObjectRegistry,
    config: &SystemConfig,
) -> ProtocolTraffic {
    let model = PlacementModel::with_assignment(config.protocol, registry, |class| {
        config.protocol_for(class)
    });
    replay_with_model(model, trace, registry, config)
}

fn replay_with_model(
    mut model: PlacementModel,
    trace: &ScheduleTrace,
    registry: &ObjectRegistry,
    config: &SystemConfig,
) -> ProtocolTraffic {
    config.validate();
    let mut ledger = TrafficLedger::new();
    // Independent RNG stream for the prediction-miss ablation; protocol
    // comparisons at miss rate 0 are fully deterministic.
    let mut rng = SimRng::seed_from_u64(config.seed ^ 0x5EED_0F0F_4E97_1A1Du64);

    for event in trace.events() {
        match event {
            TraceEvent::Grant {
                node,
                object,
                global,
                holders,
                predicted,
                actual_reads,
                actual_writes,
                ..
            } => {
                let object = *object;
                let node = *node;
                let home = config.gdo_home(object);
                if *global {
                    charge_gdo_replication(
                        &mut ledger,
                        config,
                        object,
                        config.sizes.lock_request(),
                    );
                }
                if *global && home != node {
                    ledger.record(&Message::new(
                        MessageKind::LockRequest,
                        node,
                        home,
                        object,
                        config.sizes.lock_request(),
                    ));
                    ledger.record(&Message::new(
                        MessageKind::LockGrant,
                        home,
                        node,
                        object,
                        config
                            .sizes
                            .lock_grant(*holders, registry.num_pages(object)),
                    ));
                }
                // Prefetch set: LOTEC uses the prediction (optionally
                // degraded by the miss-rate ablation); others move by
                // their own rules and receive the full page set.
                let kind = model.kind_of(object);
                let prefetch: PageSet = if kind.uses_prediction() {
                    if config.prediction_miss_rate > 0.0 {
                        predicted
                            .iter()
                            .filter(|_| !rng.chance(config.prediction_miss_rate))
                            .collect()
                    } else {
                        predicted.clone()
                    }
                } else {
                    (0..registry.num_pages(object))
                        .map(PageIndex::new)
                        .collect()
                };
                let plan = model.on_grant(node, object, &prefetch);
                for (source, pages) in plan.sources() {
                    charge_fetch(
                        &mut ledger,
                        config,
                        registry,
                        node,
                        source,
                        object,
                        pages,
                        false,
                    );
                }
                // Demand fetches: pages actually touched but still stale
                // locally (possible only when prediction was degraded or,
                // in principle, unsound).
                if kind.uses_prediction() {
                    let touched = actual_reads.union(actual_writes);
                    if config.adaptive.enabled {
                        // Mirror the engine's batched repair: one
                        // request/transfer pair per source covering every
                        // mispredicted page from that source.
                        let mut by_source: Vec<(NodeId, Vec<PageIndex>)> = Vec::new();
                        for page in touched.iter() {
                            if let Some(source) = model.demand_fetch(node, object, page) {
                                match by_source.iter_mut().find(|(s, _)| *s == source) {
                                    Some((_, pages)) => pages.push(page),
                                    None => by_source.push((source, vec![page])),
                                }
                            }
                        }
                        for (source, pages) in by_source {
                            charge_fetch(
                                &mut ledger,
                                config,
                                registry,
                                node,
                                source,
                                object,
                                &pages,
                                true,
                            );
                        }
                    } else {
                        for page in touched.iter() {
                            if let Some(source) = model.demand_fetch(node, object, page) {
                                charge_fetch(
                                    &mut ledger,
                                    config,
                                    registry,
                                    node,
                                    source,
                                    object,
                                    &[page],
                                    true,
                                );
                            }
                        }
                    }
                }
            }
            TraceEvent::RootCommit {
                node,
                dirty,
                released,
                ..
            } => {
                let node = *node;
                for object in released {
                    let object = *object;
                    let home = config.gdo_home(object);
                    let dirty_pages: &[PageIndex] = dirty
                        .iter()
                        .find(|(o, _)| *o == object)
                        .map(|(_, p)| p.as_slice())
                        .unwrap_or(&[]);
                    if home != node {
                        ledger.record(&Message::new(
                            MessageKind::LockRelease,
                            node,
                            home,
                            object,
                            config.sizes.lock_release(dirty_pages.len()),
                        ));
                    }
                    charge_gdo_replication(
                        &mut ledger,
                        config,
                        object,
                        config.sizes.lock_release(dirty_pages.len()),
                    );
                    let push = model.on_commit(node, object, dirty_pages);
                    let destinations = if config.multicast {
                        // One multicast transmission covers every site.
                        push.destinations.into_iter().take(1).collect::<Vec<_>>()
                    } else {
                        push.destinations
                    };
                    for (site, pages) in destinations {
                        debug_assert_ne!(site, node);
                        ledger.record(&Message::new(
                            MessageKind::UpdatePush,
                            node,
                            site,
                            object,
                            transfer_message_bytes(config, registry, object, &pages),
                        ));
                    }
                }
            }
            TraceEvent::SubAbortRelease { node, released, .. } => {
                charge_abort_releases(&mut ledger, config, *node, released);
            }
            TraceEvent::FamilyAbort {
                node,
                released,
                cancelled_request,
                ..
            } => {
                charge_abort_releases(&mut ledger, config, *node, released);
                // The victim's still-queued lock request was paid when it
                // queued but will never be granted.
                if let Some(object) = cancelled_request {
                    let home = config.gdo_home(*object);
                    if home != *node {
                        ledger.record(&Message::new(
                            MessageKind::LockRequest,
                            *node,
                            home,
                            *object,
                            config.sizes.lock_request(),
                        ));
                    }
                }
            }
        }
    }
    ProtocolTraffic::new(ledger)
}

/// Abort releases carry no dirty info (Alg. 4.3); one release message per
/// remotely homed object.
fn charge_abort_releases(
    ledger: &mut TrafficLedger,
    config: &SystemConfig,
    node: NodeId,
    released: &[ObjectId],
) {
    for object in released {
        let home = config.gdo_home(*object);
        if home != node {
            ledger.record(&Message::new(
                MessageKind::LockRelease,
                node,
                home,
                *object,
                config.sizes.lock_release(0),
            ));
        }
        charge_gdo_replication(ledger, config, *object, config.sizes.lock_release(0));
    }
}

/// Directory mutations propagate to the partition's backup replicas.
fn charge_gdo_replication(
    ledger: &mut TrafficLedger,
    config: &SystemConfig,
    object: ObjectId,
    bytes: u64,
) {
    if config.gdo_replication <= 1 {
        return;
    }
    let home = config.gdo_home(object);
    for replica in config.gdo_replicas(object) {
        ledger.record(&Message::new(
            MessageKind::GdoReplicate,
            home,
            replica,
            object,
            bytes,
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn charge_fetch(
    ledger: &mut TrafficLedger,
    config: &SystemConfig,
    registry: &ObjectRegistry,
    node: NodeId,
    source: NodeId,
    object: ObjectId,
    pages: &[PageIndex],
    demand: bool,
) {
    debug_assert_ne!(node, source, "self-fetch must not be charged");
    let (req_kind, xfer_kind) = if demand {
        (
            MessageKind::DemandPageRequest,
            MessageKind::DemandPageTransfer,
        )
    } else {
        (MessageKind::PageRequest, MessageKind::PageTransfer)
    };
    // Mirror the engine's request sizing: adaptive runs coalesce adjacent
    // pages into ranged request entries; transfers keep page framing.
    let req = if config.adaptive.enabled {
        config
            .sizes
            .coalesced_page_request(pages.len(), adjacent_run_count(pages))
    } else {
        config.sizes.page_request(pages.len())
    };
    ledger.record(&Message::new(req_kind, node, source, object, req));
    ledger.record(&Message::new(
        xfer_kind,
        source,
        node,
        object,
        transfer_message_bytes(config, registry, object, pages),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare_protocols;
    use crate::spec::demo_workload;

    #[test]
    fn replay_is_deterministic() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 3);
        let cmp1 = compare_protocols(&config, &registry, &families).unwrap();
        let cmp2 = compare_protocols(&config, &registry, &families).unwrap();
        for kind in ProtocolKind::ALL {
            assert_eq!(cmp1.total(kind), cmp2.total(kind));
        }
    }
}
