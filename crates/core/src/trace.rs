//! Schedule traces: the protocol-independent record of one engine run.
//!
//! Nested O2PL is shared by all four protocols, so for a fixed workload the
//! *lock schedule* — who acquires which object when, in what mode, and when
//! each family commits — is protocol-independent. The engine records that
//! schedule as a [`ScheduleTrace`]; the replay path then feeds the same
//! trace through each protocol's placement model to count the bytes and
//! messages each protocol would send. This mirrors the paper's methodology
//! of comparing COTEC/OTEC/LOTEC on identical randomized transactions.

use lotec_mem::{ObjectId, PageIndex};
use lotec_object::PageSet;
use lotec_sim::{NodeId, SimTime};
use lotec_txn::LockMode;

/// One protocol-relevant event of an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transaction was granted `object`'s lock.
    Grant {
        /// Virtual time of the grant.
        at: SimTime,
        /// The family (root transaction id raw value) acquiring.
        family: u64,
        /// The family's site.
        node: NodeId,
        /// The acquired object.
        object: ObjectId,
        /// Requested mode.
        mode: LockMode,
        /// True if the grant required GDO communication (global); false
        /// for grants served from a retaining ancestor locally.
        global: bool,
        /// Holder-list length sent with a global grant (sizes the grant
        /// message).
        holders: usize,
        /// Conservative prediction of the acquiring method (what LOTEC
        /// prefetches).
        predicted: PageSet,
        /// Pages the invocation actually read (current content required).
        actual_reads: PageSet,
        /// Pages the invocation actually wrote.
        actual_writes: PageSet,
    },
    /// A family's root committed.
    RootCommit {
        /// Virtual time of the commit.
        at: SimTime,
        /// The family (root transaction id raw value).
        family: u64,
        /// The family's site.
        node: NodeId,
        /// Per object: the pages the family dirtied (surviving aborts),
        /// i.e. the dirty info piggybacked on the global releases.
        dirty: Vec<(ObjectId, Vec<PageIndex>)>,
        /// Objects the family held/retained at commit (released now);
        /// includes read-only objects with no dirty pages.
        released: Vec<ObjectId>,
    },
    /// A sub-transaction aborted and some of its locks had no retaining
    /// ancestor, so they were released globally (Alg. 4.3's last case:
    /// "Forward request to GlobalLockRelease /* no dirty page info */").
    SubAbortRelease {
        /// Virtual time of the abort.
        at: SimTime,
        /// The family (root transaction id raw value).
        family: u64,
        /// The family's site.
        node: NodeId,
        /// Objects released globally by the abort.
        released: Vec<ObjectId>,
    },
    /// A family aborted entirely (deadlock victim or root fault) and will
    /// restart or give up; its locks were released with no dirty info.
    FamilyAbort {
        /// Virtual time of the abort.
        at: SimTime,
        /// The family (root transaction id raw value).
        family: u64,
        /// The family's site.
        node: NodeId,
        /// Objects released by the abort.
        released: Vec<ObjectId>,
        /// Object on which the family had a lock request queued when it
        /// was aborted (the request message was already paid but no grant
        /// will ever follow).
        cancelled_request: Option<ObjectId>,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Grant { at, .. }
            | TraceEvent::RootCommit { at, .. }
            | TraceEvent::SubAbortRelease { at, .. }
            | TraceEvent::FamilyAbort { at, .. } => *at,
        }
    }
}

/// The full schedule of one engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    events: Vec<TraceEvent>,
}

impl ScheduleTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if events go backwards in time.
    pub fn push(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.at() <= event.at()),
            "trace events must be time-ordered"
        );
        self.events.push(event);
    }

    /// The recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of grants recorded.
    pub fn num_grants(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Grant { .. }))
            .count()
    }

    /// Number of root commits recorded.
    pub fn num_commits(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RootCommit { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(at_ns: u64, family: u64) -> TraceEvent {
        TraceEvent::Grant {
            at: SimTime::from_nanos(at_ns),
            family,
            node: NodeId::new(0),
            object: ObjectId::new(0),
            mode: LockMode::Write,
            global: true,
            holders: 1,
            predicted: PageSet::new(),
            actual_reads: PageSet::new(),
            actual_writes: PageSet::new(),
        }
    }

    #[test]
    fn trace_accumulates_in_order() {
        let mut t = ScheduleTrace::new();
        assert!(t.is_empty());
        t.push(grant(10, 1));
        t.push(TraceEvent::RootCommit {
            at: SimTime::from_nanos(20),
            family: 1,
            node: NodeId::new(0),
            dirty: vec![],
            released: vec![ObjectId::new(0)],
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_grants(), 1);
        assert_eq!(t.num_commits(), 1);
        assert_eq!(t.events()[0].at(), SimTime::from_nanos(10));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_events_rejected() {
        let mut t = ScheduleTrace::new();
        t.push(grant(10, 1));
        t.push(grant(5, 2));
    }
}
