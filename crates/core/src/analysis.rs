//! Post-run trace analysis: contention profiles and object heat.
//!
//! The paper selects figure objects "to reflect a variety of reference
//! patterns that arose in the randomized nested transactions" (§5). This
//! module recovers those reference patterns from a [`ScheduleTrace`]:
//! which objects are hot, how reads and writes mix per object, and how
//! long each family's lock tenure lasts — the inputs an operator would use
//! to choose per-class protocols or aggregation boundaries.

use std::collections::BTreeMap;

use lotec_mem::{ObjectId, PageIndex};
use lotec_obs::PredictionTotals;
use lotec_sim::{SimDuration, SimTime};
use lotec_txn::LockMode;

use crate::trace::{ScheduleTrace, TraceEvent};

/// Per-object reference profile recovered from a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectProfile {
    /// Lock grants in write mode.
    pub write_grants: u64,
    /// Lock grants in read mode.
    pub read_grants: u64,
    /// Grants served locally (retained by an ancestor).
    pub local_grants: u64,
    /// Number of distinct families that acquired the object.
    pub distinct_families: u64,
    /// Number of distinct nodes the object was acquired from.
    pub distinct_nodes: u64,
}

impl ObjectProfile {
    /// Total grants.
    pub fn grants(&self) -> u64 {
        self.write_grants + self.read_grants
    }

    /// Fraction of grants that were writes (`None` when never granted).
    pub fn write_fraction(&self) -> Option<f64> {
        let total = self.grants();
        (total > 0).then(|| self.write_grants as f64 / total as f64)
    }
}

/// Whole-trace contention analysis.
///
/// ```
/// use lotec_core::analysis::TraceAnalysis;
/// use lotec_core::engine::run_engine;
/// use lotec_core::spec::demo_workload;
/// use lotec_core::SystemConfig;
///
/// let config = SystemConfig::default();
/// let (registry, families) = demo_workload(&config, 7);
/// let report = run_engine(&config, &registry, &families)?;
/// let analysis = TraceAnalysis::of(&report.trace);
/// let (hottest, grants) = analysis.hottest()[0];
/// assert!(grants >= 1);
/// assert!(analysis.object(hottest).distinct_families >= 1);
/// # Ok::<(), lotec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    objects: BTreeMap<ObjectId, ObjectProfile>,
    /// Family root id -> (first grant, commit time) for committed families.
    family_span: BTreeMap<u64, (SimTime, SimTime)>,
    commits: u64,
    aborts: u64,
}

impl TraceAnalysis {
    /// Analyzes a trace.
    pub fn of(trace: &ScheduleTrace) -> Self {
        let mut objects: BTreeMap<ObjectId, ObjectProfile> = BTreeMap::new();
        let mut fams: BTreeMap<ObjectId, std::collections::BTreeSet<u64>> = BTreeMap::new();
        let mut nodes: BTreeMap<ObjectId, std::collections::BTreeSet<u32>> = BTreeMap::new();
        let mut first_grant: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut family_span = BTreeMap::new();
        let mut commits = 0;
        let mut aborts = 0;
        for event in trace.events() {
            match event {
                TraceEvent::Grant {
                    at,
                    family,
                    node,
                    object,
                    mode,
                    global,
                    ..
                } => {
                    let p = objects.entry(*object).or_default();
                    match mode {
                        LockMode::Write => p.write_grants += 1,
                        LockMode::Read => p.read_grants += 1,
                    }
                    if !global {
                        p.local_grants += 1;
                    }
                    fams.entry(*object).or_default().insert(*family);
                    nodes.entry(*object).or_default().insert(node.index());
                    first_grant.entry(*family).or_insert(*at);
                }
                TraceEvent::RootCommit { at, family, .. } => {
                    commits += 1;
                    if let Some(&start) = first_grant.get(family) {
                        family_span.insert(*family, (start, *at));
                    }
                }
                TraceEvent::FamilyAbort { .. } => aborts += 1,
                TraceEvent::SubAbortRelease { .. } => {}
            }
        }
        for (object, profile) in objects.iter_mut() {
            profile.distinct_families = fams.get(object).map_or(0, |s| s.len() as u64);
            profile.distinct_nodes = nodes.get(object).map_or(0, |s| s.len() as u64);
        }
        TraceAnalysis {
            objects,
            family_span,
            commits,
            aborts,
        }
    }

    /// Profile of one object (default/empty if never referenced).
    pub fn object(&self, object: ObjectId) -> ObjectProfile {
        self.objects.get(&object).cloned().unwrap_or_default()
    }

    /// Objects sorted by total grants, hottest first.
    pub fn hottest(&self) -> Vec<(ObjectId, u64)> {
        let mut v: Vec<(ObjectId, u64)> =
            self.objects.iter().map(|(&o, p)| (o, p.grants())).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Committed root commits observed.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Family-level aborts observed.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Mean lock-tenure span (first grant → commit) over committed
    /// families.
    pub fn mean_family_span(&self) -> Option<SimDuration> {
        if self.family_span.is_empty() {
            return None;
        }
        let total: SimDuration = self
            .family_span
            .values()
            .map(|&(start, end)| end.duration_since(start))
            .sum();
        Some(total / self.family_span.len() as u64)
    }
}

/// Prediction quality of the compile-time page-access analysis, recovered
/// from a trace's `Grant` events: how well `predicted` anticipated
/// `actual_reads ∪ actual_writes`. This is the quantity LOTEC bets on —
/// low recall shows up as demand fetches, low precision as pages shipped
/// for nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictionReport {
    /// Whole-trace totals.
    pub totals: PredictionTotals,
    /// Per-object totals (objects with at least one grant).
    pub per_object: BTreeMap<ObjectId, PredictionTotals>,
}

/// Number of maximal runs of adjacent page indices in a sorted page list.
/// A coalesced page request encodes one ranged entry per run, so this is
/// the quantity that decides whether the ranged encoding beats the plain
/// one (see `MessageSizes::coalesced_page_request`). Both the engine and
/// the traffic replay charge request sizes through this helper so their
/// ledgers stay byte-identical.
pub fn adjacent_run_count(pages: &[PageIndex]) -> usize {
    debug_assert!(pages.windows(2).all(|w| w[0].get() < w[1].get()));
    pages
        .iter()
        .enumerate()
        .filter(|&(i, p)| i == 0 || pages[i - 1].get() + 1 != p.get())
        .count()
}

/// Builds a [`PredictionReport`] from a schedule trace.
pub fn prediction_report(trace: &ScheduleTrace) -> PredictionReport {
    let mut report = PredictionReport::default();
    for event in trace.events() {
        let TraceEvent::Grant {
            object,
            predicted,
            actual_reads,
            actual_writes,
            ..
        } = event
        else {
            continue;
        };
        let actual = actual_reads.union(actual_writes);
        let tp = predicted.iter().filter(|&p| actual.contains(p)).count() as u64;
        for totals in [
            &mut report.totals,
            report.per_object.entry(*object).or_default(),
        ] {
            totals.grants += 1;
            totals.predicted += predicted.len() as u64;
            totals.actual += actual.len() as u64;
            totals.true_positives += tp;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_engine;
    use crate::spec::demo_workload;
    use crate::SystemConfig;

    fn analyzed() -> TraceAnalysis {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 55);
        let report = run_engine(&config, &registry, &families).unwrap();
        TraceAnalysis::of(&report.trace)
    }

    #[test]
    fn commits_match_workload() {
        let a = analyzed();
        assert_eq!(a.commits(), 8);
        assert_eq!(a.aborts(), 0);
    }

    #[test]
    fn hottest_is_sorted_and_consistent() {
        let a = analyzed();
        let hot = a.hottest();
        assert!(!hot.is_empty());
        for w in hot.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let (top, grants) = hot[0];
        assert_eq!(a.object(top).grants(), grants);
        assert!(grants > 0);
    }

    #[test]
    fn profiles_track_modes_and_spread() {
        let a = analyzed();
        let total: u64 = a.hottest().iter().map(|(_, g)| g).sum();
        assert!(total >= 8, "at least one grant per family");
        for (object, _) in a.hottest() {
            let p = a.object(object);
            assert!(p.distinct_families >= 1);
            assert!(p.distinct_nodes >= 1);
            if let Some(wf) = p.write_fraction() {
                assert!((0.0..=1.0).contains(&wf));
            }
        }
    }

    #[test]
    fn family_span_is_positive() {
        let a = analyzed();
        let span = a.mean_family_span().expect("families committed");
        assert!(span > SimDuration::ZERO);
    }

    #[test]
    fn prediction_report_is_consistent() {
        let config = SystemConfig::default();
        let (registry, families) = demo_workload(&config, 55);
        let report = run_engine(&config, &registry, &families).unwrap();
        let pred = prediction_report(&report.trace);
        assert_eq!(pred.totals.grants, report.trace.num_grants() as u64);
        assert!(pred.totals.true_positives <= pred.totals.predicted);
        assert!(pred.totals.true_positives <= pred.totals.actual);
        // Per-object totals partition the whole-trace totals.
        let sum: u64 = pred.per_object.values().map(|t| t.grants).sum();
        assert_eq!(sum, pred.totals.grants);
        if let (Some(p), Some(r)) = (pred.totals.precision(), pred.totals.recall()) {
            assert!((0.0..=1.0).contains(&p));
            assert!((0.0..=1.0).contains(&r));
        }
        // The demo workload's predictions are conservative supersets, so
        // recall must be perfect.
        assert_eq!(pred.totals.recall(), Some(1.0));
    }

    #[test]
    fn adjacent_run_count_splits_on_gaps() {
        let pages = |ids: &[u16]| ids.iter().map(|&i| PageIndex::new(i)).collect::<Vec<_>>();
        assert_eq!(adjacent_run_count(&[]), 0);
        assert_eq!(adjacent_run_count(&pages(&[3])), 1);
        assert_eq!(adjacent_run_count(&pages(&[0, 1, 2, 3])), 1);
        assert_eq!(adjacent_run_count(&pages(&[0, 2, 4])), 3);
        assert_eq!(adjacent_run_count(&pages(&[0, 1, 3, 4, 7])), 3);
    }

    #[test]
    fn unreferenced_object_has_empty_profile() {
        let a = analyzed();
        let p = a.object(ObjectId::new(999));
        assert_eq!(p.grants(), 0);
        assert_eq!(p.write_fraction(), None);
    }
}
