//! Transfer granularity: page-based DSM vs data-based DSD sizing.
//!
//! LOTEC "is described as being a page-based DSM system in this paper,
//! \[but\] only updates to the objects (not the entire pages they are stored
//! on) really need to be transmitted between nodes. In this respect, LOTEC
//! is more like a Distributed Shared Data system" (§4.2). With
//! [`SystemConfig::dsd_transfers`](crate::config::SystemConfig::dsd_transfers)
//! enabled, page transfers carry only each page's *occupied* object bytes;
//! otherwise full pages move. Both the engine and the replay path size
//! every transfer through [`transfer_message_bytes`], so the two can never
//! disagree.

use lotec_mem::{ObjectId, PageIndex};
use lotec_object::ObjectRegistry;

use crate::config::SystemConfig;

/// Bytes of `object`'s data that live on `page` — the final page of an
/// object is usually only partially occupied.
///
/// # Panics
///
/// Panics if `page` is outside the object's layout.
pub fn occupied_bytes(
    registry: &ObjectRegistry,
    page_size: u32,
    object: ObjectId,
    page: PageIndex,
) -> u64 {
    let total = registry.class_of(object).layout().total_bytes();
    let ps = u64::from(page_size);
    let start = u64::from(page.get()) * ps;
    assert!(
        start < total || (start == 0 && total == 0),
        "page {page} outside {object}"
    );
    (total - start).min(ps)
}

/// Wire size of one page-transfer (or update-push) message carrying
/// `pages` of `object`, respecting the configured transfer granularity.
pub fn transfer_message_bytes(
    config: &SystemConfig,
    registry: &ObjectRegistry,
    object: ObjectId,
    pages: &[PageIndex],
) -> u64 {
    if config.dsd_transfers {
        let occupied: Vec<u64> = pages
            .iter()
            .map(|&p| occupied_bytes(registry, config.page_size, object, p))
            .collect();
        config.sizes.data_transfer(&occupied)
    } else {
        config
            .sizes
            .page_transfer(pages.len(), u64::from(config.page_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotec_object::{ClassBuilder, ClassId};
    use lotec_sim::NodeId;

    fn registry() -> ObjectRegistry {
        // 2.5-page object with 100-byte pages: 250 bytes total.
        let class = ClassBuilder::new("Half")
            .attribute("a", 250)
            .method("m", |m| m.path(|p| p.reads(&["a"])))
            .build();
        ObjectRegistry::build(&[class], &[(ClassId::new(0), NodeId::new(0))], 100).unwrap()
    }

    #[test]
    fn occupied_bytes_full_and_partial_pages() {
        let reg = registry();
        let o = ObjectId::new(0);
        assert_eq!(occupied_bytes(&reg, 100, o, PageIndex::new(0)), 100);
        assert_eq!(occupied_bytes(&reg, 100, o, PageIndex::new(1)), 100);
        assert_eq!(
            occupied_bytes(&reg, 100, o, PageIndex::new(2)),
            50,
            "last page half full"
        );
    }

    #[test]
    fn dsd_transfers_are_never_larger_than_page_transfers() {
        let reg = registry();
        let o = ObjectId::new(0);
        let pages: Vec<PageIndex> = (0..3).map(PageIndex::new).collect();
        let page_cfg = SystemConfig {
            page_size: 100,
            ..SystemConfig::default()
        };
        let dsd_cfg = SystemConfig {
            dsd_transfers: true,
            ..page_cfg.clone()
        };
        let full = transfer_message_bytes(&page_cfg, &reg, o, &pages);
        let dsd = transfer_message_bytes(&dsd_cfg, &reg, o, &pages);
        assert!(dsd < full, "dsd {dsd} >= page {full}");
        // Exactly the 50 unoccupied bytes of the last page are saved.
        assert_eq!(full - dsd, 50);
    }

    #[test]
    fn page_mode_matches_messagesizes_directly() {
        let reg = registry();
        let cfg = SystemConfig {
            page_size: 100,
            ..SystemConfig::default()
        };
        let pages = [PageIndex::new(0), PageIndex::new(2)];
        assert_eq!(
            transfer_message_bytes(&cfg, &reg, ObjectId::new(0), &pages),
            cfg.sizes.page_transfer(2, 100)
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_page_panics() {
        occupied_bytes(&registry(), 100, ObjectId::new(0), PageIndex::new(9));
    }
}
