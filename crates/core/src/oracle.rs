//! The serializability oracle.
//!
//! Strict nested O2PL holds every lock until root commit, so any correct
//! distributed execution must be equivalent to the *serial* execution of
//! the committed families in root-commit order (§4.3's correctness
//! argument: a distributed execution is correct iff every transaction
//! always accesses the most up-to-date version of each object as defined
//! by O2PL).
//!
//! The oracle exploits the content chains the engine maintains: every
//! write folds a unique stamp into the target page's 64-bit chain, so two
//! executions applied the same writes in the same order iff their chains
//! are equal. [`verify`] re-executes the committed families' operations
//! serially against a model heap and checks
//!
//! 1. every *read* the engine observed saw exactly the model's value at
//!    that serial point (no stale or torn reads — the consistency protocol
//!    delivered the right bytes), and
//! 2. the final model heap equals the newest page copies in the live run
//!    (no lost updates).

use lotec_mem::{mix, ObjectId, PageAtlas, PageId, PageIndex};

use crate::engine::{FamilyOp, RunReport};
use crate::error::CoreError;

/// Verifies that `report`'s execution is equivalent to the serial
/// execution of its committed families in commit order.
///
/// # Errors
///
/// Returns [`CoreError::OracleViolation`] describing the first divergence.
pub fn verify(report: &RunReport) -> Result<(), CoreError> {
    // Two passes: first size a dense page numbering from the touched
    // pages, then replay against a flat model heap — the replay's inner
    // loop indexes an array instead of walking an ordered map.
    let mut pages_per_object: Vec<u16> = Vec::new();
    {
        let mut note = |object: ObjectId, page: PageIndex| {
            let o = object.index() as usize;
            if o >= pages_per_object.len() {
                pages_per_object.resize(o + 1, 0);
            }
            pages_per_object[o] = pages_per_object[o].max(page.get() + 1);
        };
        for fam in &report.committed {
            for op in &fam.ops {
                match *op {
                    FamilyOp::Read { object, page, .. } | FamilyOp::Write { object, page, .. } => {
                        note(object, page);
                    }
                }
            }
        }
        for &(object, page) in report.final_chains.keys() {
            note(object, page);
        }
    }
    let atlas = PageAtlas::new(&pages_per_object);
    let mut model = vec![0u64; atlas.total_pages()];

    for fam in &report.committed {
        for op in &fam.ops {
            match *op {
                FamilyOp::Read {
                    object,
                    page,
                    chain,
                } => {
                    let expected = model[atlas.slot(PageId::new(object, page.get()))];
                    if chain != expected {
                        return Err(CoreError::OracleViolation(format!(
                            "family {} read {}/{} = {chain:#x}, serial order expects {expected:#x}",
                            fam.family, object, page
                        )));
                    }
                }
                FamilyOp::Write {
                    object,
                    page,
                    stamp,
                } => {
                    let entry = &mut model[atlas.slot(PageId::new(object, page.get()))];
                    *entry = mix(*entry, stamp);
                }
            }
        }
    }

    for (&(object, page), &final_chain) in &report.final_chains {
        let expected = model[atlas.slot(PageId::new(object, page.get()))];
        if final_chain != expected {
            return Err(CoreError::OracleViolation(format!(
                "final state of {object}/{page} is {final_chain:#x}, serial replay gives {expected:#x}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CommittedFamily;
    use crate::metrics::{ProtocolTraffic, RunStats};
    use crate::protocol::ProtocolKind;
    use crate::trace::ScheduleTrace;
    use lotec_net::TrafficLedger;

    fn report(committed: Vec<CommittedFamily>, finals: Vec<((u32, u16), u64)>) -> RunReport {
        RunReport {
            protocol: ProtocolKind::Lotec,
            stats: RunStats::default(),
            trace: ScheduleTrace::new(),
            traffic: ProtocolTraffic::new(TrafficLedger::new()),
            committed,
            final_chains: finals
                .into_iter()
                .map(|((o, p), c)| ((ObjectId::new(o), PageIndex::new(p)), c))
                .collect(),
            forensics: Vec::new(),
        }
    }

    fn w(o: u32, p: u16, stamp: u64) -> FamilyOp {
        FamilyOp::Write {
            object: ObjectId::new(o),
            page: PageIndex::new(p),
            stamp,
        }
    }

    fn r(o: u32, p: u16, chain: u64) -> FamilyOp {
        FamilyOp::Read {
            object: ObjectId::new(o),
            page: PageIndex::new(p),
            chain,
        }
    }

    #[test]
    fn empty_run_verifies() {
        verify(&report(vec![], vec![])).unwrap();
    }

    #[test]
    fn consistent_chain_verifies() {
        let c1 = mix(0, 7);
        let c2 = mix(c1, 9);
        let committed = vec![
            CommittedFamily {
                family: 1,
                index: 0,
                ops: vec![r(0, 0, 0), w(0, 0, 7)],
            },
            CommittedFamily {
                family: 2,
                index: 1,
                ops: vec![r(0, 0, c1), w(0, 0, 9)],
            },
        ];
        verify(&report(committed, vec![((0, 0), c2)])).unwrap();
    }

    #[test]
    fn stale_read_detected() {
        let committed = vec![
            CommittedFamily {
                family: 1,
                index: 0,
                ops: vec![w(0, 0, 7)],
            },
            // Family 2 read chain 0 — it missed family 1's committed write.
            CommittedFamily {
                family: 2,
                index: 1,
                ops: vec![r(0, 0, 0)],
            },
        ];
        let err = verify(&report(committed, vec![])).unwrap_err();
        assert!(err.to_string().contains("serial order expects"));
    }

    #[test]
    fn lost_update_detected() {
        let committed = vec![CommittedFamily {
            family: 1,
            index: 0,
            ops: vec![w(0, 0, 7)],
        }];
        // Final state still 0: the write vanished.
        let err = verify(&report(committed, vec![((0, 0), 0)])).unwrap_err();
        assert!(err.to_string().contains("final state"));
    }

    #[test]
    fn read_own_write_within_family_verifies() {
        let c1 = mix(0, 5);
        let committed = vec![CommittedFamily {
            family: 1,
            index: 0,
            ops: vec![w(0, 0, 5), r(0, 0, c1)],
        }];
        verify(&report(committed, vec![((0, 0), c1)])).unwrap();
    }

    #[test]
    fn wrong_order_detected_via_chain() {
        // Chains are order-sensitive: applying stamps 5 then 9 differs from
        // 9 then 5, so a run that serialized the other way is caught.
        let c_right = mix(mix(0, 5), 9);
        let c_wrong = mix(mix(0, 9), 5);
        assert_ne!(c_right, c_wrong);
        let committed = vec![
            CommittedFamily {
                family: 1,
                index: 0,
                ops: vec![w(0, 0, 5)],
            },
            CommittedFamily {
                family: 2,
                index: 1,
                ops: vec![w(0, 0, 9)],
            },
        ];
        let err = verify(&report(committed, vec![((0, 0), c_wrong)])).unwrap_err();
        assert!(err.to_string().contains("final state"));
    }
}
