//! The discrete-event execution engine.
//!
//! The engine runs a workload of nested-object transaction families on a
//! simulated cluster under one consistency protocol:
//!
//! * families execute sequentially at their site, walking their invocation
//!   tree depth-first (each invocation = one [sub-]transaction, §3.3);
//! * lock operations follow nested O2PL against the hash-partitioned GDO,
//!   with local operations free and global ones paying request/grant
//!   messages (Algorithms 4.1–4.4);
//! * granted acquisitions gather pages per the protocol's transfer policy
//!   (Algorithm 4.5), paying one request/transfer pair per source site;
//! * page *content* is modelled for real: every page carries a content
//!   chain, writes fold stamps into it, UNDO restores pre-images, and the
//!   [`oracle`](crate::oracle) later re-executes everything serially to
//!   prove the run serializable;
//! * cross-family deadlocks are detected at queue time and broken by
//!   aborting and restarting the youngest family;
//! * sub-transaction faults (workload-injected) roll back and the parent
//!   continues — the closed-nesting recovery story of §3.1.
//!
//! The engine records every grant/commit/abort into a
//! [`ScheduleTrace`] for the replay-based
//! protocol comparison.

mod family;

pub use family::FamilyOp;

use std::collections::BTreeMap;

use lotec_mem::{ObjectId, PageData, PageId, PageIndex, Recovery, ShadowPages, UndoLog};
use lotec_mem::{PageStore, Version};
use lotec_net::{plan_delivery, Message, MessageKind, TrafficLedger};
use lotec_object::{AdaptivePredictor, ObjectRegistry, PageSet};
use lotec_obs::{
    Anomaly, EventSink, FamilySnapshot, FlightRecorder, ForensicsDump, HostProfiler, HostRegion,
    NoopHostProfiler, NoopSink, ObsEvent, ObsEventKind, ObsPhase, OccupancySnapshot, SpanOutcome,
};
use lotec_sim::{NodeId, SimDuration, SimRng, SimTime, Simulator};
use lotec_txn::{Acquire, Grant, LockMode, LockTable, TxnId, TxnTree};

use crate::analysis::adjacent_run_count;
use crate::config::{RecoveryKind, SystemConfig};
use crate::error::CoreError;
use crate::granularity::transfer_message_bytes;
use crate::metrics::{ProtocolTraffic, RunStats};
use crate::protocol::{plan_transfer, PlacementView, ProtocolKind};
use crate::spec::{validate_family, FamilySpec};
use crate::trace::{ScheduleTrace, TraceEvent};

use family::{spec_at, FamilyRuntime, Frame, Phase};

/// The operations of one *committed* family, in commit order — the input
/// to the serializability oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedFamily {
    /// Root transaction id (raw).
    pub family: u64,
    /// Workload index of the family.
    pub index: usize,
    /// Data operations in execution order.
    pub ops: Vec<FamilyOp>,
}

/// Everything one engine run produces.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The protocol the engine ran.
    pub protocol: ProtocolKind,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// The recorded lock schedule.
    pub trace: ScheduleTrace,
    /// Consistency traffic charged during the run.
    pub traffic: ProtocolTraffic,
    /// Committed families in commit order (oracle input).
    pub committed: Vec<CommittedFamily>,
    /// Final content chain of every page, read from the page's owner node
    /// (oracle cross-check).
    pub final_chains: BTreeMap<(ObjectId, PageIndex), u64>,
    /// Forensics dumps captured at anomalies (deadlock-victim selection,
    /// lock timeouts, crash repair). Empty unless the run's sink carries a
    /// [`FlightRecorder`] — without a black box there is nothing to dump —
    /// and capped at [`MAX_FORENSICS_DUMPS`] per run.
    pub forensics: Vec<ForensicsDump>,
}

/// Per-run cap on captured forensics dumps: a pathological run (hundreds
/// of deadlocks) should not balloon its report. Anomalies past the cap
/// still count in [`RunStats`]; they just go uncaptured.
pub const MAX_FORENSICS_DUMPS: usize = 8;

/// Engine events. Family-bound timed events carry the attempt generation
/// they were scheduled under; a crash-abort bumps the family's generation
/// so deliveries belonging to the killed attempt are recognized as stale
/// and dropped.
///
/// Every variant is two `u32` indices at most, so the whole enum is 12
/// bytes (down from 24 with `usize` payloads): the event queue's slab
/// slots, dispatch's match, and every copy along the scheduling path move
/// a register-and-a-half, not three words. Family and crash-window counts
/// are bounded far below `u32::MAX` by the workload/fault-plan formats.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Family arrival.
    Start(u32),
    /// A lock grant reached the family's node.
    GrantArrived(u32, u32),
    /// All page-transfer batches of the current acquisition arrived.
    FetchArrived(u32, u32),
    /// The compute delay of the current invocation elapsed.
    ComputeDone(u32, u32),
    /// Continue the parent after a child pre-committed or aborted.
    Continue(u32, u32),
    /// Restart an aborted family after its backoff.
    Restart(u32, u32),
    /// Fault injection: a scheduled crash window (index into
    /// `faults.plan.crashes`) begins.
    NodeCrash(u32),
    /// Fault injection: a scheduled crash window ends.
    NodeRecover(u32),
    /// Fault injection: a queued lock request's timeout elapsed.
    LockTimeout(u32, u32),
}

/// Dispatch copies events by value; pin the hot enum's size so a future
/// fat variant can't silently widen every queue slot and dispatch copy.
const _: () = assert!(std::mem::size_of::<Event>() <= 12);

/// The discrete-event engine. See the [module docs](self).
///
/// Generic over an [`EventSink`] probe; the default [`NoopSink`] reports
/// `enabled() == false` from a constant, so every probe site (and the
/// event construction behind it) monomorphizes away — observability is
/// free unless a recording sink is supplied via [`Engine::with_probe`].
///
/// Also generic over a [`HostProfiler`] (wall-clock self-profiling of the
/// engine's own hot regions — the *host* plane, as opposed to the sink's
/// *sim-time* plane). The default [`NoopHostProfiler`] likewise
/// monomorphizes to nothing; pass a [`lotec_obs::WallProfiler`] via
/// [`Engine::with_instruments`] to attribute real CPU time to event
/// pop/push, lock operations, the deadlock gate, page transfer/install
/// and the COW write path.
pub struct Engine<'a, S: EventSink = NoopSink, P: HostProfiler = NoopHostProfiler> {
    config: &'a SystemConfig,
    registry: &'a ObjectRegistry,
    workload: &'a [FamilySpec],
    sim: Simulator<Event>,
    tree: TxnTree,
    table: LockTable,
    stores: Vec<PageStore>,
    /// Shared zero-filled payload handed out for never-written pages —
    /// cloning it is a refcount bump, not a fresh allocation.
    zero_page: PageData,
    recovery: Box<dyn Recovery>,
    families: Vec<FamilyRuntime>,
    /// Family index per root transaction, dense by raw txn id (the tree
    /// mints ids sequentially; non-root slots stay at the sentinel).
    /// Written once per family attempt, read on every deferred grant.
    root_to_family: Vec<u32>,
    /// Last lock holder per object, indexed by dense object id.
    last_holder: Vec<NodeId>,
    ledger: TrafficLedger,
    trace: ScheduleTrace,
    stats: RunStats,
    committed: Vec<CommittedFamily>,
    miss_rng: SimRng,
    jitter_rng: SimRng,
    fault_rng: SimRng,
    /// Adaptive access predictor (`Some` iff `config.adaptive.enabled`).
    /// With it absent the engine takes the exact static-prediction code
    /// path, so adaptive-off runs stay byte-identical to older builds.
    predictor: Option<AdaptivePredictor>,
    sink: S,
    prof: P,
    /// Forensics dumps captured so far (see [`RunReport::forensics`]).
    /// Stays empty — and costs nothing — when the sink has no recorder.
    forensics: Vec<ForensicsDump>,
    /// Next sim-time boundary the state sampler fires at. Only consulted
    /// when the sink is enabled *and* `config.state_sample_interval` is
    /// non-zero; samples are emitted inline by the run loop (never as
    /// scheduled sim events), so sampling cannot perturb the simulation.
    next_sample: SimTime,
}

impl<S: EventSink, P: HostProfiler> std::fmt::Debug for Engine<'_, S, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("protocol", &self.config.protocol)
            .field("families", &self.families.len())
            .field("now", &self.sim.now())
            .finish_non_exhaustive()
    }
}

/// Read-only placement view over the engine's live state.
struct EngineView<'b> {
    table: &'b LockTable,
    stores: &'b [PageStore],
    registry: &'b ObjectRegistry,
    last_holder: &'b [NodeId],
}

impl PlacementView for EngineView<'_> {
    fn local_version(&self, node: NodeId, object: ObjectId, page: PageIndex) -> Option<Version> {
        self.stores[node.index() as usize].version_of(PageId::new(object, page.get()))
    }

    fn global_version(&self, object: ObjectId, page: PageIndex) -> Version {
        self.table
            .entry(object)
            .expect("registered object")
            .page_map()
            .location(page)
            .version
    }

    fn page_owner(&self, object: ObjectId, page: PageIndex) -> NodeId {
        self.table
            .entry(object)
            .expect("registered object")
            .page_map()
            .location(page)
            .node
    }

    fn last_holder(&self, object: ObjectId) -> NodeId {
        self.last_holder[object.index() as usize]
    }

    fn num_pages(&self, object: ObjectId) -> u16 {
        self.registry.num_pages(object)
    }
}

/// Coarse observability phase of an engine [`Phase`]: the bucket its time
/// is attributed to. `None` for `NotStarted` (nothing to attribute yet).
fn obs_phase(phase: &Phase) -> Option<ObsPhase> {
    match phase {
        Phase::NotStarted => None,
        Phase::WaitingGrant | Phase::GrantInFlight { .. } => Some(ObsPhase::LockWait),
        Phase::Fetching => Some(ObsPhase::TransferWait),
        Phase::Computing => Some(ObsPhase::Running),
        Phase::Restarting => Some(ObsPhase::Backoff),
        Phase::Done => Some(ObsPhase::Committed),
        Phase::Failed => Some(ObsPhase::Failed),
    }
}

impl<'a> Engine<'a> {
    /// Builds an engine for `workload` on `registry` under `config`, with
    /// observability disabled (the zero-cost [`NoopSink`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] if any family fails validation.
    pub fn new(
        config: &'a SystemConfig,
        registry: &'a ObjectRegistry,
        workload: &'a [FamilySpec],
    ) -> Result<Self, CoreError> {
        Engine::with_probe(config, registry, workload, NoopSink)
    }
}

impl<'a, S: EventSink> Engine<'a, S> {
    /// Builds an engine whose probe sites report to `sink` (pass a
    /// [`lotec_obs::RecordingSink`] to capture a structured trace).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] if any family fails validation.
    pub fn with_probe(
        config: &'a SystemConfig,
        registry: &'a ObjectRegistry,
        workload: &'a [FamilySpec],
        sink: S,
    ) -> Result<Self, CoreError> {
        Engine::with_instruments(config, registry, workload, sink, NoopHostProfiler)
    }
}

impl<'a, S: EventSink, P: HostProfiler> Engine<'a, S, P> {
    /// Builds an engine with both instrumentation planes supplied: `sink`
    /// for sim-time probe events and `prof` for host-plane wall-clock
    /// self-profiling (lend a [`lotec_obs::WallProfiler`] via `&mut` to
    /// keep the profile after [`Engine::run`] consumes the engine).
    /// Construction itself is attributed to [`HostRegion::Setup`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] if any family fails validation.
    pub fn with_instruments(
        config: &'a SystemConfig,
        registry: &'a ObjectRegistry,
        workload: &'a [FamilySpec],
        sink: S,
        mut prof: P,
    ) -> Result<Self, CoreError> {
        prof.enter(HostRegion::Setup);
        config.validate();
        for family in workload {
            if let Err(e) = validate_family(family, registry, config) {
                // Keep the profiler balanced on the error path.
                prof.exit(HostRegion::Setup);
                return Err(e);
            }
        }
        let mut table = LockTable::new();
        if config.lock_graph_validation {
            table.enable_graph_validation();
        }
        // One dense page numbering over the fixed object layout, shared by
        // every node's store: page state lives in flat slot-indexed Vecs.
        let atlas = std::sync::Arc::new(registry.page_atlas());
        let mut stores: Vec<PageStore> = (0..config.num_nodes)
            .map(|_| {
                PageStore::with_atlas(config.page_size as usize, std::sync::Arc::clone(&atlas))
            })
            .collect();
        let mut last_holder = Vec::with_capacity(registry.num_objects());
        for inst in registry.objects() {
            let num_pages = registry.num_pages(inst.id);
            table.register_object(inst.id, num_pages, inst.home);
            debug_assert_eq!(last_holder.len(), inst.id.index() as usize);
            last_holder.push(inst.home);
            // Materialize the initial (version 0, zero-filled) image at the
            // object's home so first transfers have a source.
            let home_store = &mut stores[inst.home.index() as usize];
            for p in 0..num_pages {
                home_store.ensure(PageId::new(inst.id, p));
            }
        }
        let recovery: Box<dyn Recovery> = match config.recovery {
            RecoveryKind::UndoLog => Box::new(UndoLog::new()),
            RecoveryKind::ShadowPages => Box::new(ShadowPages::new()),
        };
        let mut sim = Simulator::new();
        let families: Vec<FamilyRuntime> = workload
            .iter()
            .enumerate()
            .map(|(i, f)| FamilyRuntime::new(i, f.start))
            .collect();
        for (i, f) in workload.iter().enumerate() {
            sim.schedule_at(f.start, Event::Start(i as u32));
        }
        // Scheduled node outages enter the event queue up front; both ends
        // of every window are fixed by the fault plan, so the whole fault
        // schedule is part of the deterministic initial state.
        for (i, w) in config.faults.plan.crashes.iter().enumerate() {
            sim.schedule_at(w.at, Event::NodeCrash(i as u32));
            sim.schedule_at(w.until, Event::NodeRecover(i as u32));
        }
        let root_rng = SimRng::seed_from_u64(config.seed ^ 0x5EED_0F0F_4E97_1A1Du64);
        prof.exit(HostRegion::Setup);
        Ok(Engine {
            config,
            registry,
            workload,
            sim,
            tree: TxnTree::new(),
            table,
            stores,
            zero_page: PageData::zeroed(config.page_size as usize),
            recovery,
            families,
            root_to_family: Vec::new(),
            last_holder,
            ledger: TrafficLedger::new(),
            trace: ScheduleTrace::new(),
            stats: RunStats::default(),
            committed: Vec::new(),
            miss_rng: root_rng.fork(0xA11CE),
            jitter_rng: root_rng.fork(0xB0B),
            fault_rng: root_rng.fork(0xFA_17),
            predictor: config
                .adaptive
                .enabled
                .then(|| AdaptivePredictor::new(registry, config.adaptive.window)),
            sink,
            prof,
            forensics: Vec::new(),
            next_sample: SimTime::ZERO,
        })
    }

    /// Runs the simulation to completion and returns the report.
    ///
    /// # Errors
    ///
    /// Returns an error if the lock manager rejects an operation the
    /// workload should never produce (a workload/engine bug) or a family
    /// exhausts its restart budget.
    pub fn run(mut self) -> Result<RunReport, CoreError> {
        let sampling = self.sink.enabled() && self.config.state_sample_interval > SimDuration::ZERO;
        loop {
            self.prof.enter(HostRegion::EventPop);
            let next = self.sim.next_event();
            self.prof.exit(HostRegion::EventPop);
            let Some((now, event)) = next else { break };
            if sampling {
                self.emit_state_samples(now);
            }
            self.prof.enter(HostRegion::Dispatch);
            let res = self.handle(now, event);
            self.prof.exit(HostRegion::Dispatch);
            res?;
        }
        // Every family must have reached a terminal phase.
        debug_assert!(self
            .families
            .iter()
            .all(|f| matches!(f.phase, Phase::Done | Phase::Failed)));
        self.prof.enter(HostRegion::Report);
        self.finish_phase_stats();
        self.stats.sim_events = self.sim.delivered();
        let final_chains = self.collect_final_chains();
        self.prof.exit(HostRegion::Report);
        Ok(RunReport {
            protocol: self.config.protocol,
            stats: self.stats,
            trace: self.trace,
            traffic: ProtocolTraffic::new(self.ledger),
            committed: self.committed,
            final_chains,
            forensics: self.forensics,
        })
    }

    fn handle(&mut self, now: SimTime, event: Event) -> Result<(), CoreError> {
        match event {
            Event::Start(fam) => self.start_family(now, fam as usize),
            Event::Restart(fam, gen) => {
                let fam = fam as usize;
                if self.is_stale(fam, gen) {
                    return Ok(());
                }
                self.start_family(now, fam)
            }
            Event::GrantArrived(fam, gen) => {
                let fam = fam as usize;
                if self.is_stale(fam, gen) {
                    return Ok(());
                }
                self.on_grant_arrived(now, fam)
            }
            Event::FetchArrived(fam, gen) => {
                let fam = fam as usize;
                if !self.is_stale(fam, gen) {
                    self.begin_compute(now, fam);
                }
                Ok(())
            }
            Event::ComputeDone(fam, gen) | Event::Continue(fam, gen) => {
                let fam = fam as usize;
                if self.is_stale(fam, gen) {
                    return Ok(());
                }
                self.advance(now, fam)
            }
            Event::NodeCrash(window) => self.on_node_crash(now, window as usize),
            Event::NodeRecover(window) => {
                self.on_node_recover(now, window as usize);
                Ok(())
            }
            Event::LockTimeout(fam, gen) => self.on_lock_timeout(now, fam as usize, gen),
        }
    }

    /// Schedules an engine event, attributed to
    /// [`HostRegion::EventPush`]. Every in-run scheduling site goes
    /// through here; only constructor-time seeding (family arrivals,
    /// fault windows) calls the simulator directly, under `Setup`.
    fn schedule(&mut self, at: SimTime, event: Event) {
        self.prof.enter(HostRegion::EventPush);
        self.sim.schedule_at(at, event);
        self.prof.exit(HostRegion::EventPush);
    }

    /// Emits any [`ObsEventKind::StateSample`] gauges whose sample times
    /// fall at or before `now` (the timestamp of the event about to be
    /// handled). Samples are pure probe output: they read engine state and
    /// write to the sink, never touching the event queue, so determinism
    /// of the simulation proper is untouched.
    fn emit_state_samples(&mut self, now: SimTime) {
        let interval = self.config.state_sample_interval;
        while self.next_sample <= now {
            self.prof.enter(HostRegion::StateSample);
            let at = self.next_sample;
            let occ = self.table.occupancy();
            let mut inflight = 0u32;
            let mut blocked = 0u32;
            for f in &self.families {
                match f.phase {
                    Phase::WaitingGrant => blocked += 1,
                    Phase::GrantInFlight { .. } | Phase::Fetching => inflight += 1,
                    _ => {}
                }
            }
            let cache_bytes: Vec<u64> = self.stores.iter().map(PageStore::cached_bytes).collect();
            self.sink.emit(ObsEvent {
                at,
                node: 0,
                kind: ObsEventKind::StateSample {
                    queue_depth: self.sim.pending() as u64,
                    locks_held: occ.held,
                    locks_retained: occ.retained,
                    locks_waiting: occ.waiting,
                    inflight_messages: inflight,
                    blocked_families: blocked,
                    cache_bytes,
                },
            });
            self.next_sample = at + interval;
            self.prof.exit(HostRegion::StateSample);
        }
    }

    /// True when a family-bound event belongs to an attempt that has since
    /// been aborted (its generation is older than the family's current
    /// one). Stale events are dropped without side effects.
    fn is_stale(&self, fam: usize, gen: u32) -> bool {
        self.families[fam].generation != gen
    }

    /// The current attempt generation of `fam`, stamped onto its timed
    /// events at scheduling time.
    fn generation(&self, fam: usize) -> u32 {
        self.families[fam].generation
    }

    // ---- message helpers -------------------------------------------------

    /// Charges a message and returns its transfer time; node-local
    /// "messages" are free and unrecorded.
    fn send(
        &mut self,
        kind: MessageKind,
        src: NodeId,
        dst: NodeId,
        object: ObjectId,
        bytes: u64,
    ) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        self.ledger
            .record(&Message::new(kind, src, dst, object, bytes));
        self.config.network.transfer_time_for(kind, bytes)
    }

    /// Like [`Engine::send`], but over the lossy link model when fault
    /// injection is enabled: the sender retransmits on a fixed RTO until an
    /// attempt survives the drop distribution and lands outside any
    /// receiver outage. Retransmissions and spurious duplicates cross the
    /// wire for real — each is charged to the ledger — and the returned
    /// delay includes the full retransmission stall. `fam` attributes that
    /// stall to a family so phase accounting can book it as backoff rather
    /// than inflating the protocol phases. With faults disabled this is
    /// exactly [`Engine::send`]: no RNG draws, no extra records.
    fn send_lossy(
        &mut self,
        kind: MessageKind,
        src: NodeId,
        dst: NodeId,
        object: ObjectId,
        bytes: u64,
        fam: Option<usize>,
    ) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        let base = self.send(kind, src, dst, object, bytes);
        if !self.config.faults.plan.enabled() {
            return base;
        }
        let now = self.sim.now();
        let report = plan_delivery(
            &self.config.faults.plan,
            &mut self.fault_rng,
            dst,
            now,
            base,
        );
        for _ in 0..report.wasted_copies() {
            self.ledger
                .record(&Message::new(kind, src, dst, object, bytes));
        }
        self.stats.retransmits += u64::from(report.attempts - 1);
        self.stats.duplicates += u64::from(report.duplicates);
        if report.retransmit_wait > SimDuration::ZERO {
            self.stats.retransmit_wait += report.retransmit_wait;
            if let Some(f) = fam {
                let runtime = &mut self.families[f];
                runtime.promote_retransmit_wait(now);
                runtime.fresh_retransmit_wait += report.retransmit_wait;
            }
        }
        if self.sink.enabled() && (report.attempts > 1 || report.duplicates > 0) {
            self.sink.emit(ObsEvent {
                at: now,
                node: src.index(),
                kind: ObsEventKind::Retransmit {
                    dst: dst.index(),
                    attempts: report.attempts,
                    duplicates: report.duplicates,
                    wait_ns: report.retransmit_wait.as_nanos(),
                    family: fam.map(|f| f as u64),
                },
            });
        }
        base + report.latency_penalty()
    }

    /// Propagates a directory-state mutation for `object` to its backup
    /// replicas (write-behind, so no latency is added to the mutating
    /// operation's critical path).
    fn replicate_gdo(&mut self, object: ObjectId, bytes: u64) {
        if self.config.gdo_replication <= 1 {
            return;
        }
        let home = self.config.gdo_home(object);
        for replica in self.config.gdo_replicas(object) {
            self.send(MessageKind::GdoReplicate, home, replica, object, bytes);
        }
    }

    // ---- phase accounting ------------------------------------------------

    /// Transitions `fam` into `phase`, attributing the time spent since
    /// the previous transition to the phase being left. Emits a
    /// `PhaseEnter` probe event whenever the *coarse* observability phase
    /// changes (`WaitingGrant → GrantInFlight` stays inside `lock_wait`
    /// and emits nothing).
    fn set_phase(&mut self, now: SimTime, fam: usize, phase: Phase) {
        let node = self.workload[fam].node.index();
        let runtime = &mut self.families[fam];
        let old = obs_phase(&runtime.phase);
        if let Some(prev) = old {
            let mut elapsed = now.saturating_duration_since(runtime.phase_entered);
            // Retransmission stalls accrued by lossy sends elapse inside
            // the window being closed; book them as backoff so link faults
            // do not masquerade as protocol lock/transfer wait. Zero (and
            // branch-free past the promote call) when faults are off, so
            // fault-free attribution is untouched.
            runtime.promote_retransmit_wait(now);
            let stall = elapsed.min(runtime.ready_retransmit_wait);
            if stall > SimDuration::ZERO {
                runtime.ready_retransmit_wait -= stall;
                elapsed -= stall;
                runtime.phase_times.add(ObsPhase::Backoff, stall);
            }
            runtime.phase_times.add(prev, elapsed);
        }
        let new = obs_phase(&phase);
        runtime.phase = phase;
        runtime.phase_entered = now;
        if self.sink.enabled() && new != old {
            if let Some(entered) = new {
                self.sink.emit(ObsEvent {
                    at: now,
                    node,
                    kind: ObsEventKind::PhaseEnter {
                        family: fam as u64,
                        phase: entered,
                    },
                });
            }
        }
    }

    /// Folds the per-family phase accumulators into
    /// [`RunStats::phases`](crate::metrics::RunStats) at end of run. Pure
    /// bookkeeping — runs identically with every sink.
    fn finish_phase_stats(&mut self) {
        let stats = &mut self.stats;
        for f in &self.families {
            let committed = matches!(f.phase, Phase::Done);
            // Phase attribution must tile the commit window exactly: every
            // nanosecond between arrival and commit belongs to exactly one
            // coarse phase. Drift here means an emission site forgot to
            // book (or double-booked) a wait, so fail loudly in debug runs
            // naming the family where it happened.
            if let Some(latency) = f.commit_latency {
                debug_assert_eq!(
                    f.phase_times.total(),
                    latency,
                    "family {}: phase self-times ({:?}) sum to {:?} but the \
                     measured commit latency is {:?} — a phase transition \
                     mis-attributed elapsed time",
                    f.index,
                    f.phase_times,
                    f.phase_times.total(),
                    latency,
                );
            }
            stats.phases.aggregate.merge(&f.phase_times);
            if committed {
                stats
                    .phases
                    .lock_wait_histogram
                    .record(f.phase_times.lock_wait.as_nanos());
                stats
                    .phases
                    .transfer_wait_histogram
                    .record(f.phase_times.transfer_wait.as_nanos());
                stats
                    .phases
                    .compute_histogram
                    .record(f.phase_times.running.as_nanos());
            }
            if self.config.per_family_phases {
                stats.phases.per_family.push(crate::metrics::FamilyPhases {
                    family_index: f.index,
                    times: f.phase_times,
                    committed,
                });
            }
        }
    }

    // ---- family lifecycle ------------------------------------------------

    fn start_family(&mut self, now: SimTime, fam: usize) -> Result<(), CoreError> {
        let spec = &self.workload[fam];
        // A family cannot start (or restart) while its node is down; defer
        // the whole attempt to the end of the outage.
        if self.config.faults.plan.enabled() && self.config.faults.plan.is_down(spec.node, now) {
            let up = self.config.faults.plan.up_at(spec.node, now);
            // The deferral gap is real wall time between arrival and
            // commit; book it as backoff so the phase sums still equal the
            // measured latency. Restart deferrals are already covered (the
            // family sits in `Restarting`, whose elapsed time `set_phase`
            // attributes on the next transition).
            if matches!(self.families[fam].phase, Phase::NotStarted) {
                self.families[fam]
                    .phase_times
                    .add(ObsPhase::Backoff, up.saturating_duration_since(now));
            }
            self.schedule(up, Event::Start(fam as u32));
            return Ok(());
        }
        let root = self.tree.begin_root(spec.node);
        let slot = root.get() as usize;
        if slot >= self.root_to_family.len() {
            self.root_to_family.resize(slot + 1, u32::MAX);
        }
        self.root_to_family[slot] = fam as u32;
        self.families[fam].root_txn = Some(root);
        self.start_invocation(now, fam, Vec::new(), None)
    }

    fn start_invocation(
        &mut self,
        now: SimTime,
        fam: usize,
        ptr: Vec<usize>,
        parent: Option<TxnId>,
    ) -> Result<(), CoreError> {
        let spec = spec_at(&self.workload[fam], &ptr);
        let txn = match parent {
            None => self.families[fam].root_txn.expect("root txn minted"),
            Some(parent) => self.tree.begin_child(parent),
        };
        let frame = Frame {
            ptr,
            txn,
            object: spec.object,
            method: spec.method,
            path: spec.path,
            next_child: 0,
            num_children: spec.children.len(),
            abort: spec.abort,
        };
        if self.sink.enabled() {
            self.sink.emit(ObsEvent {
                at: now,
                node: self.workload[fam].node.index(),
                kind: ObsEventKind::SpanOpen {
                    family: fam as u64,
                    txn: txn.get(),
                    parent: parent.map(|p| p.get()),
                    object: frame.object.index(),
                },
            });
        }
        self.families[fam].frames.push(frame);
        self.request_lock(now, fam)
    }

    fn request_lock(&mut self, now: SimTime, fam: usize) -> Result<(), CoreError> {
        let (txn, object, method) = {
            let top = self.families[fam].top();
            (top.txn, top.object, top.method)
        };
        let node = self.workload[fam].node;
        let mode = if self.registry.class_of(object).is_read_only(method) {
            LockMode::Read
        } else {
            LockMode::Write
        };
        self.prof.enter(HostRegion::LockAcquire);
        let outcome = self
            .table
            .acquire_probed(object, txn, mode, &self.tree, now, &mut self.sink);
        self.prof.exit(HostRegion::LockAcquire);
        match outcome? {
            Acquire::LocalGrant => {
                self.stats.local_lock_grants += 1;
                self.set_phase(
                    now,
                    fam,
                    Phase::GrantInFlight {
                        global: false,
                        holders: 0,
                    },
                );
                let delay = self.config.costs.local_lock_op;
                let gen = self.generation(fam);
                self.schedule(now + delay, Event::GrantArrived(fam as u32, gen));
            }
            Acquire::GlobalGrant { holders } => {
                self.stats.global_lock_grants += 1;
                let home = self.config.gdo_home(object);
                let req_bytes = self.config.sizes.lock_request();
                let grant_bytes = self
                    .config
                    .sizes
                    .lock_grant(holders, self.registry.num_pages(object));
                let mut delay = self.send_lossy(
                    MessageKind::LockRequest,
                    node,
                    home,
                    object,
                    req_bytes,
                    Some(fam),
                ) + self.config.costs.gdo_processing
                    + self.send_lossy(
                        MessageKind::LockGrant,
                        home,
                        node,
                        object,
                        grant_bytes,
                        Some(fam),
                    );
                // A prefetched request has already been in flight since the
                // parent started computing; the elapsed time is absorbed.
                if self.config.lock_prefetch {
                    let ptr = self.families[fam].top().ptr.clone();
                    if let Some(issued) = self.families[fam].prefetch_at.remove(&ptr) {
                        let elapsed = now.saturating_duration_since(issued);
                        let absorbed = delay.saturating_sub(delay.saturating_sub(elapsed));
                        if absorbed > SimDuration::ZERO {
                            self.stats.prefetch_hits += 1;
                            self.stats.prefetch_saved += absorbed.min(delay);
                        }
                        delay = delay.saturating_sub(elapsed);
                    }
                }
                self.set_phase(
                    now,
                    fam,
                    Phase::GrantInFlight {
                        global: true,
                        holders,
                    },
                );
                let gen = self.generation(fam);
                self.schedule(now + delay, Event::GrantArrived(fam as u32, gen));
                self.replicate_gdo(object, self.config.sizes.lock_request());
            }
            Acquire::Queued => {
                self.stats.queued_lock_requests += 1;
                let home = self.config.gdo_home(object);
                let req_bytes = self.config.sizes.lock_request();
                self.send_lossy(
                    MessageKind::LockRequest,
                    node,
                    home,
                    object,
                    req_bytes,
                    None,
                );
                self.set_phase(now, fam, Phase::WaitingGrant);
                // Fault injection: a queued request carries an RPC timeout;
                // if no grant arrives in time the waiter gives up and
                // re-issues (see `on_lock_timeout`).
                if self.config.faults.lock_timeout > SimDuration::ZERO {
                    let gen = self.generation(fam);
                    self.schedule(
                        now + self.config.faults.lock_timeout,
                        Event::LockTimeout(fam as u32, gen),
                    );
                }
                let root = self.families[fam]
                    .root_txn
                    .expect("queued family has a root");
                self.prof.enter(HostRegion::DeadlockGate);
                let gate = self.break_deadlocks(now, home, root);
                self.prof.exit(HostRegion::DeadlockGate);
                gate?;
            }
        }
        Ok(())
    }

    /// Delivers a deferred grant (produced by some release) to its family.
    fn deliver_grant(&mut self, now: SimTime, grant: &Grant) {
        debug_assert_eq!(
            grant.requests.len(),
            1,
            "one outstanding request per family"
        );
        let req = grant.requests[0];
        let family_root = self.tree.root_of(req.txn);
        let fam = self.root_to_family[family_root.get() as usize] as usize;
        debug_assert_ne!(fam, u32::MAX as usize, "granted family is known");
        debug_assert_eq!(self.families[fam].phase, Phase::WaitingGrant);
        let home = self.config.gdo_home(grant.object);
        let grant_bytes = self
            .config
            .sizes
            .lock_grant(grant.holders, self.registry.num_pages(grant.object));
        let delay = self.config.costs.gdo_processing
            + self.send_lossy(
                MessageKind::LockGrant,
                home,
                req.node,
                grant.object,
                grant_bytes,
                Some(fam),
            );
        self.set_phase(
            now,
            fam,
            Phase::GrantInFlight {
                global: true,
                holders: grant.holders,
            },
        );
        let gen = self.generation(fam);
        self.schedule(now + delay, Event::GrantArrived(fam as u32, gen));
        self.replicate_gdo(grant.object, self.config.sizes.lock_request());
    }

    fn on_grant_arrived(&mut self, now: SimTime, fam: usize) -> Result<(), CoreError> {
        let Phase::GrantInFlight { global, holders } = self.families[fam].phase else {
            panic!("grant arrived for family {fam} in wrong phase");
        };
        let (object, method, path) = {
            let top = self.families[fam].top();
            (top.object, top.method, top.path)
        };
        let node = self.workload[fam].node;
        let compiled = self.registry.class_of(object);
        let actual = compiled.path_access(method, path);
        // Borrow the access sets out of the compiled class; the only owned
        // copies made below are the ones the trace event keeps.
        let (actual_reads, actual_writes) = (actual.reads(), actual.writes());
        let class = self.registry.object(object).class;
        let kind = self.config.protocol_for(class);
        // The adaptive predictor (when enabled) replaces the static
        // compile-time prediction for LOTEC-family grants; the profile is
        // floored at the statically-proven must-access set, so soundness
        // does not depend on learning.
        let predicted = match &self.predictor {
            Some(p) if kind.uses_prediction() => p.predicted(class, method).clone(),
            _ => compiled.prediction(method).touched(),
        };

        self.trace.push(TraceEvent::Grant {
            at: now,
            family: self.tree.root_of(self.families[fam].top().txn).get(),
            node,
            object,
            mode: if compiled.is_read_only(method) {
                LockMode::Read
            } else {
                LockMode::Write
            },
            global,
            holders,
            predicted: predicted.clone(),
            actual_reads: actual_reads.clone(),
            actual_writes: actual_writes.clone(),
        });

        // Prefetch set per protocol (LOTEC consults the prediction; the
        // miss-rate ablation randomly degrades it). The per-class
        // extension can put each class under its own protocol.
        let prefetch: PageSet = if kind.uses_prediction() {
            if self.config.prediction_miss_rate > 0.0 {
                let rate = self.config.prediction_miss_rate;
                predicted
                    .iter()
                    .filter(|_| !self.miss_rng.chance(rate))
                    .collect()
            } else {
                predicted.clone()
            }
        } else {
            (0..self.registry.num_pages(object))
                .map(PageIndex::new)
                .collect()
        };

        // Plan against the *pre-grant* placement (last_holder still points
        // at the previous holder), then update placement bookkeeping.
        let plan = {
            let view = EngineView {
                table: &self.table,
                stores: &self.stores,
                registry: self.registry,
                last_holder: &self.last_holder,
            };
            plan_transfer(kind, &view, node, object, &prefetch)
        };
        if self.sink.enabled() {
            self.sink.emit(ObsEvent {
                at: now,
                node: node.index(),
                kind: ObsEventKind::GrantPlan {
                    family: fam as u64,
                    object: object.index(),
                    predicted: predicted.iter().map(|p| p.get()).collect(),
                    actual_reads: actual_reads.iter().map(|p| p.get()).collect(),
                    actual_writes: actual_writes.iter().map(|p| p.get()).collect(),
                    planned_pages: plan.num_pages() as u32,
                    sources: plan.num_sources() as u32,
                },
            });
            if kind.uses_prediction() {
                let actual_set = actual_reads.union(actual_writes);
                let tp = predicted.iter().filter(|&p| actual_set.contains(p)).count() as u32;
                self.sink.emit(ObsEvent {
                    at: now,
                    node: node.index(),
                    kind: ObsEventKind::PredictionSample {
                        class: class.index(),
                        method: method.index(),
                        predicted: predicted.len() as u32,
                        actual: actual_set.len() as u32,
                        true_positives: tp,
                    },
                });
            }
        }
        self.last_holder[object.index() as usize] = node;
        self.table
            .entry_mut(object)
            .expect("registered object")
            .page_map_mut()
            .record_cached(node);

        // Charge and perform the gather (Alg. 4.5): one request/transfer
        // pair per source; batches travel in parallel, so the phase ends at
        // the slowest batch.
        let mut max_delay = SimDuration::ZERO;
        let mut to_install: Vec<(PageId, Version, PageData)> = Vec::new();
        self.prof.enter(HostRegion::PageTransfer);
        for (source, pages) in plan.sources() {
            // Adaptive mode coalesces runs of adjacent pages into ranged
            // request entries; request sizing only — transfers keep their
            // page framing, so `page_payload_bytes` stays exact.
            let req = if self.config.adaptive.enabled {
                self.config
                    .sizes
                    .coalesced_page_request(pages.len(), adjacent_run_count(pages))
            } else {
                self.config.sizes.page_request(pages.len())
            };
            let xfer = transfer_message_bytes(self.config, self.registry, object, pages);
            let d = self.send_lossy(
                MessageKind::PageRequest,
                node,
                source,
                object,
                req,
                Some(fam),
            ) + self.send_lossy(
                MessageKind::PageTransfer,
                source,
                node,
                object,
                xfer,
                Some(fam),
            );
            max_delay = max_delay.max(d);
            if self.sink.enabled() {
                self.sink.emit(ObsEvent {
                    at: now,
                    node: node.index(),
                    kind: ObsEventKind::GatherBatch {
                        family: fam as u64,
                        object: object.index(),
                        source: source.index(),
                        pages: pages.len() as u32,
                        bytes: xfer,
                        delay_ns: d.as_nanos(),
                    },
                });
            }
            for &page in pages {
                to_install.push(self.current_page_copy(object, page));
            }
        }
        self.prof.exit(HostRegion::PageTransfer);
        self.prof.enter(HostRegion::PageInstall);
        for (pid, version, data) in to_install {
            self.stores[node.index() as usize].install(pid, version, data);
        }
        self.prof.exit(HostRegion::PageInstall);

        // Demand fetches: actually-touched pages still stale after the
        // gather. Without faults this is only possible when prediction was
        // degraded (LOTEC-family protocols); with fault injection on, a
        // crash can cold-start any node's cache and break the "last holder
        // still caches the object" shortcut the non-predictive protocols
        // plan around, so the safety net covers every protocol there.
        // Demand fetches happen serially during compute; account their
        // latency into the compute phase.
        let mut demand_delay = SimDuration::ZERO;
        if kind.uses_prediction() || self.config.faults.plan.enabled() {
            self.prof.enter(HostRegion::PageTransfer);
            let touched = actual_reads.union(actual_writes);
            let mut stale_fetches: Vec<(PageIndex, NodeId)> = Vec::new();
            for page in touched.iter() {
                let (stale, source) = {
                    let view = EngineView {
                        table: &self.table,
                        stores: &self.stores,
                        registry: self.registry,
                        last_holder: &self.last_holder,
                    };
                    let global = view.global_version(object, page);
                    let local = view
                        .local_version(node, object, page)
                        .unwrap_or(Version::INITIAL);
                    (global.is_newer_than(local), view.page_owner(object, page))
                };
                if stale {
                    debug_assert_ne!(source, node, "owner cannot be stale at itself");
                    stale_fetches.push((page, source));
                }
            }
            let mut demand_installs = Vec::new();
            if self.config.adaptive.enabled {
                // Batched repair: every misprediction discovered in this
                // compute phase is fetched with one coalesced round trip
                // per source; the batches travel in parallel, so the
                // compute phase stretches by the slowest source, not the
                // sum of serial per-page fetches.
                let mut by_source: Vec<(NodeId, Vec<PageIndex>)> = Vec::new();
                for &(page, source) in &stale_fetches {
                    match by_source.iter_mut().find(|(s, _)| *s == source) {
                        Some((_, pages)) => pages.push(page),
                        None => by_source.push((source, vec![page])),
                    }
                }
                for (source, pages) in by_source {
                    let req = self
                        .config
                        .sizes
                        .coalesced_page_request(pages.len(), adjacent_run_count(&pages));
                    let xfer = transfer_message_bytes(self.config, self.registry, object, &pages);
                    let d = self.send_lossy(
                        MessageKind::DemandPageRequest,
                        node,
                        source,
                        object,
                        req,
                        Some(fam),
                    ) + self.send_lossy(
                        MessageKind::DemandPageTransfer,
                        source,
                        node,
                        object,
                        xfer,
                        Some(fam),
                    );
                    demand_delay = demand_delay.max(d);
                    if self.sink.enabled() {
                        self.sink.emit(ObsEvent {
                            at: now,
                            node: node.index(),
                            kind: ObsEventKind::DemandBatch {
                                family: fam as u64,
                                object: object.index(),
                                source: source.index(),
                                pages: pages.iter().map(|p| p.get()).collect(),
                                bytes: xfer,
                                delay_ns: d.as_nanos(),
                            },
                        });
                    }
                    for &page in &pages {
                        demand_installs.push(self.current_page_copy(object, page));
                        self.stats.demand_fetches += 1;
                    }
                }
            } else {
                // Serial per-page repair (the legacy path; byte-identical
                // message sequence to pre-adaptive builds).
                for &(page, source) in &stale_fetches {
                    let req = self.config.sizes.page_request(1);
                    let xfer = transfer_message_bytes(self.config, self.registry, object, &[page]);
                    if self.sink.enabled() {
                        self.sink.emit(ObsEvent {
                            at: now,
                            node: node.index(),
                            kind: ObsEventKind::DemandFetch {
                                family: fam as u64,
                                object: object.index(),
                                page: page.get(),
                                source: source.index(),
                                bytes: xfer,
                            },
                        });
                    }
                    demand_delay = demand_delay
                        + self.send_lossy(
                            MessageKind::DemandPageRequest,
                            node,
                            source,
                            object,
                            req,
                            Some(fam),
                        )
                        + self.send_lossy(
                            MessageKind::DemandPageTransfer,
                            source,
                            node,
                            object,
                            xfer,
                            Some(fam),
                        );
                    demand_installs.push(self.current_page_copy(object, page));
                    self.stats.demand_fetches += 1;
                }
            }
            self.prof.exit(HostRegion::PageTransfer);
            self.prof.enter(HostRegion::PageInstall);
            for (pid, version, data) in demand_installs {
                self.stores[node.index() as usize].install(pid, version, data);
            }
            self.prof.exit(HostRegion::PageInstall);
        }
        self.families[fam].fetch_extra = demand_delay;

        if max_delay == SimDuration::ZERO {
            self.begin_compute(now, fam);
        } else {
            self.set_phase(now, fam, Phase::Fetching);
            let gen = self.generation(fam);
            self.schedule(now + max_delay, Event::FetchArrived(fam as u32, gen));
        }
        Ok(())
    }

    /// Copy-on-write handle to the newest committed version of a page,
    /// taken from its owner's store (the shared zero page if it was never
    /// written anywhere). A refcount bump, not a byte copy.
    fn current_page_copy(&self, object: ObjectId, page: PageIndex) -> (PageId, Version, PageData) {
        let loc = self
            .table
            .entry(object)
            .expect("registered object")
            .page_map()
            .location(page);
        let pid = PageId::new(object, page.get());
        match self.stores[loc.node.index() as usize].get(pid) {
            Some(p) => {
                debug_assert_eq!(
                    p.version(),
                    loc.version,
                    "owner copy of {pid} out of sync with the page map"
                );
                (pid, p.version(), p.payload())
            }
            None => {
                debug_assert_eq!(
                    loc.version,
                    Version::INITIAL,
                    "missing non-initial page {pid}"
                );
                (pid, Version::INITIAL, self.zero_page.clone())
            }
        }
    }

    fn begin_compute(&mut self, now: SimTime, fam: usize) {
        let (txn, object, method, path) = {
            let top = self.families[fam].top();
            (top.txn, top.object, top.method, top.path)
        };
        let node = self.workload[fam].node;
        let compiled = self.registry.class_of(object);
        let access = compiled.path_access(method, path);
        let (reads, writes) = (access.reads(), access.writes());
        let store = &mut self.stores[node.index() as usize];

        for page in reads.iter() {
            let chain = store.chain(PageId::new(object, page.get()));
            self.families[fam].ops.push(family::AttemptOp {
                txn,
                op: FamilyOp::Read {
                    object,
                    page,
                    chain,
                },
            });
        }
        self.prof.enter(HostRegion::CowWrite);
        for page in writes.iter() {
            let pid = PageId::new(object, page.get());
            self.recovery.before_write(txn.get(), store, pid);
            let stamp = txn.get();
            store.apply_stamp(pid, stamp);
            self.families[fam].ops.push(family::AttemptOp {
                txn,
                op: FamilyOp::Write {
                    object,
                    page,
                    stamp,
                },
            });
        }
        self.prof.exit(HostRegion::CowWrite);

        // Optimistic lock prefetching (§6): issue the pending children's
        // lock requests now, overlapping their GDO round trips with this
        // invocation's compute phase.
        if self.config.lock_prefetch {
            let (ptr, num_children) = {
                let top = self.families[fam].top();
                (top.ptr.clone(), top.num_children)
            };
            for idx in 0..num_children {
                let mut child_ptr = ptr.clone();
                child_ptr.push(idx);
                self.families[fam]
                    .prefetch_at
                    .entry(child_ptr)
                    .or_insert(now);
            }
        }

        let touched = reads.union(writes).len() as u64;
        let duration = self.config.costs.invocation_base
            + self.config.costs.per_page_access * touched
            + self.families[fam].fetch_extra;
        self.families[fam].fetch_extra = SimDuration::ZERO;
        self.set_phase(now, fam, Phase::Computing);
        let gen = self.generation(fam);
        self.schedule(now + duration, Event::ComputeDone(fam as u32, gen));
    }

    /// After compute or after a child finished: start the next child or
    /// finish the current invocation.
    fn advance(&mut self, now: SimTime, fam: usize) -> Result<(), CoreError> {
        let (next_child, num_children, txn) = {
            let top = self.families[fam].top();
            (top.next_child, top.num_children, top.txn)
        };
        if next_child < num_children {
            let top = self.families[fam].top_mut();
            top.next_child += 1;
            let mut child_ptr = top.ptr.clone();
            child_ptr.push(next_child);
            return self.start_invocation(now, fam, child_ptr, Some(txn));
        }
        self.finish_invocation(now, fam)
    }

    fn finish_invocation(&mut self, now: SimTime, fam: usize) -> Result<(), CoreError> {
        let (txn, abort) = {
            let top = self.families[fam].top();
            (top.txn, top.abort)
        };
        let is_root = self.families[fam].frames.len() == 1;
        let node = self.workload[fam].node;

        if abort {
            if is_root {
                // Programmed root fault: the family aborts permanently.
                self.abort_family_attempt(now, fam, false, true)?;
                return Ok(());
            }
            // Sub-transaction fault (Alg. 4.3 abort cases): undo, release to
            // retaining ancestors or globally, and let the parent continue.
            let subtree = self.tree.subtree_post_order(txn);
            let restored = self
                .recovery
                .rollback(txn.get(), &mut self.stores[node.index() as usize]);
            let undo_delay = self.config.costs.undo_per_page * restored.len() as u64;
            self.prof.enter(HostRegion::LockRelease);
            let rel = self
                .table
                .release_abort_probed(txn, &self.tree, now, &mut self.sink);
            self.prof.exit(HostRegion::LockRelease);
            self.tree.abort(txn);
            self.families[fam].discard_subtree_effects(&subtree);
            self.stats.subtxn_aborts += 1;
            if self.sink.enabled() {
                self.sink.emit(ObsEvent {
                    at: now,
                    node: node.index(),
                    kind: ObsEventKind::SubAbort {
                        family: fam as u64,
                        txn: txn.get(),
                        released: rel.released.len() as u32,
                    },
                });
                self.sink.emit(ObsEvent {
                    at: now,
                    node: node.index(),
                    kind: ObsEventKind::SpanClose {
                        family: fam as u64,
                        txn: txn.get(),
                        outcome: SpanOutcome::Abort,
                    },
                });
            }
            // Globally released locks (no retaining ancestor) forward to
            // GlobalLockRelease with no dirty info (Alg. 4.3).
            if !rel.released.is_empty() {
                self.trace.push(TraceEvent::SubAbortRelease {
                    at: now,
                    family: self.tree.root_of(txn).get(),
                    node,
                    released: rel.released.clone(),
                });
                for object in &rel.released {
                    let home = self.config.gdo_home(*object);
                    let bytes = self.config.sizes.lock_release(0);
                    self.send_lossy(MessageKind::LockRelease, node, home, *object, bytes, None);
                    self.replicate_gdo(*object, bytes);
                }
            }
            for grant in &rel.grants {
                self.deliver_grant(now, grant);
            }
            self.families[fam].frames.pop();
            let gen = self.generation(fam);
            self.schedule(
                now + undo_delay + self.config.costs.local_lock_op,
                Event::Continue(fam as u32, gen),
            );
            return Ok(());
        }

        self.feedback_profile(now, fam);

        if is_root {
            return self.commit_root(now, fam);
        }

        // Sub-transaction pre-commit: parent inherits and retains (rule 3);
        // purely local.
        let parent = self.tree.parent(txn).expect("non-root has a parent");
        self.prof.enter(HostRegion::LockRelease);
        self.table
            .release_pre_commit_probed(txn, &self.tree, now, &mut self.sink);
        self.prof.exit(HostRegion::LockRelease);
        if self.sink.enabled() {
            self.sink.emit(ObsEvent {
                at: now,
                node: node.index(),
                kind: ObsEventKind::SpanClose {
                    family: fam as u64,
                    txn: txn.get(),
                    outcome: SpanOutcome::PreCommit,
                },
            });
        }
        self.recovery.inherit(txn.get(), parent.get());
        self.tree.pre_commit(txn);
        self.families[fam].frames.pop();
        let gen = self.generation(fam);
        self.schedule(
            now + self.config.costs.local_lock_op,
            Event::Continue(fam as u32, gen),
        );
        Ok(())
    }

    /// Feeds the invocation's observed access set back into the adaptive
    /// predictor at (pre-)commit. Under-predicted pages expand the profile
    /// immediately; pages untouched for a full confidence window shrink it
    /// (never below the static must-access floor). Aborted invocations do
    /// not feed back — their access sets may be partial.
    fn feedback_profile(&mut self, now: SimTime, fam: usize) {
        if self.predictor.is_none() {
            return;
        }
        let (object, method, path) = {
            let top = self.families[fam].top();
            (top.object, top.method, top.path)
        };
        let class = self.registry.object(object).class;
        if !self.config.protocol_for(class).uses_prediction() {
            return;
        }
        let actual = self
            .registry
            .class_of(object)
            .path_access(method, path)
            .touched();
        let delta = self
            .predictor
            .as_mut()
            .expect("checked above")
            .observe(class, method, &actual);
        self.stats.profile_expansions += delta.expanded.len() as u64;
        self.stats.profile_shrinks += delta.shrunk.len() as u64;
        if !delta.is_empty() && self.sink.enabled() {
            let profile = self
                .predictor
                .as_ref()
                .expect("checked above")
                .profile(class, method);
            let (predicted, observations) =
                (profile.predicted().len() as u32, profile.observations());
            self.sink.emit(ObsEvent {
                at: now,
                node: self.workload[fam].node.index(),
                kind: ObsEventKind::ProfileUpdate {
                    class: class.index(),
                    method: method.index(),
                    expanded: delta.expanded.iter().map(|p| p.get()).collect(),
                    shrunk: delta.shrunk.iter().map(|p| p.get()).collect(),
                    predicted,
                    observations,
                },
            });
        }
    }

    fn commit_root(&mut self, now: SimTime, fam: usize) -> Result<(), CoreError> {
        let root = self.families[fam].root_txn.expect("root txn exists");
        let node = self.workload[fam].node;
        let dirty = self.families[fam].surviving_dirty();

        self.prof.enter(HostRegion::LockRelease);
        let rel = self.table.release_root_commit_probed(
            root,
            &self.tree,
            &dirty,
            node,
            now,
            &mut self.sink,
        );
        self.prof.exit(HostRegion::LockRelease);

        // Publish local pages at their new per-page versions.
        for (object, pages) in &dirty {
            for &page in pages {
                let v = self
                    .table
                    .entry(*object)
                    .expect("registered")
                    .page_map()
                    .location(page)
                    .version;
                self.stores[node.index() as usize]
                    .publish_page(PageId::new(*object, page.get()), v);
            }
        }

        // Release messages: dirty info piggybacked per object (Alg. 4.4).
        for object in &rel.released {
            let home = self.config.gdo_home(*object);
            let n_dirty = dirty
                .iter()
                .find(|(o, _)| o == object)
                .map_or(0, |(_, p)| p.len());
            let bytes = self.config.sizes.lock_release(n_dirty);
            self.send_lossy(MessageKind::LockRelease, node, home, *object, bytes, None);
            self.replicate_gdo(*object, bytes);
        }

        // RC extension: eagerly push updates to every other caching site
        // (per-class: only for objects whose class runs RC).
        {
            for (object, pages) in &dirty {
                if !self
                    .config
                    .protocol_for(self.registry.object(*object).class)
                    .pushes_on_commit()
                {
                    continue;
                }
                let sites: Vec<NodeId> = self
                    .table
                    .entry(*object)
                    .expect("registered")
                    .page_map()
                    .caching_sites()
                    .filter(|&s| s != node)
                    .collect();
                let copies: Vec<(PageId, Version, PageData)> = pages
                    .iter()
                    .map(|&p| self.current_page_copy(*object, p))
                    .collect();
                let bytes = transfer_message_bytes(self.config, self.registry, *object, pages);
                // On a multicast network one transmission reaches every
                // caching site; otherwise each site costs a unicast push.
                if self.config.multicast {
                    if let Some(&first) = sites.first() {
                        self.send_lossy(MessageKind::UpdatePush, node, first, *object, bytes, None);
                    }
                } else {
                    for &site in &sites {
                        self.send_lossy(MessageKind::UpdatePush, node, site, *object, bytes, None);
                    }
                }
                self.prof.enter(HostRegion::PageInstall);
                for site in sites {
                    for (pid, version, data) in &copies {
                        self.stores[site.index() as usize].install(*pid, *version, data.clone());
                    }
                }
                self.prof.exit(HostRegion::PageInstall);
            }
        }

        self.recovery.forget(root.get());
        self.tree.commit_root(root);
        self.trace.push(TraceEvent::RootCommit {
            at: now,
            family: root.get(),
            node,
            dirty,
            released: rel.released.clone(),
        });
        for grant in &rel.grants {
            self.deliver_grant(now, grant);
        }

        if self.sink.enabled() {
            self.sink.emit(ObsEvent {
                at: now,
                node: node.index(),
                kind: ObsEventKind::SpanClose {
                    family: fam as u64,
                    txn: root.get(),
                    outcome: SpanOutcome::Commit,
                },
            });
        }
        self.set_phase(now, fam, Phase::Done);
        let runtime = &mut self.families[fam];
        runtime.frames.clear();
        self.stats.committed_families += 1;
        let latency = now.duration_since(runtime.arrival);
        runtime.commit_latency = Some(latency);
        self.stats.total_latency += latency;
        self.stats.latency_histogram.record(latency.as_nanos());
        self.stats.latency_sketch.record(latency.as_nanos());
        self.stats.makespan = self.stats.makespan.max(now.duration_since(SimTime::ZERO));
        let ops = std::mem::take(&mut runtime.ops);
        let index = runtime.index;
        self.committed.push(CommittedFamily {
            family: root.get(),
            index,
            ops: ops.into_iter().map(|o| o.op).collect(),
        });
        Ok(())
    }

    // ---- forensics ---------------------------------------------------

    /// Snapshots the black box at an anomaly: the flight-recorder ring,
    /// live lock-table occupancy, the waits-for edges (the incremental
    /// graph, cross-checked here against a from-scratch
    /// [`lotec_txn::deadlock::reference`] rebuild — a forensics dump must
    /// be evidence, not a hypothesis), and per-family span state.
    ///
    /// A no-op when the sink carries no [`FlightRecorder`] or the run
    /// already captured [`MAX_FORENSICS_DUMPS`] dumps. Read-only over the
    /// simulation state, so capture can never perturb the run.
    fn capture_forensics(&mut self, now: SimTime, anomaly: Anomaly) {
        let Some(recorder) = self.sink.recorder() else {
            return;
        };
        if self.forensics.len() >= MAX_FORENSICS_DUMPS {
            return;
        }
        let events = recorder.snapshot();
        let recorded = recorder.recorded();
        let dropped = recorder.dropped();
        let incremental = self.table.waits_for().to_reference();
        let reference = lotec_txn::deadlock::reference::waits_for(&self.table, &self.tree);
        assert_eq!(
            incremental, reference,
            "incremental waits-for graph diverged from the reference rebuild at forensics capture"
        );
        let waits_for: Vec<(u64, Vec<u64>)> = reference
            .iter()
            .map(|(waiter, blockers)| (waiter.get(), blockers.iter().map(|b| b.get()).collect()))
            .collect();
        let mut roots: Vec<u64> = waits_for
            .iter()
            .flat_map(|(w, bs)| std::iter::once(*w).chain(bs.iter().copied()))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        let root_families: Vec<(u64, u64)> = roots
            .into_iter()
            .filter_map(|root| {
                self.root_to_family
                    .get(root as usize)
                    .filter(|&&f| f != u32::MAX)
                    .map(|&f| (root, u64::from(f)))
            })
            .collect();
        let occ = self.table.occupancy();
        let families = self
            .families
            .iter()
            .enumerate()
            .map(|(i, f)| FamilySnapshot {
                family: i as u64,
                phase: obs_phase(&f.phase),
                restarts: f.restarts,
            })
            .collect();
        self.forensics.push(ForensicsDump {
            seq: self.forensics.len() as u64,
            at_ns: now.as_nanos(),
            anomaly,
            recorded,
            dropped,
            occupancy: OccupancySnapshot {
                held: occ.held,
                retained: occ.retained,
                waiting: occ.waiting,
            },
            waits_for,
            root_families,
            families,
            events,
        });
    }

    // ---- deadlock handling -------------------------------------------

    /// `detector` is the GDO partition whose queueing triggered the check
    /// (named as the site of the probe's `Deadlock` events); `enqueued` is
    /// the family whose request was just queued.
    ///
    /// Cycles are broken at every enqueue and wait edges only disappear in
    /// between, so the graph is acyclic on entry and any new cycle runs
    /// through `enqueued` — when [`lotec_txn::may_deadlock_through`] (an
    /// O(1) in-edge lookup in the incremental graph) rules that out, the
    /// detector is skipped entirely; otherwise the first search walks
    /// only the nodes that can reach `enqueued`
    /// ([`lotec_txn::find_deadlock_cycle_through_probed`]). Once a victim
    /// has been aborted the regrants invalidate that reasoning, so
    /// subsequent loop iterations run the full detector.
    fn break_deadlocks(
        &mut self,
        now: SimTime,
        detector: NodeId,
        enqueued: TxnId,
    ) -> Result<(), CoreError> {
        if !lotec_txn::may_deadlock_through(&self.table, &self.tree, enqueued) {
            return Ok(());
        }
        let mut scoped = true;
        loop {
            let found = if scoped {
                lotec_txn::find_deadlock_cycle_through_probed(
                    &self.table,
                    &self.tree,
                    enqueued,
                    now,
                    detector.index(),
                    &mut self.sink,
                )
            } else {
                lotec_txn::find_deadlock_cycle_probed(
                    &self.table,
                    &self.tree,
                    now,
                    detector.index(),
                    &mut self.sink,
                )
            };
            scoped = false;
            let Some(cycle) = found else {
                return Ok(());
            };
            let victim_root = lotec_txn::pick_victim(&cycle);
            self.stats.deadlocks += 1;
            let fam = self.root_to_family[victim_root.get() as usize] as usize;
            debug_assert_ne!(fam, u32::MAX as usize, "victim family known");
            // Capture before the abort tears the cycle's edges down — the
            // dump must show the waits-for graph that convicted the victim.
            if self.sink.recorder().is_some() {
                let anomaly = Anomaly::DeadlockVictim {
                    cycle: cycle.iter().map(|t| t.get()).collect(),
                    cycle_families: cycle
                        .iter()
                        .map(|t| u64::from(self.root_to_family[t.get() as usize]))
                        .collect(),
                    victim: victim_root.get(),
                    family: fam as u64,
                };
                self.capture_forensics(now, anomaly);
            }
            self.abort_family_attempt(now, fam, true, true)?;
        }
    }

    /// Aborts a family's entire current attempt. With `restart` the family
    /// retries after an exponential backoff; without it the family fails
    /// permanently (programmed root fault). `node_alive` is false when the
    /// abort is a crash-abort: the dead node cannot send release messages,
    /// so lock reclamation is directory-initiated and message-free (the
    /// GDO still replicates its own mutation to its backups).
    fn abort_family_attempt(
        &mut self,
        now: SimTime,
        fam: usize,
        restart: bool,
        node_alive: bool,
    ) -> Result<(), CoreError> {
        let root = self.families[fam].root_txn.expect("attempt has a root");
        let node = self.workload[fam].node;
        let mut released = Vec::new();
        let mut grants = Vec::new();
        for txn in self.tree.active_subtree_post_order(root) {
            self.recovery
                .rollback(txn.get(), &mut self.stores[node.index() as usize]);
            self.prof.enter(HostRegion::LockRelease);
            let rel = self
                .table
                .release_abort_probed(txn, &self.tree, now, &mut self.sink);
            self.prof.exit(HostRegion::LockRelease);
            released.extend(rel.released);
            grants.extend(rel.grants);
            self.tree.abort(txn);
            if self.sink.enabled() {
                self.sink.emit(ObsEvent {
                    at: now,
                    node: node.index(),
                    kind: ObsEventKind::SpanClose {
                        family: fam as u64,
                        txn: txn.get(),
                        outcome: if node_alive {
                            SpanOutcome::Abort
                        } else {
                            SpanOutcome::CrashAbort
                        },
                    },
                });
            }
        }
        self.prof.enter(HostRegion::LockRelease);
        let touched = self.table.cancel_family_waiters(root, &self.tree);
        debug_assert!(touched.len() <= 1, "a family has one outstanding request");
        grants.extend(
            self.table
                .regrant_probed(&touched, &self.tree, now, &mut self.sink),
        );
        self.prof.exit(HostRegion::LockRelease);
        // Each globally released lock costs an (empty) release message to
        // its GDO partition — unless the node is dead, in which case the
        // directory reclaims the locks without hearing from it.
        for object in &released {
            let home = self.config.gdo_home(*object);
            let bytes = self.config.sizes.lock_release(0);
            if node_alive {
                self.send_lossy(MessageKind::LockRelease, node, home, *object, bytes, None);
            }
            self.replicate_gdo(*object, bytes);
        }
        self.trace.push(TraceEvent::FamilyAbort {
            at: now,
            family: root.get(),
            node,
            released,
            cancelled_request: touched.first().copied(),
        });
        self.set_phase(
            now,
            fam,
            if restart {
                Phase::Restarting
            } else {
                Phase::Failed
            },
        );
        self.families[fam].reset_for_restart();

        if restart {
            self.families[fam].restarts += 1;
            self.stats.restarts += 1;
            let restarts = self.families[fam].restarts;
            if restarts > self.config.max_restarts {
                return Err(CoreError::RestartBudgetExhausted {
                    family_index: fam,
                    restarts,
                });
            }
            let base = self.config.costs.retry_backoff_base;
            let backoff = base * (1u64 << (restarts - 1).min(10))
                + SimDuration::from_nanos(self.jitter_rng.next_below(base.as_nanos().max(1)));
            if self.sink.enabled() {
                self.sink.emit(ObsEvent {
                    at: now,
                    node: node.index(),
                    kind: ObsEventKind::Restart {
                        family: fam as u64,
                        attempt: restarts,
                        backoff_ns: backoff.as_nanos(),
                    },
                });
            }
            // Scheduled after `reset_for_restart`, so the event carries the
            // *new* generation and survives the staleness check.
            let gen = self.generation(fam);
            self.schedule(now + backoff, Event::Restart(fam as u32, gen));
        } else {
            self.stats.aborted_families += 1;
        }
        for grant in &grants {
            self.deliver_grant(now, grant);
        }
        Ok(())
    }

    // ---- fault handling -----------------------------------------------

    /// A queued lock request outlived its RPC timeout: the waiter gives
    /// up, the directory drops its queue entry (unblocking anyone FIFO'd
    /// behind it), and the request is re-issued — re-entering the queue at
    /// the tail, or granted outright if the conflict has cleared.
    fn on_lock_timeout(&mut self, now: SimTime, fam: usize, gen: u32) -> Result<(), CoreError> {
        if self.is_stale(fam, gen) || self.families[fam].phase != Phase::WaitingGrant {
            // The wait already ended (grant, abort, or crash) — nothing to
            // time out.
            return Ok(());
        }
        let root = self.families[fam]
            .root_txn
            .expect("waiting family has a root");
        let (txn, object) = {
            let top = self.families[fam].top();
            (top.txn, top.object)
        };
        let waited = now.saturating_duration_since(self.families[fam].phase_entered);
        self.prof.enter(HostRegion::LockRelease);
        let touched = self.table.cancel_family_waiters(root, &self.tree);
        debug_assert_eq!(touched, vec![object], "family waits on its top object");
        let grants = self
            .table
            .regrant_probed(&touched, &self.tree, now, &mut self.sink);
        self.prof.exit(HostRegion::LockRelease);
        self.stats.lock_timeouts += 1;
        if self.sink.enabled() {
            self.sink.emit(ObsEvent {
                at: now,
                node: self.workload[fam].node.index(),
                kind: ObsEventKind::LockTimeout {
                    object: object.index(),
                    txn: txn.get(),
                    waited_ns: waited.as_nanos(),
                },
            });
        }
        if self.sink.recorder().is_some() {
            self.capture_forensics(
                now,
                Anomaly::LockTimeout {
                    object: object.index(),
                    txn: txn.get(),
                    family: fam as u64,
                    waited_ns: waited.as_nanos(),
                },
            );
        }
        for grant in &grants {
            self.deliver_grant(now, grant);
        }
        self.request_lock(now, fam)
    }

    /// A scheduled crash window opens. Families running at the dead node
    /// lose their in-flight attempt (crash-abort with directory-initiated
    /// lock reclamation — retained locks of the whole subtree included),
    /// the node's page caches go cold, and every page it owned is
    /// repointed at a surviving same-version copy where one exists. A page
    /// with no surviving copy keeps its owner: the node's stable storage
    /// preserves committed versions across the outage, and requests for it
    /// simply wait out the blackout (see [`plan_delivery`]).
    fn on_node_crash(&mut self, now: SimTime, window: usize) -> Result<(), CoreError> {
        let w = self.config.faults.plan.crashes[window];
        let node = w.node;
        self.stats.crashes += 1;

        // Adaptive profiles learned against the pre-crash placement are
        // invalidated wholesale: the crash cold-starts caches and repoints
        // page owners, so stale confidence is dangerous. Every profile
        // restarts from the static baseline and re-learns over a fresh
        // window.
        if let Some(predictor) = self.predictor.as_mut() {
            predictor.reset_all();
            self.stats.profile_resets += 1;
        }

        // Crash-abort in-flight attempts. Families merely backing off (or
        // not yet arrived) keep their state; their Start/Restart defers
        // until the node is back up.
        let victims: Vec<usize> = self
            .families
            .iter()
            .enumerate()
            .filter(|&(i, f)| {
                self.workload[i].node == node
                    && matches!(
                        f.phase,
                        Phase::WaitingGrant
                            | Phase::GrantInFlight { .. }
                            | Phase::Fetching
                            | Phase::Computing
                    )
            })
            .map(|(i, _)| i)
            .collect();
        for &fam in &victims {
            self.abort_family_attempt(now, fam, true, false)?;
        }
        self.stats.crash_aborts += victims.len() as u64;

        // Directory repair: repoint owned pages at surviving same-version
        // copies. Read-only scan first, then apply, to keep the borrows
        // disjoint.
        let registry = self.registry;
        let config = self.config;
        let mut repairs: Vec<(ObjectId, PageIndex, NodeId)> = Vec::new();
        for inst in registry.objects() {
            let entry = self.table.entry(inst.id).expect("registered");
            for (page, loc) in entry.page_map().entries() {
                if loc.node != node {
                    continue;
                }
                let pid = PageId::new(inst.id, page.get());
                let survivor = (0..config.num_nodes).map(NodeId::new).find(|&s| {
                    s != node
                        && !config.faults.plan.is_down(s, now)
                        && self.stores[s.index() as usize].version_of(pid) == Some(loc.version)
                });
                if let Some(s) = survivor {
                    repairs.push((inst.id, page, s));
                }
            }
        }
        for &(object, page, survivor) in &repairs {
            self.table
                .entry_mut(object)
                .expect("registered")
                .page_map_mut()
                .reassign_owner(page, survivor);
            if self.sink.enabled() {
                self.sink.emit(ObsEvent {
                    at: now,
                    node: node.index(),
                    kind: ObsEventKind::PageMapRepaired {
                        object: object.index(),
                        page: page.get(),
                        from: node.index(),
                        to: survivor.index(),
                    },
                });
            }
        }

        // Cold caches: evict every page the node no longer owns and fix
        // the caching-site sets.
        for inst in registry.objects() {
            let mut still_owner = false;
            for p in 0..registry.num_pages(inst.id) {
                let owner = self
                    .table
                    .entry(inst.id)
                    .expect("registered")
                    .page_map()
                    .location(PageIndex::new(p))
                    .node;
                if owner == node {
                    still_owner = true;
                } else {
                    self.stores[node.index() as usize].evict(PageId::new(inst.id, p));
                }
            }
            let map = self
                .table
                .entry_mut(inst.id)
                .expect("registered")
                .page_map_mut();
            map.forget_caching_site(node);
            if still_owner {
                // Stable storage still holds pages the directory could not
                // repoint; the node stays a (consistent) caching site.
                map.record_cached(node);
            }
        }

        if self.sink.enabled() {
            self.sink.emit(ObsEvent {
                at: now,
                node: node.index(),
                kind: ObsEventKind::NodeCrashed {
                    aborted_families: victims.len() as u32,
                },
            });
        }
        if self.sink.recorder().is_some() {
            self.capture_forensics(
                now,
                Anomaly::CrashRepair {
                    node: node.index(),
                    aborted_families: victims.len() as u32,
                    repairs: repairs.len() as u32,
                },
            );
        }
        Ok(())
    }

    /// A crash window closes: the node is reachable again (pending
    /// retransmissions land, deferred starts fire). Pure observability —
    /// the blackout arithmetic itself lives in the fault plan.
    fn on_node_recover(&mut self, _now: SimTime, window: usize) {
        let w = self.config.faults.plan.crashes[window];
        if self.sink.enabled() {
            self.sink.emit(ObsEvent {
                at: w.until,
                node: w.node.index(),
                kind: ObsEventKind::NodeRecovered {
                    outage_ns: w.until.duration_since(w.at).as_nanos(),
                },
            });
        }
    }

    // ---- reporting ----------------------------------------------------

    fn collect_final_chains(&self) -> BTreeMap<(ObjectId, PageIndex), u64> {
        let mut out = BTreeMap::new();
        for inst in self.registry.objects() {
            let entry = self.table.entry(inst.id).expect("registered");
            for (page, loc) in entry.page_map().entries() {
                let chain =
                    self.stores[loc.node.index() as usize].chain(PageId::new(inst.id, page.get()));
                out.insert((inst.id, page), chain);
            }
        }
        out
    }
}

/// Convenience wrapper: build and run an engine in one call.
///
/// ```
/// use lotec_core::engine::run_engine;
/// use lotec_core::spec::demo_workload;
/// use lotec_core::{oracle, SystemConfig};
///
/// let config = SystemConfig::default();
/// let (registry, families) = demo_workload(&config, 7);
/// let report = run_engine(&config, &registry, &families)?;
/// oracle::verify(&report)?;
/// assert_eq!(report.stats.committed_families as usize, families.len());
/// # Ok::<(), lotec_core::CoreError>(())
/// ```
///
/// # Errors
///
/// See [`Engine::new`] and [`Engine::run`].
pub fn run_engine(
    config: &SystemConfig,
    registry: &ObjectRegistry,
    workload: &[FamilySpec],
) -> Result<RunReport, CoreError> {
    Engine::new(config, registry, workload)?.run()
}

/// Like [`run_engine`], but with probe instrumentation delivered to
/// `sink`. Lend a [`lotec_obs::RecordingSink`] (`&mut sink`) to keep the
/// recorded events after the run:
///
/// ```
/// use lotec_core::engine::run_engine_with_probe;
/// use lotec_core::spec::demo_workload;
/// use lotec_core::SystemConfig;
/// use lotec_obs::RecordingSink;
///
/// let config = SystemConfig::default();
/// let (registry, families) = demo_workload(&config, 7);
/// let mut sink = RecordingSink::new();
/// let report = run_engine_with_probe(&config, &registry, &families, &mut sink)?;
/// assert_eq!(report.stats.committed_families as usize, families.len());
/// assert!(!sink.is_empty(), "a run emits events");
/// # Ok::<(), lotec_core::CoreError>(())
/// ```
///
/// # Errors
///
/// See [`Engine::new`] and [`Engine::run`].
pub fn run_engine_with_probe<S: EventSink>(
    config: &SystemConfig,
    registry: &ObjectRegistry,
    workload: &[FamilySpec],
    sink: S,
) -> Result<RunReport, CoreError> {
    Engine::with_probe(config, registry, workload, sink)?.run()
}

/// Like [`run_engine`], but with an always-on black box: the run records
/// into a [`FlightRecorder`] ring sized by
/// [`SystemConfig::flight_recorder`], and any anomaly (deadlock-victim
/// selection, lock timeout, crash repair) snapshots it into
/// [`RunReport::forensics`]. Returns the recorder alongside the report so
/// callers can also dump post-run anomalies (e.g. an oracle violation)
/// from the same ring.
///
/// ```
/// use lotec_core::engine::run_engine_recorded;
/// use lotec_core::spec::demo_workload;
/// use lotec_core::SystemConfig;
///
/// let config = SystemConfig::default().with_flight_recorder(512);
/// let (registry, families) = demo_workload(&config, 7);
/// let (report, recorder) = run_engine_recorded(&config, &registry, &families)?;
/// assert_eq!(report.stats.committed_families as usize, families.len());
/// assert!(recorder.recorded() > 0, "a run emits events");
/// # Ok::<(), lotec_core::CoreError>(())
/// ```
///
/// # Errors
///
/// See [`Engine::new`] and [`Engine::run`].
pub fn run_engine_recorded(
    config: &SystemConfig,
    registry: &ObjectRegistry,
    workload: &[FamilySpec],
) -> Result<(RunReport, FlightRecorder), CoreError> {
    let mut recorder = FlightRecorder::new(config.flight_recorder.slots as usize);
    let report = Engine::with_probe(config, registry, workload, &mut recorder)?.run()?;
    Ok((report, recorder))
}

/// Like [`run_engine_with_probe`], but with both instrumentation planes:
/// `sink` for sim-time probe events, `prof` for host-plane wall-clock
/// self-profiling. Lend a [`lotec_obs::WallProfiler`] (`&mut prof`) to
/// keep the profile after the run:
///
/// ```
/// use lotec_core::engine::run_engine_instrumented;
/// use lotec_core::spec::demo_workload;
/// use lotec_core::SystemConfig;
/// use lotec_obs::{NoopSink, WallProfiler};
///
/// let config = SystemConfig::default();
/// let (registry, families) = demo_workload(&config, 7);
/// let mut prof = WallProfiler::new();
/// let report =
///     run_engine_instrumented(&config, &registry, &families, NoopSink, &mut prof)?;
/// assert_eq!(report.stats.committed_families as usize, families.len());
/// let profile = prof.into_profile();
/// assert!(profile.total_count() > 0, "a run records host regions");
/// # Ok::<(), lotec_core::CoreError>(())
/// ```
///
/// To additionally time the sink's own recording cost
/// ([`lotec_obs::HostRegion`]`::ObsRecord`), wrap the sink in a
/// [`lotec_obs::ProfiledSink`] backed by a *second* `WallProfiler` and
/// [`merge`](lotec_obs::HostProfile::merge) the two profiles afterwards
/// (the engine and the sink wrapper each need exclusive access to theirs).
///
/// # Errors
///
/// See [`Engine::new`] and [`Engine::run`].
pub fn run_engine_instrumented<S: EventSink, P: HostProfiler>(
    config: &SystemConfig,
    registry: &ObjectRegistry,
    workload: &[FamilySpec],
    sink: S,
    prof: P,
) -> Result<RunReport, CoreError> {
    Engine::with_instruments(config, registry, workload, sink, prof)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::spec::demo_workload;

    fn run_demo(protocol: ProtocolKind, seed: u64) -> RunReport {
        let config = SystemConfig {
            protocol,
            seed,
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&config, seed);
        run_engine(&config, &registry, &families).expect("demo runs")
    }

    #[test]
    fn demo_workload_commits_every_family() {
        let report = run_demo(ProtocolKind::Lotec, 1);
        assert_eq!(report.stats.committed_families, 8);
        assert_eq!(report.stats.aborted_families, 0);
        assert_eq!(report.trace.num_commits(), 8);
        assert!(report.trace.num_grants() >= 8);
        assert!(report.traffic.total().messages > 0);
    }

    #[test]
    fn all_protocols_run_and_are_serializable() {
        for protocol in ProtocolKind::ALL {
            let report = run_demo(protocol, 2);
            assert_eq!(report.stats.committed_families, 8, "{protocol}");
            oracle::verify(&report).unwrap_or_else(|e| panic!("{protocol}: {e}"));
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let a = run_demo(ProtocolKind::Lotec, 5);
        let b = run_demo(ProtocolKind::Lotec, 5);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.traffic.total(), b.traffic.total());
        assert_eq!(a.final_chains, b.final_chains);
        assert_eq!(a.stats.makespan, b.stats.makespan);
    }

    #[test]
    fn engine_ledger_matches_replay_of_own_trace() {
        for protocol in ProtocolKind::ALL {
            let config = SystemConfig {
                protocol,
                ..SystemConfig::default()
            };
            let (registry, families) = demo_workload(&config, 3);
            let report = run_engine(&config, &registry, &families).unwrap();
            let replayed = crate::replay::replay_trace(protocol, &report.trace, &registry, &config);
            assert_eq!(
                report.traffic.total(),
                replayed.total(),
                "{protocol}: engine and replay accounting diverged"
            );
            for inst in registry.objects() {
                assert_eq!(
                    report.traffic.object(inst.id),
                    replayed.object(inst.id),
                    "{protocol}/{}: per-object accounting diverged",
                    inst.id
                );
            }
        }
    }

    #[test]
    fn mixed_per_class_protocols_run_and_match_replay() {
        use lotec_object::ClassId;
        // Demo workload has class 0 = Container, class 1 = Item. Put the
        // small hot Items under RC and the big Containers under LOTEC.
        let config = SystemConfig::default()
            .with_class_protocol(ClassId::new(1), ProtocolKind::ReleaseConsistency);
        assert!(config.is_mixed_protocol());
        let (registry, families) = crate::spec::demo_workload(&config, 6);
        let report = run_engine(&config, &registry, &families).unwrap();
        crate::oracle::verify(&report).expect("mixed protocols stay serializable");

        // Engine accounting must equal the assignment-aware replay.
        let replayed = crate::replay::replay_run(&report.trace, &registry, &config);
        assert_eq!(report.traffic.total(), replayed.total());

        // Eager pushes exist (the RC class commits updates) ...
        let pushes = report.traffic.ledger().kind(MessageKind::UpdatePush);
        assert!(pushes.messages > 0, "the RC class must push");
        // ... but only Item (class 1) objects ever receive them.
        for inst in registry.objects() {
            if inst.class == ClassId::new(0) {
                // Containers run LOTEC: a pure-LOTEC uniform replay of the
                // same trace charges them identically.
                let uniform = crate::replay::replay_trace(
                    ProtocolKind::Lotec,
                    &report.trace,
                    &registry,
                    &config,
                );
                assert_eq!(
                    report.traffic.object(inst.id),
                    uniform.object(inst.id),
                    "{}: LOTEC-class object accounting must match uniform LOTEC",
                    inst.id
                );
            }
        }
    }

    #[test]
    fn adaptive_run_is_serializable_and_matches_replay() {
        let config = SystemConfig {
            adaptive: crate::config::AdaptiveConfig {
                enabled: true,
                window: 2,
            },
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&config, 11);
        let report = run_engine(&config, &registry, &families).unwrap();
        assert_eq!(report.stats.committed_families, 8);
        oracle::verify(&report).expect("adaptive runs stay serializable");
        let replayed = crate::replay::replay_run(&report.trace, &registry, &config);
        assert_eq!(
            report.traffic.total(),
            replayed.total(),
            "adaptive engine and replay accounting diverged"
        );
        for inst in registry.objects() {
            assert_eq!(
                report.traffic.object(inst.id),
                replayed.object(inst.id),
                "{}: adaptive per-object accounting diverged",
                inst.id
            );
        }
    }

    #[test]
    fn adaptive_profiles_learn_on_demo_workload() {
        // Window 1 trims a page after a single untouched observation, so
        // any `rebuild` invocation that takes the index-only path trims
        // the bulk pages out of the profile.
        let config = SystemConfig {
            adaptive: crate::config::AdaptiveConfig {
                enabled: true,
                window: 1,
            },
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&config, 11);
        let report = run_engine(&config, &registry, &families).unwrap();
        // The static predictions are conservative supersets of every
        // path's access set, so on a path-varying workload learning must
        // trim something; no crashes means no resets.
        assert!(
            report.stats.profile_shrinks > 0,
            "over-predicted pages must be trimmed"
        );
        assert_eq!(report.stats.profile_resets, 0);
        oracle::verify(&report).expect("trimmed profiles stay sound");
    }

    #[test]
    fn adaptive_off_takes_the_static_path() {
        // Belt and braces on top of the golden fingerprints: a run with
        // the adaptive block left at its default must be bit-identical to
        // one that never mentions it.
        let explicit = SystemConfig {
            adaptive: crate::config::AdaptiveConfig::default(),
            ..SystemConfig::default()
        };
        let implicit = SystemConfig::default();
        let (registry, families) = demo_workload(&implicit, 9);
        let a = run_engine(&explicit, &registry, &families).unwrap();
        let b = run_engine(&implicit, &registry, &families).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.traffic.total(), b.traffic.total());
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.stats.profile_shrinks + a.stats.profile_expansions, 0);
    }

    #[test]
    fn per_class_override_falls_back_to_default() {
        use lotec_object::ClassId;
        let config =
            SystemConfig::default().with_class_protocol(ClassId::new(1), ProtocolKind::Cotec);
        assert_eq!(config.protocol_for(ClassId::new(1)), ProtocolKind::Cotec);
        assert_eq!(config.protocol_for(ClassId::new(0)), ProtocolKind::Lotec);
        let uniform = SystemConfig::default();
        assert!(!uniform.is_mixed_protocol());
    }

    #[test]
    fn lock_prefetch_hides_latency_without_changing_traffic() {
        let base = SystemConfig {
            seed: 9,
            ..SystemConfig::default()
        };
        let (registry, families) = crate::spec::demo_workload(&base, 9);
        let plain = run_engine(&base, &registry, &families).unwrap();
        let pre_cfg = SystemConfig {
            lock_prefetch: true,
            ..base
        };
        let prefetched = run_engine(&pre_cfg, &registry, &families).unwrap();

        crate::oracle::verify(&prefetched).expect("prefetching preserves correctness");
        assert!(
            prefetched.stats.prefetch_hits > 0,
            "nested demo must prefetch"
        );
        assert!(
            prefetched.stats.prefetch_saved > lotec_sim::SimDuration::ZERO,
            "some latency must be absorbed"
        );
        // Same messages and bytes: prefetching only moves them earlier.
        assert_eq!(plain.traffic.total(), prefetched.traffic.total());
        // Latency must not get worse.
        assert!(
            prefetched.stats.total_latency <= plain.stats.total_latency,
            "prefetch {} > plain {}",
            prefetched.stats.total_latency,
            plain.stats.total_latency
        );
    }

    #[test]
    fn multicast_collapses_rc_pushes_and_matches_replay() {
        let unicast = SystemConfig {
            protocol: ProtocolKind::ReleaseConsistency,
            ..SystemConfig::default()
        };
        let (registry, families) = crate::spec::demo_workload(&unicast, 12);
        let uni = run_engine(&unicast, &registry, &families).unwrap();
        let multicast_cfg = SystemConfig {
            multicast: true,
            ..unicast.clone()
        };
        let multi = run_engine(&multicast_cfg, &registry, &families).unwrap();
        crate::oracle::verify(&multi).expect("multicast preserves correctness");

        let uni_push = uni.traffic.ledger().kind(MessageKind::UpdatePush);
        let multi_push = multi.traffic.ledger().kind(MessageKind::UpdatePush);
        assert!(uni_push.messages > 0);
        assert!(
            multi_push.messages < uni_push.messages,
            "multicast must collapse pushes: {} vs {}",
            multi_push.messages,
            uni_push.messages
        );
        // Replay under the same multicast flag matches the engine.
        let replayed = crate::replay::replay_run(&multi.trace, &registry, &multicast_cfg);
        assert_eq!(multi.traffic.total(), replayed.total());
    }

    #[test]
    fn dsd_transfers_shrink_bytes_and_match_replay() {
        let page_cfg = SystemConfig {
            seed: 21,
            ..SystemConfig::default()
        };
        let (registry, families) = crate::spec::demo_workload(&page_cfg, 21);
        let page_run = run_engine(&page_cfg, &registry, &families).unwrap();
        let dsd_cfg = SystemConfig {
            dsd_transfers: true,
            ..page_cfg
        };
        let dsd_run = run_engine(&dsd_cfg, &registry, &families).unwrap();
        crate::oracle::verify(&dsd_run).expect("dsd mode stays serializable");

        assert!(
            dsd_run.traffic.total().bytes < page_run.traffic.total().bytes,
            "dsd must shave partial-page fragmentation: {} vs {}",
            dsd_run.traffic.total().bytes,
            page_run.traffic.total().bytes
        );
        assert_eq!(
            dsd_run.traffic.total().messages,
            page_run.traffic.total().messages,
            "dsd changes sizes, not message structure"
        );
        let replayed = crate::replay::replay_run(&dsd_run.trace, &registry, &dsd_cfg);
        assert_eq!(dsd_run.traffic.total(), replayed.total());
    }

    #[test]
    fn central_gdo_matches_replay_and_costs_more_lock_traffic() {
        use crate::config::GdoPlacement;
        let part_cfg = SystemConfig {
            seed: 31,
            ..SystemConfig::default()
        };
        let (registry, families) = crate::spec::demo_workload(&part_cfg, 31);
        let part = run_engine(&part_cfg, &registry, &families).unwrap();
        let central_cfg = SystemConfig {
            gdo_placement: GdoPlacement::Central(NodeId::new(0)),
            ..part_cfg
        };
        let central = run_engine(&central_cfg, &registry, &families).unwrap();
        crate::oracle::verify(&central).expect("central GDO stays serializable");
        let replayed = crate::replay::replay_run(&central.trace, &registry, &central_cfg);
        assert_eq!(central.traffic.total(), replayed.total());
        // Every lock op from a non-directory node pays messages under the
        // central design; partitioning gives each node a local share.
        let lock_msgs = |r: &RunReport| {
            r.traffic.ledger().kind(MessageKind::LockRequest).messages
                + r.traffic.ledger().kind(MessageKind::LockGrant).messages
        };
        assert!(
            lock_msgs(&central) >= lock_msgs(&part),
            "central {} < partitioned {}",
            lock_msgs(&central),
            lock_msgs(&part)
        );
    }

    #[test]
    #[should_panic(expected = "central GDO node out of range")]
    fn central_gdo_node_validated() {
        use crate::config::GdoPlacement;
        let cfg = SystemConfig {
            gdo_placement: GdoPlacement::Central(NodeId::new(99)),
            ..SystemConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn gdo_replication_adds_small_messages_and_matches_replay() {
        let plain = SystemConfig {
            seed: 41,
            ..SystemConfig::default()
        };
        let (registry, families) = crate::spec::demo_workload(&plain, 41);
        let unreplicated = run_engine(&plain, &registry, &families).unwrap();
        let repl_cfg = SystemConfig {
            gdo_replication: 3,
            ..plain
        };
        let replicated = run_engine(&repl_cfg, &registry, &families).unwrap();
        crate::oracle::verify(&replicated).expect("replication is pure accounting");

        let repl = replicated.traffic.ledger().kind(MessageKind::GdoReplicate);
        assert!(repl.messages > 0, "factor 3 must replicate");
        assert_eq!(
            unreplicated
                .traffic
                .ledger()
                .kind(MessageKind::GdoReplicate)
                .messages,
            0,
            "factor 1 must not"
        );
        // Write-behind: the schedule itself is unchanged.
        assert_eq!(unreplicated.trace, replicated.trace);
        // Replay parity.
        let replayed = crate::replay::replay_run(&replicated.trace, &registry, &repl_cfg);
        assert_eq!(replicated.traffic.total(), replayed.total());
    }

    #[test]
    fn probed_run_matches_plain_run_and_accounts_phases() {
        let config = SystemConfig {
            seed: 7,
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&config, 7);
        let plain = run_engine(&config, &registry, &families).unwrap();
        let mut sink = lotec_obs::RecordingSink::new();
        let probed = run_engine_with_probe(&config, &registry, &families, &mut sink).unwrap();

        // Attaching a recording sink must not perturb the simulation.
        assert_eq!(plain.trace, probed.trace);
        assert_eq!(plain.traffic.total(), probed.traffic.total());
        assert_eq!(plain.final_chains, probed.final_chains);
        assert_eq!(plain.stats.makespan, probed.stats.makespan);
        assert_eq!(plain.stats.phases.aggregate, probed.stats.phases.aggregate);

        // The event stream is non-empty, time-ordered, and its replayed
        // phase attribution equals the engine's own accounting.
        let events = sink.events();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at, "events must be time-ordered");
        }
        let summary = lotec_obs::TraceSummary::of(events);
        assert_eq!(summary.aggregate, probed.stats.phases.aggregate);
        assert_eq!(summary.family_phases.len(), families.len());
        assert_eq!(
            summary
                .family_outcome
                .values()
                .filter(|&&p| p == lotec_obs::ObsPhase::Committed)
                .count() as u64,
            probed.stats.committed_families
        );

        // Phase accounting fills even the unprobed report: compute time is
        // nonzero and every family has a per-family entry.
        assert!(plain.stats.phases.aggregate.running > SimDuration::ZERO);
        assert_eq!(plain.stats.phases.per_family.len(), families.len());
        assert!(plain.stats.phases.per_family.iter().all(|f| f.committed));
    }

    #[test]
    fn per_family_phases_off_drops_rows_and_nothing_else() {
        let base = SystemConfig {
            seed: 7,
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&base, 7);
        let with_rows = run_engine(&base, &registry, &families).unwrap();
        let flat_cfg = SystemConfig {
            per_family_phases: false,
            ..base
        };
        let flat = run_engine(&flat_cfg, &registry, &families).unwrap();

        // The flag is end-of-run bookkeeping: the simulation itself — the
        // schedule, the traffic, every aggregate stat — is untouched.
        assert_eq!(with_rows.trace, flat.trace);
        assert_eq!(with_rows.traffic.total(), flat.traffic.total());
        assert_eq!(with_rows.final_chains, flat.final_chains);
        assert_eq!(with_rows.stats.makespan, flat.stats.makespan);
        assert_eq!(
            with_rows.stats.phases.aggregate,
            flat.stats.phases.aggregate
        );
        assert_eq!(
            with_rows.stats.latency_sketch.count(),
            flat.stats.latency_sketch.count()
        );
        // Only the per-family rows differ: present on, absent off.
        assert_eq!(with_rows.stats.phases.per_family.len(), families.len());
        assert!(flat.stats.phases.per_family.is_empty());
    }

    fn lossy_plan() -> lotec_sim::FaultPlan {
        lotec_sim::FaultPlan {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            delay_prob: 0.10,
            max_extra_delay: SimDuration::from_micros(20),
            rto: SimDuration::from_micros(50),
            crashes: Vec::new(),
        }
    }

    #[test]
    fn lossy_links_commit_everything_and_stay_serializable() {
        for protocol in ProtocolKind::ALL {
            let config = SystemConfig {
                protocol,
                seed: 11,
                faults: crate::config::FaultConfig {
                    plan: lossy_plan(),
                    ..Default::default()
                },
                ..SystemConfig::default()
            };
            let (registry, families) = demo_workload(&config, 11);
            let report = run_engine(&config, &registry, &families).unwrap();
            assert_eq!(report.stats.committed_families, 8, "{protocol}");
            oracle::verify(&report).unwrap_or_else(|e| panic!("{protocol}: {e}"));
            assert!(report.stats.retransmits > 0, "{protocol}: drops must bite");
        }
    }

    #[test]
    fn lossy_runs_are_deterministic() {
        let run = || {
            let config = SystemConfig {
                seed: 13,
                faults: crate::config::FaultConfig {
                    plan: lossy_plan(),
                    ..Default::default()
                },
                ..SystemConfig::default()
            };
            let (registry, families) = demo_workload(&config, 13);
            run_engine(&config, &registry, &families).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.traffic.total(), b.traffic.total());
        assert_eq!(a.final_chains, b.final_chains);
        assert_eq!(a.stats.retransmits, b.stats.retransmits);
        assert_eq!(a.stats.makespan, b.stats.makespan);
    }

    #[test]
    fn retransmit_waits_book_as_backoff_and_phase_sums_hold() {
        let config = SystemConfig {
            seed: 17,
            faults: crate::config::FaultConfig {
                plan: lossy_plan(),
                ..Default::default()
            },
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&config, 17);
        let report = run_engine(&config, &registry, &families).unwrap();
        assert_eq!(report.stats.committed_families, 8);
        assert!(report.stats.retransmit_wait > SimDuration::ZERO);
        // The stall a family spends waiting on retransmissions is booked
        // as backoff, not smeared into lock/transfer wait...
        assert!(
            report.stats.phases.aggregate.backoff > SimDuration::ZERO,
            "retransmission stalls must surface in the backoff bucket"
        );
        // ...and the reattribution moves time between buckets without
        // creating or destroying any: per committed family, the phase sum
        // still equals the family's latency, so the aggregate equals the
        // total latency.
        assert_eq!(report.stats.phases.aggregate.total(), {
            let failed: SimDuration = report
                .stats
                .phases
                .per_family
                .iter()
                .filter(|f| !f.committed)
                .map(|f| f.times.total())
                .sum();
            report.stats.total_latency + failed
        });
    }

    #[test]
    fn node_crash_aborts_inflight_work_and_recovers() {
        // Calibrate the outage against the fault-free makespan so the
        // window is guaranteed to overlap live traffic.
        let base = SystemConfig {
            seed: 19,
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&base, 19);
        let plain = run_engine(&base, &registry, &families).unwrap();
        let makespan = plain.stats.makespan;
        let at = SimTime::ZERO + makespan / 8;
        let until = SimTime::ZERO + makespan / 2;
        let mut total_crash_aborts = 0;
        for node in 0..base.num_nodes {
            let config = SystemConfig {
                faults: crate::config::FaultConfig {
                    plan: lotec_sim::FaultPlan {
                        rto: SimDuration::from_micros(50),
                        crashes: vec![lotec_sim::CrashWindow {
                            node: NodeId::new(node),
                            at,
                            until,
                        }],
                        ..lotec_sim::FaultPlan::default()
                    },
                    ..Default::default()
                },
                ..base.clone()
            };
            let report = run_engine(&config, &registry, &families).unwrap();
            assert_eq!(report.stats.crashes, 1, "node {node}");
            assert_eq!(
                report.stats.committed_families, 8,
                "node {node}: every family must recover and commit"
            );
            oracle::verify(&report)
                .unwrap_or_else(|e| panic!("node {node}: crash recovery not serializable: {e}"));
            total_crash_aborts += report.stats.crash_aborts;
        }
        assert!(
            total_crash_aborts > 0,
            "a mid-run outage must catch in-flight families on some node"
        );
    }

    #[test]
    fn lock_timeouts_requeue_waiters_without_losing_commits() {
        let config = SystemConfig {
            seed: 23,
            faults: crate::config::FaultConfig {
                lock_timeout: SimDuration::from_micros(40),
                ..Default::default()
            },
            ..SystemConfig::default()
        };
        let (registry, families) = demo_workload(&config, 23);
        let report = run_engine(&config, &registry, &families).unwrap();
        assert!(
            report.stats.lock_timeouts > 0,
            "a tight timeout must fire on contended queues"
        );
        assert_eq!(report.stats.committed_families, 8);
        oracle::verify(&report).expect("timeouts preserve serializability");
    }

    #[test]
    fn disabled_faults_are_byte_identical_to_no_fault_config() {
        // `FaultConfig::default()` is structurally the no-fault config, so
        // this holds trivially at the config level; the stronger claim is
        // that a run with the fault machinery compiled in but disabled
        // matches the seed's historical accounting exactly (no stray RNG
        // draws, no extra ledger records, no phase reattribution).
        let report = run_demo(ProtocolKind::Lotec, 1);
        assert_eq!(report.stats.retransmits, 0);
        assert_eq!(report.stats.duplicates, 0);
        assert_eq!(report.stats.crashes, 0);
        assert_eq!(report.stats.lock_timeouts, 0);
        assert_eq!(report.stats.retransmit_wait, SimDuration::ZERO);
    }

    #[test]
    fn rc_sends_pushes_lotec_does_not() {
        let rc = run_demo(ProtocolKind::ReleaseConsistency, 4);
        let lotec = run_demo(ProtocolKind::Lotec, 4);
        assert!(rc.traffic.ledger().kind(MessageKind::UpdatePush).messages > 0);
        assert_eq!(
            lotec
                .traffic
                .ledger()
                .kind(MessageKind::UpdatePush)
                .messages,
            0
        );
    }
}
