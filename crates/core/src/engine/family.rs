//! Per-family execution state for the discrete-event engine.

use lotec_mem::{ObjectId, PageIndex};
use lotec_object::{MethodId, PathId};
use lotec_obs::PhaseTimes;
use lotec_sim::{SimDuration, SimTime};
use lotec_txn::TxnId;

use crate::spec::{FamilySpec, InvocationSpec};

/// Locates an invocation inside a family's spec tree: the sequence of
/// child indexes from the root.
pub(crate) type SpecPtr = Vec<usize>;

/// Resolves a [`SpecPtr`] against a family spec.
pub(crate) fn spec_at<'a>(family: &'a FamilySpec, ptr: &[usize]) -> &'a InvocationSpec {
    let mut cur = &family.root;
    for &idx in ptr {
        cur = &cur.children[idx];
    }
    cur
}

/// One frame of a family's invocation stack (the chain of currently active
/// nested invocations).
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// Where in the spec tree this invocation lives.
    pub ptr: SpecPtr,
    /// The transaction executing it.
    pub txn: TxnId,
    /// Receiver object (cached from the spec).
    pub object: ObjectId,
    /// Method (cached from the spec).
    pub method: MethodId,
    /// Chosen control path (cached from the spec).
    pub path: PathId,
    /// Index of the next child invocation to start.
    pub next_child: usize,
    /// Number of child invocations (cached from the spec, so the per-event
    /// advance path never re-walks the spec tree).
    pub num_children: usize,
    /// Whether this invocation is a programmed fault (cached from the spec).
    pub abort: bool,
}

/// What the family is currently doing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Not yet started (before its arrival event).
    NotStarted,
    /// Parked: its current lock request is queued at the GDO.
    WaitingGrant,
    /// Lock in flight: a grant message is travelling to the family's node.
    GrantInFlight {
        /// Whether the grant involved GDO communication.
        global: bool,
        /// Holder-list size carried by the grant message.
        holders: usize,
    },
    /// Gathering pages (page-transfer batches in flight).
    Fetching,
    /// Executing method code (compute delay in flight).
    Computing,
    /// Waiting out a restart backoff.
    Restarting,
    /// Root committed.
    Done,
    /// Aborted permanently (root fault injection or restart budget
    /// exhausted).
    Failed,
}

/// One data operation performed by a family, in chronological order.
///
/// The serializability oracle replays these per committed family, so reads
/// and writes must stay interleaved exactly as they executed (a child's
/// read can follow its parent's write to the same page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamilyOp {
    /// A page read observing a content chain.
    Read {
        /// Source object.
        object: ObjectId,
        /// Source page.
        page: PageIndex,
        /// Content-chain value observed.
        chain: u64,
    },
    /// A stamp folded into a page's content chain.
    Write {
        /// Target object.
        object: ObjectId,
        /// Target page.
        page: PageIndex,
        /// The stamp applied.
        stamp: u64,
    },
}

/// A [`FamilyOp`] tagged with the transaction that performed it, so an
/// aborted subtree's operations can be discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AttemptOp {
    pub txn: TxnId,
    pub op: FamilyOp,
}

/// Live execution state of one family.
#[derive(Debug, Clone)]
pub(crate) struct FamilyRuntime {
    /// Index into the workload's family list.
    pub index: usize,
    /// Root transaction of the current attempt.
    pub root_txn: Option<TxnId>,
    /// The invocation stack (root at position 0).
    pub frames: Vec<Frame>,
    /// Current phase.
    pub phase: Phase,
    /// Restarts performed so far.
    pub restarts: u32,
    /// Attempt generation, bumped on every reset. Timed events carry the
    /// generation they were scheduled under; a crash-abort invalidates the
    /// attempt's in-flight events by bumping this, so stale deliveries
    /// are recognized and dropped instead of corrupting the new attempt.
    pub generation: u32,
    /// Arrival time (first attempt) — end-to-end latency baseline.
    pub arrival: SimTime,
    /// Data operations of the current attempt, in execution order.
    pub ops: Vec<AttemptOp>,
    /// Extra compute-phase delay accumulated by demand fetches for the
    /// invocation currently being served.
    pub fetch_extra: SimDuration,
    /// For lock prefetching: when each pending invocation's lock request
    /// was optimistically issued (keyed by spec pointer).
    pub prefetch_at: std::collections::BTreeMap<SpecPtr, SimTime>,
    /// When the current phase was entered (phase-latency attribution).
    pub phase_entered: SimTime,
    /// Fault injection: retransmit wait baked into delays of events that
    /// have since fired — elapsed sender-idle time to be re-attributed
    /// from the enclosing phase to the backoff bucket at the next phase
    /// transition.
    pub ready_retransmit_wait: SimDuration,
    /// Fault injection: retransmit wait accrued *at the current instant*
    /// (the delayed event has not fired yet). Promoted into
    /// [`FamilyRuntime::ready_retransmit_wait`] once the clock moves past
    /// [`FamilyRuntime::fresh_wait_at`].
    pub fresh_retransmit_wait: SimDuration,
    /// Instant at which `fresh_retransmit_wait` was accrued.
    pub fresh_wait_at: SimTime,
    /// Cumulative time per coarse phase, across *all* attempts (restart
    /// backoff and redone work both count — the breakdown explains
    /// end-to-end latency, not just the winning attempt).
    pub phase_times: PhaseTimes,
    /// End-to-end commit latency, recorded at root commit. `None` until
    /// the family commits (and forever for failed families).
    pub commit_latency: Option<SimDuration>,
}

impl FamilyRuntime {
    /// Fresh runtime for family `index` arriving at `arrival`.
    pub fn new(index: usize, arrival: SimTime) -> Self {
        FamilyRuntime {
            index,
            root_txn: None,
            frames: Vec::new(),
            phase: Phase::NotStarted,
            restarts: 0,
            generation: 0,
            arrival,
            ops: Vec::new(),
            fetch_extra: SimDuration::ZERO,
            prefetch_at: std::collections::BTreeMap::new(),
            phase_entered: arrival,
            ready_retransmit_wait: SimDuration::ZERO,
            fresh_retransmit_wait: SimDuration::ZERO,
            fresh_wait_at: arrival,
            phase_times: PhaseTimes::default(),
            commit_latency: None,
        }
    }

    /// Folds `fresh_retransmit_wait` into `ready_retransmit_wait` once the
    /// clock has moved past the instant it was accrued at (by then the
    /// delayed event has fired and the wait has genuinely elapsed).
    pub fn promote_retransmit_wait(&mut self, now: SimTime) {
        if now > self.fresh_wait_at && self.fresh_retransmit_wait > SimDuration::ZERO {
            self.ready_retransmit_wait += self.fresh_retransmit_wait;
            self.fresh_retransmit_wait = SimDuration::ZERO;
        }
        self.fresh_wait_at = now;
    }

    /// The current (innermost) frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn top(&self) -> &Frame {
        self.frames.last().expect("family has no active frame")
    }

    /// Mutable access to the current frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn top_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("family has no active frame")
    }

    /// Clears all per-attempt state for a restart. The caller transitions
    /// `phase` itself (via the engine's `set_phase`, so the aborted
    /// attempt's elapsed time is attributed before the state is wiped);
    /// cumulative phase times survive.
    pub fn reset_for_restart(&mut self) {
        self.root_txn = None;
        self.frames.clear();
        self.ops.clear();
        self.fetch_extra = SimDuration::ZERO;
        self.prefetch_at.clear();
        // Invalidate the attempt's in-flight events and drop wait accrued
        // for deliveries that will now never be consumed.
        self.generation += 1;
        self.ready_retransmit_wait = SimDuration::ZERO;
        self.fresh_retransmit_wait = SimDuration::ZERO;
    }

    /// Drops the operations of an aborted subtree (identified by its member
    /// transactions).
    pub fn discard_subtree_effects(&mut self, subtree: &[TxnId]) {
        self.ops.retain(|o| !subtree.contains(&o.txn));
    }

    /// Dirty info for a root commit: per object, the distinct pages written
    /// by surviving transactions, in deterministic order.
    pub fn surviving_dirty(&self) -> Vec<(ObjectId, Vec<PageIndex>)> {
        let mut map: std::collections::BTreeMap<ObjectId, std::collections::BTreeSet<PageIndex>> =
            std::collections::BTreeMap::new();
        for o in &self.ops {
            if let FamilyOp::Write { object, page, .. } = o.op {
                map.entry(object).or_default().insert(page);
            }
        }
        map.into_iter()
            .map(|(o, pages)| (o, pages.into_iter().collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotec_sim::NodeId;
    use lotec_txn::TxnTree;

    fn mk_txn(n: u64) -> TxnId {
        let mut tree = TxnTree::new();
        let mut last = tree.begin_root(NodeId::new(0));
        for _ in 0..n {
            last = tree.begin_root(NodeId::new(0));
        }
        last
    }

    fn write(txn: TxnId, o: u32, p: u16) -> AttemptOp {
        AttemptOp {
            txn,
            op: FamilyOp::Write {
                object: ObjectId::new(o),
                page: PageIndex::new(p),
                stamp: 1,
            },
        }
    }

    #[test]
    fn spec_at_resolves_pointers() {
        let leaf = InvocationSpec::leaf(ObjectId::new(2), MethodId::new(0), PathId::new(0));
        let mid = InvocationSpec {
            object: ObjectId::new(1),
            method: MethodId::new(0),
            path: PathId::new(0),
            children: vec![leaf],
            abort: false,
        };
        let family = FamilySpec {
            node: NodeId::new(0),
            start: SimTime::ZERO,
            root: InvocationSpec {
                object: ObjectId::new(0),
                method: MethodId::new(0),
                path: PathId::new(0),
                children: vec![mid],
                abort: false,
            },
        };
        assert_eq!(spec_at(&family, &[]).object, ObjectId::new(0));
        assert_eq!(spec_at(&family, &[0]).object, ObjectId::new(1));
        assert_eq!(spec_at(&family, &[0, 0]).object, ObjectId::new(2));
    }

    #[test]
    fn surviving_dirty_groups_and_dedups() {
        let mut fam = FamilyRuntime::new(0, SimTime::ZERO);
        let t = mk_txn(0);
        for (o, p) in [(1u32, 0u16), (0, 3), (1, 0), (1, 1)] {
            fam.ops.push(write(t, o, p));
        }
        // Reads never contribute to dirty info.
        fam.ops.push(AttemptOp {
            txn: t,
            op: FamilyOp::Read {
                object: ObjectId::new(2),
                page: PageIndex::new(0),
                chain: 0,
            },
        });
        let dirty = fam.surviving_dirty();
        assert_eq!(dirty.len(), 2);
        assert_eq!(dirty[0].0, ObjectId::new(0));
        assert_eq!(dirty[1].1, vec![PageIndex::new(0), PageIndex::new(1)]);
    }

    #[test]
    fn discard_subtree_effects_filters_by_txn() {
        let mut fam = FamilyRuntime::new(0, SimTime::ZERO);
        let (a, b) = (mk_txn(0), mk_txn(1));
        fam.ops.push(write(a, 0, 0));
        fam.ops.push(write(b, 0, 1));
        fam.discard_subtree_effects(&[b]);
        assert_eq!(fam.ops.len(), 1);
        assert_eq!(fam.ops[0].txn, a);
    }

    #[test]
    fn retransmit_wait_promotes_only_after_clock_moves() {
        let mut fam = FamilyRuntime::new(0, SimTime::ZERO);
        fam.promote_retransmit_wait(SimTime::from_micros(1));
        fam.fresh_retransmit_wait = SimDuration::from_micros(4);
        // Same instant: the delayed event has not fired yet.
        fam.promote_retransmit_wait(SimTime::from_micros(1));
        assert_eq!(fam.ready_retransmit_wait, SimDuration::ZERO);
        // Clock moved past the accrual instant: the wait has elapsed.
        fam.promote_retransmit_wait(SimTime::from_micros(2));
        assert_eq!(fam.ready_retransmit_wait, SimDuration::from_micros(4));
        assert_eq!(fam.fresh_retransmit_wait, SimDuration::ZERO);
    }

    #[test]
    fn reset_for_restart_clears_attempt_state() {
        let mut fam = FamilyRuntime::new(3, SimTime::from_micros(5));
        fam.restarts = 2;
        fam.phase_times
            .add(lotec_obs::ObsPhase::Running, SimDuration::from_micros(7));
        fam.ops.push(write(mk_txn(0), 0, 0));
        fam.ready_retransmit_wait = SimDuration::from_micros(3);
        fam.reset_for_restart();
        assert!(fam.ops.is_empty());
        assert!(fam.frames.is_empty());
        assert_eq!(fam.generation, 1, "generation bumps to invalidate events");
        assert_eq!(
            fam.ready_retransmit_wait,
            SimDuration::ZERO,
            "stale retransmit wait dropped"
        );
        assert_eq!(fam.restarts, 2, "restart count survives");
        assert_eq!(fam.arrival, SimTime::from_micros(5), "arrival survives");
        assert_eq!(
            fam.phase_times.running,
            SimDuration::from_micros(7),
            "cumulative phase times survive"
        );
    }
}
