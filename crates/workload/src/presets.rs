//! Named scenarios for every figure of the paper.
//!
//! | Preset | Paper figure | Objects | Pages/object | Contention |
//! |--------|--------------|---------|--------------|------------|
//! | [`fig2`] | Fig. 2 | 20  | 1–5   | high |
//! | [`fig3`] | Fig. 3 | 20  | 10–20 | high |
//! | [`fig4`] | Fig. 4 | 100 | 1–5   | moderate |
//! | [`fig5`] | Fig. 5 | 100 | 10–20 | moderate |
//! | [`network_sweep`] | Figs. 6–8 | fig3 workload, swept over the 15 network configs |
//!
//! "High contention" = few objects, strong zipf skew, many concurrent
//! families; "moderate" = 5× the objects, weaker skew. The simulation was
//! "expressly designed to induce high degrees of conflict in object access
//! as this is the interesting case" (paper §5).

use lotec_sim::SimDuration;

use crate::gen::{Scenario, WorkloadConfig};
use crate::schema::SchemaConfig;

// Knob calibration (see `lotec-bench --bin tune`): the attribute
// granularity and per-path touch probability are chosen per object-size
// band so the byte ratios land near the paper's in-text claims — OTEC
// saves ~20–25% over COTEC, LOTEC another ~5–10% over OTEC, while sending
// ~1.1–1.4× OTEC's message count.

/// Schema band for the medium (1–5 page) objects of Figures 2 and 4:
/// coarse attributes and two control paths keep predictions from covering
/// every page of these small objects.
fn medium_schema() -> SchemaConfig {
    SchemaConfig {
        num_classes: 4,
        pages_min: 1,
        pages_max: 5,
        page_size: 4096,
        attrs_min: 4,
        attrs_max: 8,
        methods_per_class: 4,
        paths_per_method: 2,
        attr_touch_prob: 0.35,
        write_prob: 0.9,
        read_only_method_prob: 0.25,
        invoke_prob: 0.5,
        max_sites_per_path: 2,
    }
}

/// Schema band for the large (10–20 page) objects of Figures 3 and 5:
/// fine-grained attributes (≈1 page each) so methods genuinely touch page
/// subsets.
fn large_schema() -> SchemaConfig {
    SchemaConfig {
        num_classes: 4,
        pages_min: 10,
        pages_max: 20,
        page_size: 4096,
        attrs_min: 15,
        attrs_max: 25,
        methods_per_class: 4,
        paths_per_method: 3,
        attr_touch_prob: 0.48,
        write_prob: 0.9,
        read_only_method_prob: 0.25,
        invoke_prob: 0.5,
        max_sites_per_path: 2,
    }
}

/// Figure 2: medium objects (1–5 pages), high contention, objects O0–O19.
pub fn fig2() -> Scenario {
    Scenario::new(
        "fig2: medium objects, high contention",
        WorkloadConfig {
            schema: medium_schema(),
            num_objects: 20,
            num_families: 400,
            num_nodes: 8,
            zipf_theta: 0.9,
            mean_arrival_gap: SimDuration::from_micros(40),
            abort_prob: 0.0,
            seed: 0xF162,
        },
    )
}

/// Figure 3: large objects (10–20 pages), high contention.
pub fn fig3() -> Scenario {
    Scenario::new(
        "fig3: large objects, high contention",
        WorkloadConfig {
            schema: large_schema(),
            num_objects: 20,
            num_families: 400,
            num_nodes: 8,
            zipf_theta: 0.9,
            mean_arrival_gap: SimDuration::from_micros(60),
            abort_prob: 0.0,
            seed: 0xF163,
        },
    )
}

/// Figure 4: medium objects, moderate contention, objects drawn from
/// O0–O99.
pub fn fig4() -> Scenario {
    Scenario::new(
        "fig4: medium objects, moderate contention",
        WorkloadConfig {
            schema: medium_schema(),
            num_objects: 100,
            num_families: 600,
            num_nodes: 8,
            zipf_theta: 0.5,
            mean_arrival_gap: SimDuration::from_micros(40),
            abort_prob: 0.0,
            seed: 0xF164,
        },
    )
}

/// Figure 5: large objects, moderate contention.
pub fn fig5() -> Scenario {
    Scenario::new(
        "fig5: large objects, moderate contention",
        WorkloadConfig {
            schema: large_schema(),
            num_objects: 100,
            num_families: 600,
            num_nodes: 8,
            zipf_theta: 0.5,
            mean_arrival_gap: SimDuration::from_micros(60),
            abort_prob: 0.0,
            seed: 0xF165,
        },
    )
}

/// Figures 6–8 reuse the large-object high-contention workload; the sweep
/// is over network parameters, not the workload.
pub fn network_sweep() -> Scenario {
    let mut s = fig3();
    s.name = "fig6-8: network sweep over the fig3 workload".into();
    s
}

/// A reduced-size variant of any scenario for fast CI runs: an eighth of
/// the families.
#[must_use]
pub fn quick(mut scenario: Scenario) -> Scenario {
    scenario.config.num_families = (scenario.config.num_families / 8).max(20);
    scenario.name = format!("{} (quick)", scenario.name);
    scenario
}

/// Ablation: the fig3 workload with fault injection exercising the
/// closed-nesting abort paths.
pub fn ablation_faults() -> Scenario {
    let mut s = fig3();
    s.config.abort_prob = 0.08;
    s.config.seed = 0xAB1A;
    s.name = "ablation: fig3 with 8% sub-transaction faults".into();
    s
}

/// Ablation pair for the paper's §5.1 aggregation discussion: the same
/// shared data exposed as many fine-grained single-page objects (every
/// access is its own lock acquisition) vs. fewer coarse aggregated objects
/// ("LOTEC … has a natural preference for coarse-grained concurrency since
/// the larger objects are, the fewer lock operations are necessary").
pub fn aggregation_pair() -> (Scenario, Scenario) {
    let fine = Scenario::new(
        "aggregation: 80 fine-grained 1-page objects",
        WorkloadConfig {
            schema: SchemaConfig {
                pages_min: 1,
                pages_max: 1,
                attrs_min: 3,
                attrs_max: 5,
                paths_per_method: 2,
                attr_touch_prob: 0.5,
                // Fine granularity forces multi-object transactions: deep
                // nesting replaces intra-object locality.
                invoke_prob: 0.9,
                ..medium_schema()
            },
            num_objects: 80,
            num_families: 300,
            num_nodes: 8,
            zipf_theta: 0.7,
            mean_arrival_gap: SimDuration::from_micros(50),
            abort_prob: 0.0,
            seed: 0xA66,
        },
    );
    let coarse = Scenario::new(
        "aggregation: 20 coarse 4-page objects",
        WorkloadConfig {
            schema: SchemaConfig {
                pages_min: 4,
                pages_max: 4,
                attrs_min: 8,
                attrs_max: 12,
                paths_per_method: 2,
                attr_touch_prob: 0.5,
                invoke_prob: 0.25,
                ..medium_schema()
            },
            num_objects: 20,
            num_families: 300,
            num_nodes: 8,
            zipf_theta: 0.7,
            mean_arrival_gap: SimDuration::from_micros(50),
            abort_prob: 0.0,
            seed: 0xA66,
        },
    );
    (fine, coarse)
}

/// All figure presets, in figure order.
pub fn all_figures() -> Vec<Scenario> {
    vec![fig2(), fig3(), fig4(), fig5()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::summarize;

    #[test]
    fn presets_generate() {
        for scenario in [quick(fig2()), quick(fig4())] {
            let (registry, families) = scenario.generate().unwrap();
            assert!(registry.num_objects() >= 20);
            assert!(
                families.len() >= 20,
                "{}: {}",
                scenario.name,
                families.len()
            );
        }
    }

    #[test]
    fn object_sizes_match_figures() {
        for (scenario, lo, hi) in [(fig2(), 1u16, 5u16), (fig3(), 10, 20)] {
            let (registry, _) = quick(scenario).generate().unwrap();
            let classes: Vec<_> = (0..registry.num_classes())
                .map(|i| {
                    registry
                        .class(lotec_object::ClassId::new(i as u32))
                        .class()
                        .clone()
                })
                .collect();
            let summary = summarize(&classes, 4096);
            assert!(
                summary.min_pages >= lo && summary.max_pages <= hi,
                "{summary:?}"
            );
        }
    }

    #[test]
    fn contention_presets_differ_in_skew_and_objects() {
        assert!(fig2().config.zipf_theta > fig4().config.zipf_theta);
        assert!(fig4().config.num_objects > fig2().config.num_objects);
        assert_eq!(all_figures().len(), 4);
    }

    #[test]
    fn quick_shrinks_families() {
        let full = fig2();
        let q = quick(full.clone());
        assert!(q.config.num_families < full.config.num_families);
        assert!(q.name.contains("quick"));
    }

    #[test]
    fn fault_ablation_injects() {
        let s = ablation_faults();
        assert!(s.config.abort_prob > 0.0);
    }
}
