//! Randomized nested-object-transaction workload generation.
//!
//! The paper's evaluation (§5) runs "a number of randomly generated nested
//! object transactions in a simulated distributed system", varying the
//! number of objects, object sizes (in pages) and transaction counts to
//! produce a range of conflict scenarios — medium (1–5 page) and large
//! (10–20 page) objects under high and moderate contention.
//!
//! This crate regenerates workloads of that shape:
//!
//! * [`schema`] synthesizes random class hierarchies whose objects span
//!   the requested page range, with multi-path methods (so conservative
//!   prediction is genuinely looser than any single run) and DAG-ordered
//!   inter-class invocation sites (so nesting terminates and mutual
//!   recursion — precluded by the paper's §3.4 — cannot arise),
//! * [`gen`] draws transaction families: zipf-skewed receiver selection
//!   (contention knob), random control paths, nested invocations
//!   following the sites of the chosen path, Poisson-like arrivals and
//!   optional fault injection,
//! * [`presets`] names the scenarios of every figure in the paper,
//! * [`zoo`] grows the generator to production shapes: named scenario
//!   families (multi-tenant, hotspot migration, diurnal bursts, deep vs
//!   wide trees, cluster scale-out) at tiny/quick/full tiers, each with
//!   success criteria the bench matrix checks,
//! * [`persist`] saves/reloads scenarios as JSON (generation is
//!   deterministic from the config, so the config *is* the workload).
//!
//! # Example
//!
//! ```
//! use lotec_workload::presets;
//!
//! let scenario = presets::fig2();
//! let (registry, families) = scenario.generate().unwrap();
//! assert_eq!(registry.num_objects(), 20);
//! assert!(!families.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod persist;
pub mod presets;
pub mod schema;
pub mod zipf;
pub mod zoo;

pub use gen::{Scenario, WorkloadConfig, WorkloadError};
pub use zipf::Zipf;
pub use zoo::{ArrivalModel, SuccessCriteria, Tier, TrafficModel, ZooScenario};
