//! The workload zoo: named, seeded, production-shaped scenarios.
//!
//! [`gen`](crate::gen) reproduces the paper's figure workloads — a few
//! dozen objects, one contention knob. Real deployments are not
//! fig3-shaped, and protocol rankings are known to flip with skew, tree
//! shape, and arrival burstiness. The zoo grows the generator into a
//! registry of self-describing scenario *families*, each at three tiers:
//!
//! * **tiny** — seconds in a debug build; golden-fingerprint rows and
//!   worker byte-identity tests pin these cells.
//! * **quick** — CI scale; the committed `BENCH_scenarios.json` matrix.
//! * **full** — production scale (up to millions of objects, 100+
//!   nodes); run on demand via `scenarios --full`.
//!
//! The families:
//!
//! * `multi_tenant` — a web-app backend: objects partitioned into
//!   zipf-ranked tenants, read-heavy traffic ([`TrafficModel::read_bias`])
//!   with a small set of hot tenants forced onto write methods.
//! * `hotspot_migration` — the popular objects *move* mid-run: receiver
//!   orderings rotate per [`TrafficModel::migration_phases`], so the
//!   zipf head lands on different objects in each phase (stresses
//!   adaptive profiles trained on the old hot set).
//! * `diurnal_burst` — arrivals follow a peak/off-peak cycle
//!   ([`ArrivalModel::Diurnal`]) instead of a flat Poisson stream.
//! * `deep_trees` — long invocation chains (many classes, one site per
//!   path, high invoke probability): commit latency is dominated by
//!   nesting depth.
//! * `wide_trees` — few classes, many sibling sites per path: lock
//!   retention across pre-committed siblings is the hot path.
//! * `scaleout` — 100+ node clusters at the full tier, modest skew;
//!   message counts, not contention, dominate.
//!
//! Every scenario carries [`SuccessCriteria`] — commit-fraction,
//! abort-rate and p99 bounds the bench matrix checks after the oracle
//! passes. Generation is fully deterministic from the config (same rng
//! stream discipline as [`gen`](crate::gen)); the scenario *is* its
//! config.

use lotec_core::metrics::RunStats;
use lotec_core::spec::{validate_family, FamilySpec, InvocationSpec};
use lotec_core::{AdaptiveConfig, ProtocolKind, SystemConfig};
use lotec_mem::ObjectId;
use lotec_object::{ClassId, MethodId, ObjectRegistry, PathId};
use lotec_sim::{NodeId, SimDuration, SimRng, SimTime};

use crate::gen::{build_invocation, WorkloadConfig, WorkloadError};
use crate::schema::{generate_classes, SchemaConfig};
use crate::zipf::Zipf;

/// Scenario size tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Smallest cells: golden fingerprints, debug-build test suites.
    Tiny,
    /// CI scale: the committed `BENCH_scenarios.json` matrix.
    Quick,
    /// Production scale: millions of objects, 100+ nodes. On demand.
    Full,
}

impl Tier {
    /// All tiers, smallest first.
    pub const ALL: [Tier; 3] = [Tier::Tiny, Tier::Quick, Tier::Full];

    /// Lower-case label used in scenario names and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Tiny => "tiny",
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }
}

/// Family arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Flat Poisson-like stream (exponential gaps at the configured mean)
    /// — what [`gen`](crate::gen) always produces.
    Steady,
    /// Peak/off-peak cycle: within the first `peak_fraction` of every
    /// `period` the mean gap is the configured one; outside it the mean
    /// stretches by `offpeak_factor`. Gaps stay exponential, so bursts
    /// are still jittered — this models diurnal load, not a square wave
    /// of simultaneous arrivals.
    Diurnal {
        /// Length of one day-night cycle in sim time.
        period: SimDuration,
        /// Fraction of the period (from its start) that is peak traffic.
        peak_fraction: f64,
        /// Mean-gap multiplier outside the peak window.
        offpeak_factor: u32,
    },
}

/// How roots are aimed at objects — the zoo's traffic shaping on top of
/// [`WorkloadConfig`]'s size/skew knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    /// Partition objects into this many equal contiguous tenants and draw
    /// the *tenant* zipf-ranked (rank 0 = hottest), then a uniform object
    /// of the root's class inside it. `0` disables tenancy: receivers are
    /// drawn per-class zipf exactly like [`gen`](crate::gen).
    pub tenants: u32,
    /// The `hot_write_tenants` hottest tenant *ranks* force their roots
    /// onto write methods — the "few tenants doing heavy writes inside a
    /// read-mostly app" shape. Only meaningful with `tenants > 0`.
    pub hot_write_tenants: u32,
    /// Probability that a (non-hot-writer) root picks a read-only method
    /// of its class; `None` keeps the uniform method draw.
    pub read_bias: Option<f64>,
    /// Number of hotspot phases. `1` = static hot set. With `p > 1` the
    /// run is cut into `p` equal spans of the family index, and each
    /// span's receiver orderings are rotated so the zipf head lands on a
    /// different slice of the object space (tenant identities rotate the
    /// same way) — the hot set migrates mid-run.
    pub migration_phases: u32,
    /// Arrival process.
    pub arrivals: ArrivalModel,
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel {
            tenants: 0,
            hot_write_tenants: 0,
            read_bias: None,
            migration_phases: 1,
            arrivals: ArrivalModel::Steady,
        }
    }
}

/// Per-scenario pass/fail bounds, checked by the bench matrix after the
/// serializability oracle has passed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessCriteria {
    /// Minimum fraction of generated families that must commit.
    pub min_commit_fraction: f64,
    /// Maximum fraction of finished families that ended in a permanent
    /// abort ([`RunStats::abort_rate`]).
    pub max_abort_rate: f64,
    /// Upper bound on the p99 commit latency (from the streaming sketch).
    pub max_p99: SimDuration,
}

impl SuccessCriteria {
    /// Evaluates a finished run against the bounds. Returns one message
    /// per violated bound; empty means the cell passed.
    pub fn evaluate(&self, generated_families: usize, stats: &RunStats) -> Vec<String> {
        let mut failures = Vec::new();
        let committed = stats.committed_families as usize;
        let fraction = if generated_families == 0 {
            0.0
        } else {
            committed as f64 / generated_families as f64
        };
        if fraction < self.min_commit_fraction {
            failures.push(format!(
                "commit fraction {fraction:.4} below minimum {:.4} \
                 ({committed}/{generated_families} committed)",
                self.min_commit_fraction
            ));
        }
        let abort_rate = stats.abort_rate();
        if abort_rate > self.max_abort_rate {
            failures.push(format!(
                "abort rate {abort_rate:.4} above maximum {:.4}",
                self.max_abort_rate
            ));
        }
        match stats.latency_quantile_precise(0.99) {
            Some(p99) if p99 > self.max_p99 => failures.push(format!(
                "p99 latency {:.1}us above maximum {:.1}us",
                p99.as_micros_f64(),
                self.max_p99.as_micros_f64()
            )),
            Some(_) => {}
            None => failures.push("no committed families: p99 undefined".to_string()),
        }
        failures
    }
}

/// One cell of the zoo: a named family at a tier, with its workload
/// parameters, traffic shaping, and success criteria.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooScenario {
    /// Family name (stable across tiers): `multi_tenant`, `deep_trees`, …
    pub family: &'static str,
    /// Size tier this instance is configured at.
    pub tier: Tier,
    /// One-sentence description, embedded in the bench artifact.
    pub description: &'static str,
    /// Object/schema/arrival sizing (the [`gen`](crate::gen) knobs).
    pub config: WorkloadConfig,
    /// Zoo-specific traffic shaping.
    pub traffic: TrafficModel,
    /// Pass/fail bounds for a run of this cell.
    pub criteria: SuccessCriteria,
}

impl ZooScenario {
    /// `family/tier`, the scenario's unique name.
    pub fn name(&self) -> String {
        format!("{}/{}", self.family, self.tier.label())
    }

    /// Generates the registry and families; see [`generate`].
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadError`] from [`generate`].
    pub fn generate(&self) -> Result<(ObjectRegistry, Vec<FamilySpec>), WorkloadError> {
        generate(&self.config, &self.traffic)
    }

    /// A [`SystemConfig`] matching this scenario's node count and page
    /// size (other knobs at their defaults).
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            num_nodes: self.config.num_nodes,
            page_size: self.config.schema.page_size,
            seed: self.config.seed,
            ..SystemConfig::default()
        }
    }

    /// The [`SystemConfig`] for one matrix cell: a protocol × prediction
    /// mode, with per-family phase rows disabled so production-scale runs
    /// stay memory-flat (aggregate phase totals and the latency sketch
    /// are unaffected).
    pub fn cell_config(&self, protocol: ProtocolKind, adaptive: bool) -> SystemConfig {
        SystemConfig {
            protocol,
            adaptive: if adaptive {
                AdaptiveConfig::on()
            } else {
                AdaptiveConfig::default()
            },
            per_family_phases: false,
            ..self.system_config()
        }
    }

    /// Declared upper bound on invocation-tree depth (root = depth 1).
    /// The schema's invocation sites form a DAG over class indices, so no
    /// chain is longer than the class count.
    pub fn declared_max_depth(&self) -> u32 {
        self.config.schema.num_classes
    }

    /// Declared upper bound on children per invocation.
    pub fn declared_max_width(&self) -> u32 {
        self.config.schema.max_sites_per_path.max(1)
    }

    /// The phase-0 hot set: the object ids holding the top `frac` of the
    /// zipf head (per tenant when tenancy is on, per class otherwise).
    /// At least one tenant/object per class is always included.
    pub fn hot_objects(&self, frac: f64) -> Vec<ObjectId> {
        let n = self.config.num_objects;
        let classes = self.config.schema.num_classes;
        if self.traffic.tenants > 0 {
            let k = hot_count(self.traffic.tenants as usize, frac) as u32;
            let tsize = n.div_ceil(self.traffic.tenants);
            (0..(k * tsize).min(n)).map(ObjectId::new).collect()
        } else {
            let mut hot = Vec::new();
            for class in 0..classes.min(n) {
                let len = (n - class).div_ceil(classes) as usize;
                let k = hot_count(len, frac) as u32;
                // Instances of `class` in hotness order are ids
                // class, class + C, class + 2C, …
                hot.extend((0..k).map(|j| ObjectId::new(class + j * classes)));
            }
            hot
        }
    }

    /// The traffic share the zipf skew *declares* for the
    /// [`hot_objects`](Self::hot_objects) head — what the property suite
    /// compares empirical root-receiver counts against.
    pub fn expected_hot_share(&self, frac: f64) -> f64 {
        let n = self.config.num_objects;
        let classes = self.config.schema.num_classes;
        let theta = self.config.zipf_theta;
        if self.traffic.tenants > 0 {
            let k = hot_count(self.traffic.tenants as usize, frac);
            Zipf::new(self.traffic.tenants as usize, theta).top_share(k)
        } else {
            // Root class is uniform, so the global share is the mean of
            // the per-class head shares.
            let mut total = 0.0;
            let mut counted = 0u32;
            for class in 0..classes.min(n) {
                let len = (n - class).div_ceil(classes) as usize;
                total += Zipf::new(len, theta).top_share(hot_count(len, frac));
                counted += 1;
            }
            if counted == 0 {
                0.0
            } else {
                total / counted as f64
            }
        }
    }
}

/// `max(1, ceil(n·frac))`, capped at `n`: how many head items a fraction
/// of a domain covers.
fn hot_count(n: usize, frac: f64) -> usize {
    (((n as f64) * frac).ceil() as usize).clamp(1, n.max(1))
}

/// The whole zoo at one tier, in registry order.
pub fn all(tier: Tier) -> Vec<ZooScenario> {
    vec![
        multi_tenant(tier),
        hotspot_migration(tier),
        diurnal_burst(tier),
        deep_trees(tier),
        wide_trees(tier),
        scaleout(tier),
    ]
}

/// Looks a scenario up by family name at a tier.
pub fn by_name(family: &str, tier: Tier) -> Option<ZooScenario> {
    all(tier).into_iter().find(|s| s.family == family)
}

fn multi_tenant(tier: Tier) -> ZooScenario {
    // (objects, tenants, hot write tenants, nodes, families)
    let (objects, tenants, hot, nodes, families) = match tier {
        Tier::Tiny => (240, 24, 1, 8, 60),
        Tier::Quick => (2_000, 100, 2, 16, 240),
        Tier::Full => (1_000_000, 5_000, 100, 16, 20_000),
    };
    ZooScenario {
        family: "multi_tenant",
        tier,
        description: "read-heavy web-app backend: zipf-ranked tenants over a large \
                      object space, a few hot tenants forced onto writes",
        config: WorkloadConfig {
            schema: SchemaConfig {
                pages_min: 1,
                pages_max: 2,
                read_only_method_prob: 0.5,
                invoke_prob: 0.4,
                ..SchemaConfig::default()
            },
            num_objects: objects,
            num_families: families,
            num_nodes: nodes,
            zipf_theta: 1.0,
            mean_arrival_gap: SimDuration::from_micros(50),
            abort_prob: 0.0,
            seed: 0x200_0001,
        },
        traffic: TrafficModel {
            tenants,
            hot_write_tenants: hot,
            read_bias: Some(0.85),
            ..TrafficModel::default()
        },
        criteria: SuccessCriteria {
            min_commit_fraction: 0.95,
            max_abort_rate: 0.02,
            max_p99: SimDuration::from_millis(40),
        },
    }
}

fn hotspot_migration(tier: Tier) -> ZooScenario {
    let (objects, nodes, families) = match tier {
        Tier::Tiny => (120, 8, 48),
        Tier::Quick => (240, 8, 240),
        Tier::Full => (50_000, 32, 10_000),
    };
    // θ = 1.1 puts ~15 % of all roots on the single head object, so the
    // head's service capacity bounds feasible throughput: at quick's
    // 50 µs gap the full tier would run the head past saturation
    // and p99 becomes pure unbounded queueing (seconds). The full tier
    // spreads arrivals to keep the hot object busy but subcritical —
    // the scenario stresses profile invalidation, not overload
    // collapse.
    let gap = match tier {
        Tier::Full => SimDuration::from_millis(1),
        _ => SimDuration::from_micros(50),
    };
    ZooScenario {
        family: "hotspot_migration",
        tier,
        description: "heavily skewed traffic whose hot set rotates through four \
                      phases mid-run, invalidating profiles trained early",
        config: WorkloadConfig {
            schema: SchemaConfig {
                pages_min: 4,
                pages_max: 8,
                ..SchemaConfig::default()
            },
            num_objects: objects,
            num_families: families,
            num_nodes: nodes,
            zipf_theta: 1.1,
            mean_arrival_gap: gap,
            abort_prob: 0.0,
            seed: 0x200_0002,
        },
        traffic: TrafficModel {
            migration_phases: 4,
            ..TrafficModel::default()
        },
        // Worst observed cell across tiers is quick/COTEC at ~128 ms p99
        // (the whole-object protocol pays the 4–8 page hot set on every
        // rotation); ~2× headroom.
        criteria: SuccessCriteria {
            min_commit_fraction: 0.9,
            max_abort_rate: 0.05,
            max_p99: SimDuration::from_millis(250),
        },
    }
}

fn diurnal_burst(tier: Tier) -> ZooScenario {
    let (objects, nodes, families) = match tier {
        Tier::Tiny => (100, 8, 40),
        Tier::Quick => (400, 8, 300),
        Tier::Full => (200_000, 24, 20_000),
    };
    ZooScenario {
        family: "diurnal_burst",
        tier,
        description: "peak/off-peak arrival cycle: bursts of closely packed \
                      families alternate with quiet spans",
        config: WorkloadConfig {
            schema: SchemaConfig {
                pages_min: 2,
                pages_max: 4,
                ..SchemaConfig::default()
            },
            num_objects: objects,
            num_families: families,
            num_nodes: nodes,
            zipf_theta: 0.8,
            mean_arrival_gap: SimDuration::from_micros(30),
            abort_prob: 0.0,
            seed: 0x200_0003,
        },
        traffic: TrafficModel {
            arrivals: ArrivalModel::Diurnal {
                period: SimDuration::from_millis(2),
                peak_fraction: 0.25,
                offpeak_factor: 8,
            },
            ..TrafficModel::default()
        },
        criteria: SuccessCriteria {
            min_commit_fraction: 0.9,
            max_abort_rate: 0.05,
            max_p99: SimDuration::from_millis(50),
        },
    }
}

fn deep_trees(tier: Tier) -> ZooScenario {
    let (objects, nodes, families) = match tier {
        Tier::Tiny => (64, 8, 40),
        Tier::Quick => (320, 12, 200),
        Tier::Full => (100_000, 24, 10_000),
    };
    ZooScenario {
        family: "deep_trees",
        tier,
        description: "long invocation chains (8 classes, one site per path): \
                      nesting depth dominates commit latency",
        config: WorkloadConfig {
            schema: SchemaConfig {
                num_classes: 8,
                pages_min: 1,
                pages_max: 2,
                paths_per_method: 2,
                invoke_prob: 0.92,
                max_sites_per_path: 1,
                ..SchemaConfig::default()
            },
            num_objects: objects,
            num_families: families,
            num_nodes: nodes,
            zipf_theta: 0.9,
            mean_arrival_gap: SimDuration::from_micros(50),
            abort_prob: 0.0,
            seed: 0x200_0004,
        },
        traffic: TrafficModel::default(),
        // Worst observed cell across tiers: quick/COTEC ~14 ms p99.
        criteria: SuccessCriteria {
            min_commit_fraction: 0.9,
            max_abort_rate: 0.05,
            max_p99: SimDuration::from_millis(40),
        },
    }
}

fn wide_trees(tier: Tier) -> ZooScenario {
    let (objects, nodes, families) = match tier {
        Tier::Tiny => (60, 8, 40),
        Tier::Quick => (300, 12, 200),
        Tier::Full => (100_000, 24, 10_000),
    };
    // Wide trees hold several write locks at once, so concurrency must
    // not scale linearly with family count: at quick's 50 µs gap the
    // full tier would run thousands of simultaneous multi-lock writers
    // on the zipf head — a deadlock storm that exhausts the engine's
    // restart budget under COTEC. The full tier spreads arrivals
    // instead (same structure, bounded in-flight population).
    let gap = match tier {
        Tier::Full => SimDuration::from_millis(1),
        _ => SimDuration::from_micros(50),
    };
    ZooScenario {
        family: "wide_trees",
        tier,
        description: "shallow, bushy trees (up to 4 sibling sites per path): \
                      lock retention across pre-committed siblings is the hot path",
        config: WorkloadConfig {
            schema: SchemaConfig {
                num_classes: 3,
                pages_min: 1,
                pages_max: 2,
                invoke_prob: 0.85,
                max_sites_per_path: 4,
                ..SchemaConfig::default()
            },
            num_objects: objects,
            num_families: families,
            num_nodes: nodes,
            zipf_theta: 0.9,
            mean_arrival_gap: gap,
            abort_prob: 0.0,
            seed: 0x200_0005,
        },
        traffic: TrafficModel::default(),
        // The deadlock-storm scenario: the quick tier's 200-family blast
        // drives 340–430 victim restarts and a ~660 ms COTEC p99 — that
        // regime is the point, so the ceiling certifies *bounded*
        // meltdown (1 s) rather than pretending this is a low-latency
        // workload.
        criteria: SuccessCriteria {
            min_commit_fraction: 0.9,
            max_abort_rate: 0.05,
            max_p99: SimDuration::from_millis(1_000),
        },
    }
}

fn scaleout(tier: Tier) -> ZooScenario {
    let (objects, nodes, families) = match tier {
        Tier::Tiny => (160, 16, 48),
        Tier::Quick => (960, 24, 240),
        Tier::Full => (20_000, 128, 10_000),
    };
    // Same reasoning as `wide_trees`: the full tier models a steady
    // production stream (5k families/s across 128 nodes), not a
    // simultaneous blast of the whole run's traffic.
    let gap = match tier {
        Tier::Full => SimDuration::from_micros(200),
        _ => SimDuration::from_micros(50),
    };
    ZooScenario {
        family: "scaleout",
        tier,
        description: "cluster scale-out (128 nodes at the full tier) under modest \
                      skew: remote traffic, not contention, dominates",
        config: WorkloadConfig {
            schema: SchemaConfig {
                pages_min: 1,
                pages_max: 3,
                ..SchemaConfig::default()
            },
            num_objects: objects,
            num_families: families,
            num_nodes: nodes,
            zipf_theta: 0.6,
            mean_arrival_gap: gap,
            abort_prob: 0.0,
            seed: 0x200_0006,
        },
        traffic: TrafficModel::default(),
        // Worst observed cell across tiers: tiny/COTEC ~7 ms p99 —
        // modest skew keeps queues shallow even at 128 nodes.
        criteria: SuccessCriteria {
            min_commit_fraction: 0.9,
            max_abort_rate: 0.05,
            max_p99: SimDuration::from_millis(30),
        },
    }
}

/// Generates a zoo workload: compiled registry plus transaction families
/// shaped by `traffic`. Fully deterministic for a given `(config,
/// traffic)` pair, with the same rng stream discipline as
/// [`gen::generate`](crate::gen::generate) (schema/placement/tree/timing
/// forks) — the two generators share the subtree builder, so a zoo
/// scenario with a default [`TrafficModel`] differs from `gen` only in
/// root receiver/method selection.
///
/// # Errors
///
/// Returns [`WorkloadError`] if the schema fails to compile or a
/// generated family fails core validation (generator bugs, surfaced
/// rather than panicking so the bench harness can report them).
pub fn generate(
    config: &WorkloadConfig,
    traffic: &TrafficModel,
) -> Result<(ObjectRegistry, Vec<FamilySpec>), WorkloadError> {
    let root_rng = SimRng::seed_from_u64(config.seed);
    let mut schema_rng = root_rng.fork(1);
    let mut placement_rng = root_rng.fork(2);
    let mut tree_rng = root_rng.fork(3);
    let mut timing_rng = root_rng.fork(4);

    let classes = generate_classes(&config.schema, &mut schema_rng);

    // Per-class read-only vs writer method ids, for biased root draws.
    let num_classes = config.schema.num_classes;
    let mut read_methods: Vec<Vec<MethodId>> = vec![Vec::new(); num_classes as usize];
    let mut write_methods: Vec<Vec<MethodId>> = vec![Vec::new(); num_classes as usize];
    for (ci, class) in classes.iter().enumerate() {
        for (mi, method) in class.methods().iter().enumerate() {
            let id = MethodId::new(mi as u32);
            if method.is_read_only() {
                read_methods[ci].push(id);
            } else {
                write_methods[ci].push(id);
            }
        }
    }

    // Objects round-robin over classes, homed on random nodes — identical
    // to gen, so object id `i` has class `i % num_classes` (the tenant
    // arithmetic below and `ZooScenario::hot_objects` both rely on this).
    let objects: Vec<(ClassId, NodeId)> = (0..config.num_objects)
        .map(|i| {
            let class = ClassId::new(i % num_classes);
            let home = NodeId::new(placement_rng.next_below(config.num_nodes as u64) as u32);
            (class, home)
        })
        .collect();
    let registry = ObjectRegistry::build(&classes, &objects, config.schema.page_size)
        .map_err(|e| WorkloadError::Registry(e.to_string()))?;

    let mut by_class: Vec<Vec<ObjectId>> = vec![Vec::new(); num_classes as usize];
    for inst in registry.objects() {
        by_class[inst.class.index() as usize].push(inst.id);
    }
    let samplers: Vec<Option<Zipf>> = by_class
        .iter()
        .map(|objs| (!objs.is_empty()).then(|| Zipf::new(objs.len(), config.zipf_theta)))
        .collect();

    // One receiver ordering per migration phase: phase p rotates each
    // class's instance list left by len·p/phases, so the zipf head (the
    // front of the list) lands on a different slice of the object space.
    // Phase 0 is the identity — a 1-phase zoo scenario orders receivers
    // exactly like gen.
    let phases = traffic.migration_phases.max(1) as usize;
    let orders: Vec<Vec<Vec<ObjectId>>> = (0..phases)
        .map(|p| {
            by_class
                .iter()
                .map(|objs| {
                    let len = objs.len();
                    if p == 0 || len == 0 {
                        objs.clone()
                    } else {
                        let shift = len * p / phases;
                        let mut rotated = Vec::with_capacity(len);
                        rotated.extend_from_slice(&objs[shift..]);
                        rotated.extend_from_slice(&objs[..shift]);
                        rotated
                    }
                })
                .collect()
        })
        .collect();

    let tenant_zipf =
        (traffic.tenants > 0).then(|| Zipf::new(traffic.tenants as usize, config.zipf_theta));
    let tenant_size = if traffic.tenants > 0 {
        config.num_objects.div_ceil(traffic.tenants)
    } else {
        0
    };

    let sys = SystemConfig {
        num_nodes: config.num_nodes,
        page_size: config.schema.page_size,
        ..SystemConfig::default()
    };

    let mut families = Vec::with_capacity(config.num_families as usize);
    let mut clock = SimTime::ZERO;
    for f in 0..config.num_families {
        let phase = (f as usize * phases) / (config.num_families.max(1) as usize);
        let phase = phase.min(phases - 1);

        // Arrival: exponential gap around the model's current mean.
        let mean = match traffic.arrivals {
            ArrivalModel::Steady => config.mean_arrival_gap,
            ArrivalModel::Diurnal {
                period,
                peak_fraction,
                offpeak_factor,
            } => {
                let pos = clock.as_nanos() % period.as_nanos().max(1);
                let peak_span = (period.as_nanos() as f64 * peak_fraction) as u64;
                if pos < peak_span {
                    config.mean_arrival_gap
                } else {
                    SimDuration::from_nanos(
                        config
                            .mean_arrival_gap
                            .as_nanos()
                            .saturating_mul(offpeak_factor.max(1) as u64),
                    )
                }
            }
        };
        let u = timing_rng.f64().max(1e-12);
        let gap = SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64());
        clock += gap;
        let node = NodeId::new(timing_rng.next_below(config.num_nodes as u64) as u32);

        let by = &orders[phase];
        let root_class = tree_rng.next_below(num_classes as u64) as usize;

        // Root receiver + whether this root belongs to a hot-write tenant.
        let (receiver, hot_writer) = if let Some(tz) = &tenant_zipf {
            let rank = tz.sample(&mut tree_rng) as u32;
            // Rank is hotness; the phase rotation moves which *tenant*
            // holds each rank, mirroring the per-class order rotation.
            let rotation = (phase as u32 * traffic.tenants) / phases as u32;
            let tenant = (rank + rotation) % traffic.tenants;
            let obj = tenant_instance(
                tenant,
                tenant_size,
                config.num_objects,
                num_classes,
                root_class as u32,
                &mut tree_rng,
            );
            let Some(obj) = obj.or_else(|| {
                // Tenant too small to hold this class: fall back to the
                // class-wide draw so the family is not lost.
                samplers[root_class]
                    .as_ref()
                    .map(|s| by[root_class][s.sample(&mut tree_rng)])
            }) else {
                continue;
            };
            (obj, rank < traffic.hot_write_tenants)
        } else {
            let Some(s) = samplers[root_class].as_ref() else {
                continue;
            };
            (by[root_class][s.sample(&mut tree_rng)], false)
        };

        // Root method: hot writers write; read-biased traffic prefers
        // read-only methods; otherwise uniform like gen.
        let ro = &read_methods[root_class];
        let wr = &write_methods[root_class];
        let method = if hot_writer && !wr.is_empty() {
            wr[tree_rng.next_below(wr.len() as u64) as usize]
        } else if let Some(bias) = traffic.read_bias {
            let pool = if tree_rng.chance(bias) {
                if ro.is_empty() {
                    wr
                } else {
                    ro
                }
            } else if wr.is_empty() {
                ro
            } else {
                wr
            };
            pool[tree_rng.next_below(pool.len() as u64) as usize]
        } else {
            let num_methods = classes[root_class].methods().len();
            MethodId::new(tree_rng.next_below(num_methods as u64) as u32)
        };

        let Some(root) = build_root(
            &registry,
            by,
            &samplers,
            receiver,
            method,
            &mut tree_rng,
            config.abort_prob,
        ) else {
            continue;
        };
        let family = FamilySpec {
            node,
            start: clock,
            root,
        };
        validate_family(&family, &registry, &sys)
            .map_err(|e| WorkloadError::InvalidFamily(e.to_string()))?;
        families.push(family);
    }
    Ok((registry, families))
}

/// A uniform instance of `class` among those owned by `tenant` (objects
/// are contiguous per tenant, classes round-robin by id). `None` when the
/// tenant's slice holds no instance of the class.
fn tenant_instance(
    tenant: u32,
    tenant_size: u32,
    num_objects: u32,
    num_classes: u32,
    class: u32,
    rng: &mut SimRng,
) -> Option<ObjectId> {
    let lo = tenant.checked_mul(tenant_size)?;
    let hi = lo.checked_add(tenant_size)?.min(num_objects);
    if lo >= hi {
        return None;
    }
    let first = lo + (class + num_classes - lo % num_classes) % num_classes;
    if first >= hi {
        return None;
    }
    let count = (hi - first).div_ceil(num_classes);
    let k = rng.next_below(count as u64) as u32;
    Some(ObjectId::new(first + k * num_classes))
}

/// Builds the root invocation for a *fixed* receiver and method (the zoo
/// picks both before building the tree), delegating each invocation site
/// to the shared subtree builder. Roots are never fault-injected.
fn build_root(
    registry: &ObjectRegistry,
    by_class: &[Vec<ObjectId>],
    samplers: &[Option<Zipf>],
    object: ObjectId,
    method: MethodId,
    rng: &mut SimRng,
    abort_prob: f64,
) -> Option<InvocationSpec> {
    let compiled = registry.class_of(object);
    let num_paths = compiled.num_paths(method);
    let path = PathId::new(rng.next_below(num_paths as u64) as u32);
    let sites = compiled
        .class()
        .method(method)
        .path(path)
        .invokes()
        .to_vec();
    let mut locked = vec![object];
    let mut children = Vec::with_capacity(sites.len());
    for site in &sites {
        let child = build_invocation(
            registry,
            by_class,
            samplers,
            site.class.index() as usize,
            Some(site.method),
            rng,
            abort_prob,
            &mut locked,
            false,
        )?;
        children.push(child);
    }
    Some(InvocationSpec {
        object,
        method,
        path,
        children,
        abort: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_families_at_every_tier() {
        for tier in Tier::ALL {
            let zoo = all(tier);
            assert_eq!(zoo.len(), 6);
            let mut names: Vec<_> = zoo.iter().map(|s| s.family).collect();
            names.dedup();
            assert_eq!(names.len(), 6, "family names must be unique");
            for s in &zoo {
                assert_eq!(s.tier, tier);
                assert!(s.name().ends_with(tier.label()));
            }
        }
    }

    #[test]
    fn tiny_scenarios_generate_valid_families() {
        for scenario in all(Tier::Tiny) {
            let (registry, families) = scenario.generate().unwrap();
            assert_eq!(
                registry.num_objects() as u32,
                scenario.config.num_objects,
                "{}",
                scenario.name()
            );
            assert!(
                families.len() as u32 >= scenario.config.num_families / 2,
                "{}: only {}/{} families generated",
                scenario.name(),
                families.len(),
                scenario.config.num_families
            );
            let sys = scenario.system_config();
            for f in &families {
                validate_family(f, &registry, &sys).unwrap();
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for scenario in all(Tier::Tiny) {
            let (_, a) = scenario.generate().unwrap();
            let (_, b) = scenario.generate().unwrap();
            assert_eq!(a, b, "{}", scenario.name());
        }
    }

    #[test]
    fn depth_and_width_respect_declared_bounds() {
        fn depth(inv: &InvocationSpec) -> u32 {
            1 + inv.children.iter().map(depth).max().unwrap_or(0)
        }
        fn max_width(inv: &InvocationSpec) -> u32 {
            inv.children
                .iter()
                .map(max_width)
                .max()
                .unwrap_or(0)
                .max(inv.children.len() as u32)
        }
        for scenario in all(Tier::Tiny) {
            let (_, families) = scenario.generate().unwrap();
            for f in &families {
                assert!(depth(&f.root) <= scenario.declared_max_depth());
                assert!(max_width(&f.root) <= scenario.declared_max_width());
            }
        }
    }

    #[test]
    fn deep_trees_are_deeper_than_wide_trees() {
        fn depth(inv: &InvocationSpec) -> u32 {
            1 + inv.children.iter().map(depth).max().unwrap_or(0)
        }
        let max_depth = |family: &str| {
            let (_, families) = by_name(family, Tier::Tiny).unwrap().generate().unwrap();
            families.iter().map(|f| depth(&f.root)).max().unwrap()
        };
        assert!(max_depth("deep_trees") > max_depth("wide_trees"));
    }

    #[test]
    fn wide_trees_have_wide_nodes() {
        fn max_width(inv: &InvocationSpec) -> u32 {
            inv.children
                .iter()
                .map(max_width)
                .max()
                .unwrap_or(0)
                .max(inv.children.len() as u32)
        }
        let (_, families) = by_name("wide_trees", Tier::Tiny)
            .unwrap()
            .generate()
            .unwrap();
        let widest = families.iter().map(|f| max_width(&f.root)).max().unwrap();
        assert!(widest >= 3, "expected sibling fan-out, widest {widest}");
    }

    #[test]
    fn hotspot_migration_moves_the_hot_set() {
        let scenario = by_name("hotspot_migration", Tier::Quick).unwrap();
        let (_, families) = scenario.generate().unwrap();
        // Compare the most popular root receiver in the first vs last
        // quarter of the run: four phases must not share a hot head.
        let top = |fams: &[FamilySpec]| {
            let mut counts = std::collections::BTreeMap::new();
            for f in fams {
                *counts.entry(f.root.object).or_insert(0u32) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        let quarter = families.len() / 4;
        let early = top(&families[..quarter]);
        let late = top(&families[families.len() - quarter..]);
        assert_ne!(early, late, "hot object should migrate between phases");
    }

    #[test]
    fn tenant_draws_stay_inside_the_tenant() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..200 {
            let tenant = rng.next_below(10) as u32;
            let obj = tenant_instance(tenant, 12, 120, 4, rng.next_below(4) as u32, &mut rng);
            let obj = obj.unwrap();
            assert!(obj.index() >= tenant * 12 && obj.index() < (tenant + 1) * 12);
        }
    }

    #[test]
    fn criteria_evaluate_reports_violations() {
        let criteria = SuccessCriteria {
            min_commit_fraction: 0.9,
            max_abort_rate: 0.01,
            max_p99: SimDuration::from_micros(1),
        };
        let stats = RunStats::default();
        let failures = criteria.evaluate(10, &stats);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("commit fraction"));
        assert!(failures[1].contains("p99 undefined"));
    }

    #[test]
    fn hot_share_math_is_sane() {
        let scenario = by_name("multi_tenant", Tier::Quick).unwrap();
        let share = scenario.expected_hot_share(0.01);
        assert!(share > 0.1 && share < 0.5, "{share}");
        let hot = scenario.hot_objects(0.01);
        // One hot tenant out of 100 → 20 objects of a 2000-object space.
        assert_eq!(hot.len(), 20);
        let flat = by_name("scaleout", Tier::Tiny).unwrap();
        let hot = flat.hot_objects(0.01);
        assert_eq!(hot.len(), 4, "one per class");
    }
}
