//! Random class-schema synthesis.
//!
//! Generates class hierarchies whose compiled objects land in a requested
//! page-size range, with:
//!
//! * several attributes of uneven sizes (so attribute→page mapping is
//!   non-trivial and methods genuinely touch page *subsets*),
//! * multi-path methods whose paths touch different attribute subsets (so
//!   conservative prediction is a strict superset of most runs — the
//!   effect LOTEC exploits), and
//! * invocation sites that only ever point at *higher-numbered* classes
//!   (a DAG), which terminates nesting and makes the mutually recursive
//!   invocations precluded by §3.4 unrepresentable.

use lotec_object::{ClassBuilder, ClassDef, ClassId, MethodId};
use lotec_sim::SimRng;

/// Knobs for schema synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaConfig {
    /// Number of classes to generate.
    pub num_classes: u32,
    /// Inclusive range of object sizes, in pages.
    pub pages_min: u16,
    /// Inclusive upper bound of object sizes, in pages.
    pub pages_max: u16,
    /// DSM page size in bytes.
    pub page_size: u32,
    /// Inclusive range of attribute counts per class.
    pub attrs_min: u16,
    /// Inclusive upper bound of attribute counts per class.
    pub attrs_max: u16,
    /// Methods per class.
    pub methods_per_class: u32,
    /// Control-flow paths per method (≥ 2 makes prediction conservative).
    pub paths_per_method: u32,
    /// Probability that a path touches any given attribute.
    pub attr_touch_prob: f64,
    /// Probability that a touched attribute is also written.
    pub write_prob: f64,
    /// Probability that a method is read-only (no path writes anything).
    pub read_only_method_prob: f64,
    /// Probability that a path of a non-last class carries an invocation
    /// site (nesting). Drawn once per potential site.
    pub invoke_prob: f64,
    /// Maximum invocation sites per path. Values ≥ 2 produce sibling
    /// sub-transactions, which is what exercises lock retention: a later
    /// sibling can reacquire an object its pre-committed sibling locked,
    /// served locally from the parent's retained lock (Alg. 4.1 fast
    /// path).
    pub max_sites_per_path: u32,
}

impl Default for SchemaConfig {
    fn default() -> Self {
        SchemaConfig {
            num_classes: 4,
            pages_min: 1,
            pages_max: 5,
            page_size: 4096,
            attrs_min: 4,
            attrs_max: 10,
            methods_per_class: 4,
            paths_per_method: 3,
            attr_touch_prob: 0.4,
            write_prob: 0.7,
            read_only_method_prob: 0.25,
            invoke_prob: 0.5,
            max_sites_per_path: 2,
        }
    }
}

/// Synthesizes `config.num_classes` classes.
///
/// Deterministic for a given `rng` state.
///
/// # Panics
///
/// Panics if the page range is empty or zero classes are requested.
pub fn generate_classes(config: &SchemaConfig, rng: &mut SimRng) -> Vec<ClassDef> {
    assert!(config.num_classes > 0, "need at least one class");
    assert!(
        config.pages_min >= 1 && config.pages_min <= config.pages_max,
        "invalid page range"
    );
    (0..config.num_classes)
        .map(|class_idx| generate_class(config, class_idx, rng))
        .collect()
}

/// Pre-drawn shape of one method path: touched attribute indices, the
/// subset written, and (callee class, callee method) invocation sites.
type PathSpec = (Vec<usize>, Vec<usize>, Vec<(u32, u32)>);

fn generate_class(config: &SchemaConfig, class_idx: u32, rng: &mut SimRng) -> ClassDef {
    // Pick a total size in bytes within the page range; shave a little off
    // the top so the last page is partially filled (realistic layouts).
    let pages = rng.range_inclusive(config.pages_min as u64, config.pages_max as u64) as u32;
    let max_bytes = pages * config.page_size;
    let min_bytes = (pages - 1) * config.page_size + 1;
    let total = rng.range_inclusive(min_bytes as u64, max_bytes as u64) as u32;

    // Split the total into attribute sizes.
    let n_attrs = rng.range_inclusive(config.attrs_min as u64, config.attrs_max as u64) as u32;
    let n_attrs = n_attrs.min(total); // every attribute needs >= 1 byte
    let mut cuts: Vec<u32> = (0..n_attrs - 1)
        .map(|_| rng.range_inclusive(1, (total - 1) as u64) as u32)
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut sizes = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0;
    for &c in &cuts {
        sizes.push(c - prev);
        prev = c;
    }
    sizes.push(total - prev);

    let mut builder = ClassBuilder::new(format!("C{class_idx}"));
    let mut names = Vec::with_capacity(sizes.len());
    for (i, &size) in sizes.iter().enumerate() {
        let name = format!("a{i}");
        builder = builder.attribute(name.clone(), size);
        names.push(name);
    }

    for m in 0..config.methods_per_class {
        let read_only = rng.chance(config.read_only_method_prob);
        let n_paths = config.paths_per_method.max(1);
        // Pre-draw everything path-related so the closure stays simple.
        let mut path_specs: Vec<PathSpec> = Vec::new();
        for _ in 0..n_paths {
            let mut touched: Vec<usize> = (0..names.len())
                .filter(|_| rng.chance(config.attr_touch_prob))
                .collect();
            if touched.is_empty() {
                touched.push(rng.usize_range(0, names.len()));
            }
            let writes: Vec<usize> = if read_only {
                Vec::new()
            } else {
                let w: Vec<usize> = touched
                    .iter()
                    .copied()
                    .filter(|_| rng.chance(config.write_prob))
                    .collect();
                if w.is_empty() {
                    vec![touched[0]]
                } else {
                    w
                }
            };
            // Invocation sites: DAG — only classes with a larger index.
            // Multiple sites per path create sibling sub-transactions.
            let mut sites = Vec::new();
            if class_idx + 1 < config.num_classes {
                for _ in 0..config.max_sites_per_path.max(1) {
                    if rng.chance(config.invoke_prob) {
                        let target_class = rng.range_inclusive(
                            (class_idx + 1) as u64,
                            (config.num_classes - 1) as u64,
                        ) as u32;
                        let target_method = rng.next_below(config.methods_per_class as u64) as u32;
                        sites.push((target_class, target_method));
                    }
                }
            }
            path_specs.push((touched, writes, sites));
        }

        builder = builder.method(format!("m{m}"), |mut mb| {
            for (touched, writes, sites) in &path_specs {
                mb = mb.path(|mut pb| {
                    let read_names: Vec<&str> =
                        touched.iter().map(|&i| names[i].as_str()).collect();
                    let write_names: Vec<&str> =
                        writes.iter().map(|&i| names[i].as_str()).collect();
                    pb = pb.reads(&read_names).writes(&write_names);
                    for (c, m) in sites {
                        pb = pb.invokes(ClassId::new(*c), MethodId::new(*m));
                    }
                    pb
                });
            }
            mb
        });
    }
    builder.build()
}

/// Sanity report of a generated schema, used by tests and by the bench
/// harness banner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaSummary {
    /// Number of classes.
    pub classes: usize,
    /// Smallest object size in pages (after layout).
    pub min_pages: u16,
    /// Largest object size in pages.
    pub max_pages: u16,
    /// Total methods across classes.
    pub methods: usize,
}

/// Summarizes `classes` under `page_size`.
pub fn summarize(classes: &[ClassDef], page_size: u32) -> SchemaSummary {
    let mut min_pages = u16::MAX;
    let mut max_pages = 0;
    let mut methods = 0;
    for class in classes {
        let layout = lotec_object::Layout::of(class, page_size);
        min_pages = min_pages.min(layout.num_pages());
        max_pages = max_pages.max(layout.num_pages());
        methods += class.methods().len();
    }
    SchemaSummary {
        classes: classes.len(),
        min_pages,
        max_pages,
        methods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotec_object::compile;

    fn cfg(pages_min: u16, pages_max: u16) -> SchemaConfig {
        SchemaConfig {
            pages_min,
            pages_max,
            ..SchemaConfig::default()
        }
    }

    #[test]
    fn sizes_land_in_requested_page_range() {
        let mut rng = SimRng::seed_from_u64(1);
        for (lo, hi) in [(1u16, 5u16), (10, 20), (3, 3)] {
            let classes = generate_classes(&cfg(lo, hi), &mut rng);
            let summary = summarize(&classes, 4096);
            assert!(summary.min_pages >= lo, "{summary:?}");
            assert!(summary.max_pages <= hi, "{summary:?}");
        }
    }

    #[test]
    fn classes_compile_and_predictions_are_sound() {
        let mut rng = SimRng::seed_from_u64(2);
        let classes = generate_classes(&cfg(1, 5), &mut rng);
        for class in &classes {
            let compiled = compile(class, 4096).unwrap();
            assert_eq!(compiled.verify(), Ok(()));
        }
    }

    #[test]
    fn invocation_sites_form_a_dag() {
        let mut rng = SimRng::seed_from_u64(3);
        let classes = generate_classes(&cfg(1, 5), &mut rng);
        for (idx, class) in classes.iter().enumerate() {
            for method in class.methods() {
                for path in method.paths() {
                    for site in path.invokes() {
                        assert!(
                            site.class.index() as usize > idx,
                            "site must point at a later class"
                        );
                        assert!((site.class.index()) < classes.len() as u32);
                    }
                }
            }
        }
    }

    #[test]
    fn read_only_methods_exist_and_write_methods_write() {
        let mut rng = SimRng::seed_from_u64(4);
        let config = SchemaConfig {
            read_only_method_prob: 0.5,
            ..cfg(1, 5)
        };
        let mut saw_read_only = false;
        let mut saw_writer = false;
        for _ in 0..10 {
            for class in generate_classes(&config, &mut rng) {
                for method in class.methods() {
                    if method.is_read_only() {
                        saw_read_only = true;
                    } else {
                        saw_writer = true;
                        // Every path of a writer method writes something.
                        for path in method.paths() {
                            assert!(!path.writes().is_empty());
                        }
                    }
                }
            }
        }
        assert!(saw_read_only && saw_writer);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let ca = generate_classes(&cfg(1, 5), &mut a);
        let cb = generate_classes(&cfg(1, 5), &mut b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn every_path_touches_something() {
        let mut rng = SimRng::seed_from_u64(8);
        let config = SchemaConfig {
            attr_touch_prob: 0.01,
            ..cfg(1, 2)
        };
        for class in generate_classes(&config, &mut rng) {
            for method in class.methods() {
                for path in method.paths() {
                    assert!(!path.touched().is_empty());
                }
            }
        }
    }
}
