//! Transaction-family generation.

use std::fmt;

use lotec_core::spec::{validate_family, FamilySpec, InvocationSpec};
use lotec_core::SystemConfig;
use lotec_mem::ObjectId;
use lotec_object::{ClassId, MethodId, ObjectRegistry, PathId};
use lotec_sim::{NodeId, SimDuration, SimRng, SimTime};

use crate::schema::{generate_classes, SchemaConfig};
use crate::zipf::Zipf;

/// Full description of a workload scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Schema synthesis knobs.
    pub schema: SchemaConfig,
    /// Number of shared objects (instances over the generated classes).
    pub num_objects: u32,
    /// Number of transaction families (root invocations).
    pub num_families: u32,
    /// Number of cluster nodes.
    pub num_nodes: u32,
    /// Zipf skew of receiver selection — the contention knob. 0 = uniform,
    /// ~1 = heavily skewed (the paper's "high contention").
    pub zipf_theta: f64,
    /// Mean inter-arrival gap between family starts.
    pub mean_arrival_gap: SimDuration,
    /// Probability that any sub-transaction (non-root invocation) is
    /// fault-injected to abort.
    pub abort_prob: f64,
    /// Master seed; everything derives from it.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            schema: SchemaConfig::default(),
            num_objects: 20,
            num_families: 100,
            num_nodes: 8,
            zipf_theta: 0.9,
            mean_arrival_gap: SimDuration::from_micros(50),
            abort_prob: 0.0,
            seed: 0x10C_7EC,
        }
    }
}

/// Errors from workload generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// Generated registry failed to build.
    Registry(String),
    /// A generated family failed core validation (a generator bug).
    InvalidFamily(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Registry(msg) => write!(f, "registry generation failed: {msg}"),
            WorkloadError::InvalidFamily(msg) => write!(f, "generated family invalid: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A named, generatable scenario (one figure's workload).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name ("fig2: medium objects, high contention").
    pub name: String,
    /// The workload parameters.
    pub config: WorkloadConfig,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(name: impl Into<String>, config: WorkloadConfig) -> Self {
        Scenario {
            name: name.into(),
            config,
        }
    }

    /// Generates the registry and families.
    ///
    /// # Errors
    ///
    /// See [`generate`].
    pub fn generate(&self) -> Result<(ObjectRegistry, Vec<FamilySpec>), WorkloadError> {
        generate(&self.config)
    }

    /// A [`SystemConfig`] matching this scenario's node count and page
    /// size (other knobs at their defaults).
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            num_nodes: self.config.num_nodes,
            page_size: self.config.schema.page_size,
            seed: self.config.seed,
            ..SystemConfig::default()
        }
    }
}

/// Generates a workload: a compiled object registry plus the transaction
/// families to run against it. Fully deterministic for a given config.
///
/// ```
/// use lotec_workload::{gen, WorkloadConfig};
///
/// let config = WorkloadConfig { num_families: 10, ..WorkloadConfig::default() };
/// let (registry, families) = gen::generate(&config)?;
/// assert_eq!(registry.num_objects(), 20);
/// assert!(families.len() <= 10);
/// # Ok::<(), lotec_workload::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError`] if the schema fails to compile or a generated
/// family fails validation (both indicate generator bugs, surfaced rather
/// than panicking so the bench harness can report them).
pub fn generate(
    config: &WorkloadConfig,
) -> Result<(ObjectRegistry, Vec<FamilySpec>), WorkloadError> {
    let root_rng = SimRng::seed_from_u64(config.seed);
    let mut schema_rng = root_rng.fork(1);
    let mut placement_rng = root_rng.fork(2);
    let mut tree_rng = root_rng.fork(3);
    let mut timing_rng = root_rng.fork(4);

    let classes = generate_classes(&config.schema, &mut schema_rng);

    // Instantiate objects round-robin over classes, homed on random nodes.
    let objects: Vec<(ClassId, NodeId)> = (0..config.num_objects)
        .map(|i| {
            let class = ClassId::new(i % config.schema.num_classes);
            let home = NodeId::new(placement_rng.next_below(config.num_nodes as u64) as u32);
            (class, home)
        })
        .collect();
    let registry = ObjectRegistry::build(&classes, &objects, config.schema.page_size)
        .map_err(|e| WorkloadError::Registry(e.to_string()))?;

    // Index object instances by class for receiver selection.
    let mut by_class: Vec<Vec<ObjectId>> = vec![Vec::new(); config.schema.num_classes as usize];
    for inst in registry.objects() {
        by_class[inst.class.index() as usize].push(inst.id);
    }

    // One zipf sampler per class (skew applies within the class's
    // instances; combined with round-robin instantiation this skews the
    // global access pattern the same way).
    let samplers: Vec<Option<Zipf>> = by_class
        .iter()
        .map(|objs| (!objs.is_empty()).then(|| Zipf::new(objs.len(), config.zipf_theta)))
        .collect();

    let sys = SystemConfig {
        num_nodes: config.num_nodes,
        page_size: config.schema.page_size,
        ..SystemConfig::default()
    };

    let mut families = Vec::with_capacity(config.num_families as usize);
    let mut clock = SimTime::ZERO;
    for f in 0..config.num_families {
        // Exponential-ish inter-arrival: -ln(U) * mean.
        let u = timing_rng.f64().max(1e-12);
        let gap = SimDuration::from_secs_f64(-u.ln() * config.mean_arrival_gap.as_secs_f64());
        clock += gap;
        let node = NodeId::new(timing_rng.next_below(config.num_nodes as u64) as u32);

        // Root receiver: drawn over all objects (zipf over the flattened,
        // class-major order so low object ids are the hot ones, matching
        // the paper's figure labels where O0… are the busiest).
        let root_class = tree_rng.next_below(config.schema.num_classes as u64) as usize;
        let root = build_invocation(
            &registry,
            &by_class,
            &samplers,
            root_class,
            None,
            &mut tree_rng,
            config.abort_prob,
            &mut Vec::new(),
            true,
        );
        let Some(root) = root else {
            // No instance of the drawn class (possible when objects <
            // classes); retry deterministically with class 0 which always
            // has an instance when num_objects >= 1.
            continue;
        };
        let family = FamilySpec {
            node,
            start: clock,
            root,
        };
        validate_family(&family, &registry, &sys)
            .map_err(|e| WorkloadError::InvalidFamily(e.to_string()))?;
        families.push(family);
        let _ = f;
    }
    Ok((registry, families))
}

/// Builds one invocation subtree of class `class_idx`, excluding receivers
/// in `locked` (ancestors' receivers — §3.4 forbids recursion onto them;
/// the class DAG already prevents it, this is defence in depth).
///
/// Shared with the [`crate::zoo`] generator, which passes its own
/// per-phase receiver orderings in `by_class` but reuses the subtree
/// construction unchanged.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_invocation(
    registry: &ObjectRegistry,
    by_class: &[Vec<ObjectId>],
    samplers: &[Option<Zipf>],
    class_idx: usize,
    required_method: Option<MethodId>,
    rng: &mut SimRng,
    abort_prob: f64,
    locked: &mut Vec<ObjectId>,
    is_root: bool,
) -> Option<InvocationSpec> {
    let instances = &by_class[class_idx];
    let sampler = samplers[class_idx].as_ref()?;
    // Draw a receiver not already locked by an ancestor; bounded retries,
    // then fall back to any unlocked instance.
    let mut object = None;
    for _ in 0..8 {
        let candidate = instances[sampler.sample(rng)];
        if !locked.contains(&candidate) {
            object = Some(candidate);
            break;
        }
    }
    let object = object.or_else(|| instances.iter().copied().find(|o| !locked.contains(o)))?;

    let compiled = registry.class_of(object);
    let num_methods = compiled.class().methods().len();
    // A nested invocation's method is dictated by the parent's invocation
    // site; only the root draws freely.
    let method =
        required_method.unwrap_or_else(|| MethodId::new(rng.next_below(num_methods as u64) as u32));
    let num_paths = compiled.num_paths(method);
    let path = PathId::new(rng.next_below(num_paths as u64) as u32);

    let sites = compiled
        .class()
        .method(method)
        .path(path)
        .invokes()
        .to_vec();
    locked.push(object);
    let mut children = Vec::with_capacity(sites.len());
    for site in &sites {
        let child = build_invocation(
            registry,
            by_class,
            samplers,
            site.class.index() as usize,
            Some(site.method),
            rng,
            abort_prob,
            locked,
            false,
        );
        match child {
            Some(c) => children.push(c),
            // No eligible receiver for this site: cannot satisfy the
            // spec's arity; give up on this whole subtree.
            None => {
                locked.pop();
                return None;
            }
        }
    }
    locked.pop();

    let abort = !is_root && rng.chance(abort_prob);
    Some(InvocationSpec {
        object,
        method,
        path,
        children,
        abort,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            num_objects: 12,
            num_families: 30,
            num_nodes: 4,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn generates_valid_families() {
        let (registry, families) = generate(&small_config()).unwrap();
        assert_eq!(registry.num_objects(), 12);
        assert!(
            families.len() >= 25,
            "most draws should succeed: {}",
            families.len()
        );
        let sys = SystemConfig {
            num_nodes: 4,
            ..SystemConfig::default()
        };
        for f in &families {
            validate_family(f, &registry, &sys).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (r1, f1) = generate(&small_config()).unwrap();
        let (r2, f2) = generate(&small_config()).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(r1.num_objects(), r2.num_objects());
        let other = WorkloadConfig {
            seed: 1,
            ..small_config()
        };
        let (_, f3) = generate(&other).unwrap();
        assert_ne!(f1, f3);
    }

    #[test]
    fn arrivals_are_strictly_increasing_ish() {
        let (_, families) = generate(&small_config()).unwrap();
        for pair in families.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
    }

    #[test]
    fn zipf_skew_concentrates_root_receivers() {
        let config = WorkloadConfig {
            num_objects: 40, // 10 instances per class: room for real skew
            num_families: 400,
            zipf_theta: 1.1,
            ..small_config()
        };
        let (_, families) = generate(&config).unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for f in &families {
            *counts.entry(f.root.object).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = families.len() as u32 / counts.len().max(1) as u32;
        assert!(
            max > avg * 2,
            "skew should produce hot objects: max {max}, avg {avg}"
        );
    }

    #[test]
    fn abort_injection_marks_subtransactions_only() {
        let config = WorkloadConfig {
            abort_prob: 0.5,
            num_families: 100,
            ..small_config()
        };
        let (_, families) = generate(&config).unwrap();
        let mut injected = 0;
        for f in &families {
            assert!(!f.root.abort, "roots are never fault-injected");
            fn count(inv: &InvocationSpec) -> u32 {
                inv.children
                    .iter()
                    .map(|c| u32::from(c.abort) + count(c))
                    .sum()
            }
            injected += count(&f.root);
        }
        assert!(injected > 0, "with p=0.5 some faults must be injected");
    }

    #[test]
    fn nesting_occurs() {
        let (_, families) = generate(&small_config()).unwrap();
        assert!(
            families.iter().any(|f| f.root.size() > 1),
            "invoke_prob 0.5 should produce nested families"
        );
    }

    #[test]
    fn scenario_wrapper_works() {
        let s = Scenario::new("test", small_config());
        let (registry, families) = s.generate().unwrap();
        assert_eq!(registry.num_objects(), 12);
        assert!(!families.is_empty());
        let sys = s.system_config();
        assert_eq!(sys.num_nodes, 4);
    }
}
