//! Zipf-distributed sampling for skewed (high-contention) object access.

use lotec_sim::SimRng;

/// A Zipf(θ) sampler over `{0, …, n-1}`: item `i` is drawn with
/// probability proportional to `1 / (i+1)^θ`.
///
/// θ = 0 degenerates to uniform; θ around 0.9–1.2 produces the heavily
/// skewed access the paper's "high contention" scenarios need (a few hot
/// objects absorb most transactions).
///
/// ```
/// use lotec_workload::Zipf;
/// use lotec_sim::SimRng;
///
/// let zipf = Zipf::new(20, 1.0);
/// let mut rng = SimRng::seed_from_u64(7);
/// let mut hits = [0u32; 20];
/// for _ in 0..1_000 {
///     hits[zipf.sample(&mut rng)] += 1;
/// }
/// assert!(hits[0] > hits[19], "item 0 is the hot one");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    // Cumulative distribution, cdf[i] = P(X <= i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or `theta` is negative or not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the constructor rejects empty domains.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The probability mass of the `k` hottest items (ranks `0..k`) — the
    /// traffic share the skew *declares* for its head. Saturates at 1.0
    /// when `k` covers the domain; `k == 0` is a share of zero. The
    /// workload property suite compares empirical receiver counts against
    /// this declared share.
    pub fn top_share(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k - 1).min(self.cdf.len() - 1)]
        }
    }

    /// Draws one item.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        // Binary search for the first cdf entry >= u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_indexes() {
        let z = Zipf::new(20, 1.0);
        let mut rng = SimRng::seed_from_u64(2);
        let mut counts = [0u32; 20];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[5] && counts[5] > counts[19],
            "{counts:?}"
        );
        // Item 0 should absorb roughly 1/H(20) ~ 28% of draws.
        assert!(counts[0] > 8_000, "{counts:?}");
    }

    #[test]
    fn samples_cover_domain_and_stay_in_bounds() {
        let z = Zipf::new(7, 0.8);
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!(s < 7);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let z = Zipf::new(10, 0.9);
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_rejected() {
        Zipf::new(0, 1.0);
    }
}
