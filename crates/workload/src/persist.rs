//! Scenario persistence: save and reload workload configurations as JSON.
//!
//! Scenarios are fully described by their [`WorkloadConfig`] (generation
//! is deterministic from it), so persisting the config is enough to
//! reproduce a workload bit-for-bit anywhere — handy for sharing
//! regression cases and for pinning the exact parameters behind a
//! published figure.

use serde::{Deserialize, Serialize};

use lotec_sim::SimDuration;

use crate::gen::{Scenario, WorkloadConfig};
use crate::schema::SchemaConfig;

/// Serializable mirror of [`SchemaConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SchemaConfigDto {
    num_classes: u32,
    pages_min: u16,
    pages_max: u16,
    page_size: u32,
    attrs_min: u16,
    attrs_max: u16,
    methods_per_class: u32,
    paths_per_method: u32,
    attr_touch_prob: f64,
    write_prob: f64,
    read_only_method_prob: f64,
    invoke_prob: f64,
    #[serde(default = "default_max_sites")]
    max_sites_per_path: u32,
}

fn default_max_sites() -> u32 {
    1
}

/// Serializable mirror of [`Scenario`] (durations as nanoseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioDto {
    name: String,
    schema: SchemaConfigDto,
    num_objects: u32,
    num_families: u32,
    num_nodes: u32,
    zipf_theta: f64,
    mean_arrival_gap_ns: u64,
    abort_prob: f64,
    seed: u64,
}

impl From<&Scenario> for ScenarioDto {
    fn from(s: &Scenario) -> Self {
        let c = &s.config;
        ScenarioDto {
            name: s.name.clone(),
            schema: SchemaConfigDto {
                num_classes: c.schema.num_classes,
                pages_min: c.schema.pages_min,
                pages_max: c.schema.pages_max,
                page_size: c.schema.page_size,
                attrs_min: c.schema.attrs_min,
                attrs_max: c.schema.attrs_max,
                methods_per_class: c.schema.methods_per_class,
                paths_per_method: c.schema.paths_per_method,
                attr_touch_prob: c.schema.attr_touch_prob,
                write_prob: c.schema.write_prob,
                read_only_method_prob: c.schema.read_only_method_prob,
                invoke_prob: c.schema.invoke_prob,
                max_sites_per_path: c.schema.max_sites_per_path,
            },
            num_objects: c.num_objects,
            num_families: c.num_families,
            num_nodes: c.num_nodes,
            zipf_theta: c.zipf_theta,
            mean_arrival_gap_ns: c.mean_arrival_gap.as_nanos(),
            abort_prob: c.abort_prob,
            seed: c.seed,
        }
    }
}

impl From<ScenarioDto> for Scenario {
    fn from(d: ScenarioDto) -> Self {
        Scenario::new(
            d.name,
            WorkloadConfig {
                schema: SchemaConfig {
                    num_classes: d.schema.num_classes,
                    pages_min: d.schema.pages_min,
                    pages_max: d.schema.pages_max,
                    page_size: d.schema.page_size,
                    attrs_min: d.schema.attrs_min,
                    attrs_max: d.schema.attrs_max,
                    methods_per_class: d.schema.methods_per_class,
                    paths_per_method: d.schema.paths_per_method,
                    attr_touch_prob: d.schema.attr_touch_prob,
                    write_prob: d.schema.write_prob,
                    read_only_method_prob: d.schema.read_only_method_prob,
                    invoke_prob: d.schema.invoke_prob,
                    max_sites_per_path: d.schema.max_sites_per_path,
                },
                num_objects: d.num_objects,
                num_families: d.num_families,
                num_nodes: d.num_nodes,
                zipf_theta: d.zipf_theta,
                mean_arrival_gap: SimDuration::from_nanos(d.mean_arrival_gap_ns),
                abort_prob: d.abort_prob,
                seed: d.seed,
            },
        )
    }
}

/// Serializes a scenario to pretty JSON.
///
/// # Errors
///
/// Returns the underlying `serde_json` error (practically unreachable for
/// this plain-data structure).
pub fn to_json(scenario: &Scenario) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&ScenarioDto::from(scenario))
}

/// Deserializes a scenario from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns the underlying `serde_json` error on malformed input.
pub fn from_json(json: &str) -> Result<Scenario, serde_json::Error> {
    serde_json::from_str::<ScenarioDto>(json).map(Scenario::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn roundtrip_preserves_scenario_exactly() {
        for scenario in presets::all_figures() {
            let json = to_json(&scenario).unwrap();
            let back = from_json(&json).unwrap();
            assert_eq!(back, scenario);
        }
    }

    #[test]
    fn reloaded_scenario_regenerates_identical_workload() {
        let scenario = presets::quick(presets::fig2());
        let json = to_json(&scenario).unwrap();
        let back = from_json(&json).unwrap();
        let (_, original) = scenario.generate().unwrap();
        let (_, reloaded) = back.generate().unwrap();
        assert_eq!(original, reloaded, "persistence must preserve determinism");
    }

    #[test]
    fn json_is_humanly_greppable() {
        let json = to_json(&presets::fig3()).unwrap();
        assert!(json.contains("\"pages_min\": 10"));
        assert!(json.contains("\"num_objects\": 20"));
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(from_json("{\"name\": 42}").is_err());
        assert!(from_json("").is_err());
    }
}
