//! Scenario persistence: save and reload workload configurations as JSON.
//!
//! Scenarios are fully described by their [`WorkloadConfig`] (generation
//! is deterministic from it), so persisting the config is enough to
//! reproduce a workload bit-for-bit anywhere — handy for sharing
//! regression cases and for pinning the exact parameters behind a
//! published figure.
//!
//! Serialization goes through the dependency-free [`lotec_obs::json`]
//! value type (the build environment cannot fetch `serde`).

use lotec_obs::json::{Json, JsonError};
use lotec_sim::SimDuration;

use crate::gen::{Scenario, WorkloadConfig};
use crate::schema::SchemaConfig;

fn u64_field(json: &Json, key: &str) -> Result<u64, JsonError> {
    json.require(key)?
        .as_u64()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be a non-negative integer")))
}

fn u32_field(json: &Json, key: &str) -> Result<u32, JsonError> {
    u64_field(json, key).and_then(|v| {
        u32::try_from(v).map_err(|_| JsonError::new(format!("`{key}` out of u32 range")))
    })
}

fn u16_field(json: &Json, key: &str) -> Result<u16, JsonError> {
    u64_field(json, key).and_then(|v| {
        u16::try_from(v).map_err(|_| JsonError::new(format!("`{key}` out of u16 range")))
    })
}

fn f64_field(json: &Json, key: &str) -> Result<f64, JsonError> {
    json.require(key)?
        .as_f64()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be a number")))
}

fn schema_to_json(s: &SchemaConfig) -> Json {
    Json::obj(vec![
        ("num_classes", Json::U64(s.num_classes as u64)),
        ("pages_min", Json::U64(s.pages_min as u64)),
        ("pages_max", Json::U64(s.pages_max as u64)),
        ("page_size", Json::U64(s.page_size as u64)),
        ("attrs_min", Json::U64(s.attrs_min as u64)),
        ("attrs_max", Json::U64(s.attrs_max as u64)),
        ("methods_per_class", Json::U64(s.methods_per_class as u64)),
        ("paths_per_method", Json::U64(s.paths_per_method as u64)),
        ("attr_touch_prob", Json::F64(s.attr_touch_prob)),
        ("write_prob", Json::F64(s.write_prob)),
        ("read_only_method_prob", Json::F64(s.read_only_method_prob)),
        ("invoke_prob", Json::F64(s.invoke_prob)),
        ("max_sites_per_path", Json::U64(s.max_sites_per_path as u64)),
    ])
}

fn schema_from_json(json: &Json) -> Result<SchemaConfig, JsonError> {
    Ok(SchemaConfig {
        num_classes: u32_field(json, "num_classes")?,
        pages_min: u16_field(json, "pages_min")?,
        pages_max: u16_field(json, "pages_max")?,
        page_size: u32_field(json, "page_size")?,
        attrs_min: u16_field(json, "attrs_min")?,
        attrs_max: u16_field(json, "attrs_max")?,
        methods_per_class: u32_field(json, "methods_per_class")?,
        paths_per_method: u32_field(json, "paths_per_method")?,
        attr_touch_prob: f64_field(json, "attr_touch_prob")?,
        write_prob: f64_field(json, "write_prob")?,
        read_only_method_prob: f64_field(json, "read_only_method_prob")?,
        invoke_prob: f64_field(json, "invoke_prob")?,
        // Older scenario files predate multi-site paths; default to 1.
        max_sites_per_path: match json.get("max_sites_per_path") {
            Some(_) => u32_field(json, "max_sites_per_path")?,
            None => 1,
        },
    })
}

/// Serializes a scenario to pretty JSON.
///
/// # Errors
///
/// Never fails in practice (kept fallible for signature stability with
/// the loading direction).
pub fn to_json(scenario: &Scenario) -> Result<String, JsonError> {
    let c = &scenario.config;
    let doc = Json::obj(vec![
        ("name", Json::str(scenario.name.clone())),
        ("schema", schema_to_json(&c.schema)),
        ("num_objects", Json::U64(c.num_objects as u64)),
        ("num_families", Json::U64(c.num_families as u64)),
        ("num_nodes", Json::U64(c.num_nodes as u64)),
        ("zipf_theta", Json::F64(c.zipf_theta)),
        (
            "mean_arrival_gap_ns",
            Json::U64(c.mean_arrival_gap.as_nanos()),
        ),
        ("abort_prob", Json::F64(c.abort_prob)),
        ("seed", Json::U64(c.seed)),
    ]);
    Ok(doc.render_pretty())
}

/// Deserializes a scenario from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or missing / mistyped
/// fields.
pub fn from_json(json: &str) -> Result<Scenario, JsonError> {
    let doc = Json::parse(json)?;
    let name = doc
        .require("name")?
        .as_str()
        .ok_or_else(|| JsonError::new("`name` must be a string"))?
        .to_string();
    let schema = schema_from_json(doc.require("schema")?)?;
    Ok(Scenario::new(
        name,
        WorkloadConfig {
            schema,
            num_objects: u32_field(&doc, "num_objects")?,
            num_families: u32_field(&doc, "num_families")?,
            num_nodes: u32_field(&doc, "num_nodes")?,
            zipf_theta: f64_field(&doc, "zipf_theta")?,
            mean_arrival_gap: SimDuration::from_nanos(u64_field(&doc, "mean_arrival_gap_ns")?),
            abort_prob: f64_field(&doc, "abort_prob")?,
            seed: u64_field(&doc, "seed")?,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn roundtrip_preserves_scenario_exactly() {
        for scenario in presets::all_figures() {
            let json = to_json(&scenario).unwrap();
            let back = from_json(&json).unwrap();
            assert_eq!(back, scenario);
        }
    }

    #[test]
    fn reloaded_scenario_regenerates_identical_workload() {
        let scenario = presets::quick(presets::fig2());
        let json = to_json(&scenario).unwrap();
        let back = from_json(&json).unwrap();
        let (_, original) = scenario.generate().unwrap();
        let (_, reloaded) = back.generate().unwrap();
        assert_eq!(original, reloaded, "persistence must preserve determinism");
    }

    #[test]
    fn json_is_humanly_greppable() {
        let json = to_json(&presets::fig3()).unwrap();
        assert!(json.contains("\"pages_min\": 10"));
        assert!(json.contains("\"num_objects\": 20"));
    }

    #[test]
    fn missing_max_sites_defaults_to_one() {
        let scenario = presets::quick(presets::fig2());
        let json = to_json(&scenario).unwrap();
        let stripped: String = json
            .lines()
            .filter(|l| !l.contains("max_sites_per_path"))
            .collect::<Vec<_>>()
            .join("\n")
            // Removing the last schema field leaves a trailing comma.
            .replace("\"invoke_prob\": 0.5,", "\"invoke_prob\": 0.5");
        let back = from_json(&stripped).expect("legacy file should load");
        assert_eq!(back.config.schema.max_sites_per_path, 1);
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(from_json("{\"name\": 42}").is_err());
        assert!(from_json("").is_err());
        assert!(
            from_json("{\"name\": \"x\"}").is_err(),
            "missing fields error"
        );
    }
}
