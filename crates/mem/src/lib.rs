//! Page-grained shared memory for the LOTEC reproduction.
//!
//! LOTEC is described in the paper as a *page-based* DSM system in which
//! objects span one or more pages and consistency is maintained at object
//! granularity but transferred at page granularity. This crate provides the
//! memory substrate:
//!
//! * [`ObjectId`], [`PageIndex`], [`PageId`], [`Version`] — identities,
//! * [`Page`] — a versioned page payload,
//! * [`PageStore`] — one node's local page cache with dirty tracking,
//! * [`UndoLog`] / [`ShadowPages`] — the two recovery mechanisms the paper
//!   names for sub-transaction UNDO (both purely local, no network),
//! * [`PageMap`] — the GDO-side map from each page of an object to the node
//!   holding its most up-to-date version (the structure that lets LOTEC
//!   leave an object's current pages *scattered* across nodes).
//!
//! # Example
//!
//! ```
//! use lotec_mem::{ObjectId, PageId, PageStore};
//!
//! let mut store = PageStore::new(128);
//! let page = PageId::new(ObjectId::new(0), 3);
//! store.install(page, lotec_mem::Version::new(1), vec![0xAB; 128]);
//! assert_eq!(store.version_of(page).unwrap().get(), 1);
//! store.write(page, &[1, 2, 3]);
//! assert!(store.is_dirty(page));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atlas;
pub mod ids;
pub mod page;
pub mod pagemap;
pub mod store;
pub mod undo;

pub use atlas::PageAtlas;
pub use ids::{ObjectId, PageId, PageIndex, Version};
pub use page::{mix, Page, PageData};
pub use pagemap::{PageLocation, PageMap};
pub use store::PageStore;
pub use undo::{Recovery, ShadowPages, UndoLog};
