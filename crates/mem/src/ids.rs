//! Identities for objects, pages and page versions.

use std::fmt;

/// Identifies a shared object.
///
/// Objects are the unit of locking and consistency in LOTEC; the paper
/// labels them `O0`, `O1`, … in its figures, which [`fmt::Display`] mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Constructs an object id from its index.
    pub const fn new(index: u32) -> Self {
        ObjectId(index)
    }

    /// The underlying index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Iterator over the first `count` object ids.
    pub fn all(count: u32) -> impl Iterator<Item = ObjectId> + Clone {
        (0..count).map(ObjectId)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// Index of a page *within* an object (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageIndex(u16);

impl PageIndex {
    /// Constructs a page index.
    pub const fn new(index: u16) -> Self {
        PageIndex(index)
    }

    /// The underlying index.
    pub const fn get(self) -> u16 {
        self.0
    }
}

impl fmt::Display for PageIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Globally unique page identity: an object plus a page index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    object: ObjectId,
    index: PageIndex,
}

impl PageId {
    /// Constructs the id of page `index` of `object`.
    pub const fn new(object: ObjectId, index: u16) -> Self {
        PageId {
            object,
            index: PageIndex::new(index),
        }
    }

    /// The owning object.
    pub const fn object(self) -> ObjectId {
        self.object
    }

    /// The page index within the object.
    pub const fn index(self) -> PageIndex {
        self.index
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.object, self.index)
    }
}

/// A monotonically increasing page version.
///
/// Every root-commit of a family that dirtied a page advances that page's
/// version; version comparison is how OTEC and LOTEC decide whether a
/// cached copy is stale. Version 0 means "initial, never written".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(u64);

impl Version {
    /// The initial version of every page.
    pub const INITIAL: Version = Version(0);

    /// Constructs a specific version.
    pub const fn new(v: u64) -> Self {
        Version(v)
    }

    /// The raw counter.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The next version.
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// True if `self` is newer than `other`.
    pub const fn is_newer_than(self, other: Version) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_display_matches_paper_labels() {
        assert_eq!(ObjectId::new(19).to_string(), "O19");
    }

    #[test]
    fn page_id_components() {
        let p = PageId::new(ObjectId::new(4), 2);
        assert_eq!(p.object(), ObjectId::new(4));
        assert_eq!(p.index().get(), 2);
        assert_eq!(p.to_string(), "O4/p2");
    }

    #[test]
    fn version_ordering() {
        let v0 = Version::INITIAL;
        let v1 = v0.next();
        assert!(v1.is_newer_than(v0));
        assert!(!v0.is_newer_than(v1));
        assert!(!v1.is_newer_than(v1));
        assert_eq!(v1.get(), 1);
        assert_eq!(v1.to_string(), "v1");
    }

    #[test]
    fn object_all_enumerates() {
        assert_eq!(
            ObjectId::all(2).collect::<Vec<_>>(),
            vec![ObjectId::new(0), ObjectId::new(1)]
        );
    }

    #[test]
    fn page_ids_order_by_object_then_index() {
        let a = PageId::new(ObjectId::new(1), 9);
        let b = PageId::new(ObjectId::new(2), 0);
        assert!(a < b);
    }
}
