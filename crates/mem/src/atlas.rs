//! Dense global page numbering over a fixed object layout.
//!
//! Object layouts are fixed for the lifetime of a run: the workload
//! registers objects `O0..On` in order, each with a known page count.
//! That makes every page addressable by a single dense *slot* — the
//! object's base offset (a prefix sum over preceding objects' page
//! counts) plus the page index. Hot per-page state can then live in flat
//! `Vec`s indexed by slot instead of `BTreeMap<(ObjectId, PageIndex), _>`
//! lookups.
//!
//! Slot order equals `PageId` order (objects ascending, pages ascending
//! within an object), so iterating a dense structure in slot order visits
//! pages in exactly the order the ordered maps did — determinism-neutral
//! by construction.

use crate::ids::{ObjectId, PageId};

/// Immutable mapping between [`PageId`]s and dense global slot numbers.
///
/// Built once from the object layout and shared (it is cheap enough to
/// clone, but typically wrapped in an `Arc` and handed to every node's
/// page store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageAtlas {
    /// `bases[o]` = slot of page 0 of object `o`; one trailing entry holds
    /// the total page count so `num_pages` is a subtraction.
    bases: Vec<usize>,
    /// Slot → id, precomputed so reverse lookups are a single index.
    page_ids: Vec<PageId>,
}

impl PageAtlas {
    /// Builds an atlas for objects `O0..On` where object `i` spans
    /// `pages_per_object[i]` pages.
    pub fn new(pages_per_object: &[u16]) -> Self {
        let mut bases = Vec::with_capacity(pages_per_object.len() + 1);
        let mut total = 0usize;
        for &n in pages_per_object {
            bases.push(total);
            total += usize::from(n);
        }
        bases.push(total);
        let mut page_ids = Vec::with_capacity(total);
        for (o, &n) in pages_per_object.iter().enumerate() {
            for p in 0..n {
                page_ids.push(PageId::new(ObjectId::new(o as u32), p));
            }
        }
        PageAtlas { bases, page_ids }
    }

    /// An atlas of `objects` objects, each spanning `pages` pages.
    pub fn uniform(objects: u32, pages: u16) -> Self {
        Self::new(&vec![pages; objects as usize])
    }

    /// Number of objects in the layout.
    pub fn num_objects(&self) -> u32 {
        (self.bases.len() - 1) as u32
    }

    /// Total number of pages across all objects.
    pub fn total_pages(&self) -> usize {
        self.page_ids.len()
    }

    /// Number of pages of `object`.
    pub fn num_pages(&self, object: ObjectId) -> u16 {
        let o = object.index() as usize;
        (self.bases[o + 1] - self.bases[o]) as u16
    }

    /// The dense slot of `page`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via an explicit assertion, in release via
    /// the callee's bounds check) if the page lies outside the layout.
    pub fn slot(&self, page: PageId) -> usize {
        let o = page.object().index() as usize;
        let slot = self.bases[o] + usize::from(page.index().get());
        debug_assert!(
            slot < self.bases[o + 1],
            "page {page} outside object layout"
        );
        slot
    }

    /// The page stored at `slot` (inverse of [`PageAtlas::slot`]).
    pub fn page_id(&self, slot: usize) -> PageId {
        self.page_ids[slot]
    }

    /// The contiguous slot range spanned by `object`'s pages.
    pub fn object_slots(&self, object: ObjectId) -> std::ops::Range<usize> {
        let o = object.index() as usize;
        self.bases[o]..self.bases[o + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_dense_and_ordered() {
        let atlas = PageAtlas::new(&[3, 1, 4]);
        assert_eq!(atlas.num_objects(), 3);
        assert_eq!(atlas.total_pages(), 8);
        let mut expected = 0;
        for o in 0..3u32 {
            for p in 0..atlas.num_pages(ObjectId::new(o)) {
                let id = PageId::new(ObjectId::new(o), p);
                assert_eq!(atlas.slot(id), expected);
                assert_eq!(atlas.page_id(expected), id);
                expected += 1;
            }
        }
    }

    #[test]
    fn slot_order_equals_page_id_order() {
        let atlas = PageAtlas::new(&[2, 5, 1]);
        let ids: Vec<PageId> = (0..atlas.total_pages()).map(|s| atlas.page_id(s)).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn uniform_layout() {
        let atlas = PageAtlas::uniform(4, 6);
        assert_eq!(atlas.total_pages(), 24);
        assert_eq!(atlas.num_pages(ObjectId::new(3)), 6);
        assert_eq!(atlas.slot(PageId::new(ObjectId::new(3), 5)), 23);
    }

    #[test]
    fn empty_objects_are_allowed() {
        let atlas = PageAtlas::new(&[2, 0, 3]);
        assert_eq!(atlas.num_pages(ObjectId::new(1)), 0);
        assert_eq!(atlas.slot(PageId::new(ObjectId::new(2), 0)), 2);
    }
}
