//! The GDO-side page map: which node holds the newest version of each page
//! of an object.
//!
//! Under LOTEC "there may not be a single site at which a complete,
//! up-to-date copy of a given object exists. Instead, the up-to-date parts
//! of an object may be scattered throughout the distributed system on
//! multiple nodes. The locations of the up-to-date pages of each object are
//! tracked in the GDO using the page map" (paper §4.1, Figure 1). Dirty-page
//! information is piggybacked on global lock releases; the map is sent to
//! the acquiring site with each global lock grant.

use std::collections::BTreeSet;

use lotec_sim::NodeId;

use crate::ids::{PageIndex, Version};

/// Where the newest copy of one page lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLocation {
    /// Node holding the newest version.
    pub node: NodeId,
    /// That newest version.
    pub version: Version,
}

/// Per-object map: page index → newest location, plus the set of sites
/// holding (possibly stale) cached copies of the object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMap {
    locations: Vec<PageLocation>,
    caching_sites: BTreeSet<NodeId>,
}

impl PageMap {
    /// Creates the map for an object of `num_pages` pages whose initial
    /// (version-0) copy lives at `home`.
    ///
    /// # Panics
    ///
    /// Panics if `num_pages` is zero — every object occupies at least one
    /// page.
    pub fn new(num_pages: u16, home: NodeId) -> Self {
        assert!(num_pages > 0, "object must span at least one page");
        PageMap {
            locations: vec![
                PageLocation {
                    node: home,
                    version: Version::INITIAL
                };
                num_pages as usize
            ],
            caching_sites: BTreeSet::from([home]),
        }
    }

    /// Number of pages the object spans.
    pub fn num_pages(&self) -> u16 {
        self.locations.len() as u16
    }

    /// The newest location of page `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for this object.
    pub fn location(&self, index: PageIndex) -> PageLocation {
        self.locations[index.get() as usize]
    }

    /// Records that `node` committed an update to page `index`, advancing
    /// the page's version. Returns the new version.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn record_update(&mut self, index: PageIndex, node: NodeId) -> Version {
        let slot = &mut self.locations[index.get() as usize];
        slot.node = node;
        slot.version = slot.version.next();
        self.caching_sites.insert(node);
        slot.version
    }

    /// Records that `node` now caches (a current copy of) page `index` —
    /// page transfers make the receiving site a caching site.
    pub fn record_cached(&mut self, node: NodeId) {
        self.caching_sites.insert(node);
    }

    /// Crash repair: repoints page `index` at `survivor` *without*
    /// advancing the version — the survivor holds a byte-identical copy of
    /// the same committed version, so this is a directory fix-up, not a
    /// new write. Used when the recorded owner's node crashes.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn reassign_owner(&mut self, index: PageIndex, survivor: NodeId) {
        self.locations[index.get() as usize].node = survivor;
        self.caching_sites.insert(survivor);
    }

    /// Crash repair: drops `node` from the caching-site set (its caches
    /// are cold after a crash). The owner locations are untouched — use
    /// [`PageMap::reassign_owner`] for pages the crashed node owned.
    pub fn forget_caching_site(&mut self, node: NodeId) {
        self.caching_sites.remove(&node);
    }

    /// Sites holding cached copies of the object (current or stale). Used
    /// by the release-consistency extension, which must eagerly push
    /// updates to all of them.
    pub fn caching_sites(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.caching_sites.iter().copied()
    }

    /// Number of caching sites.
    pub fn num_caching_sites(&self) -> usize {
        self.caching_sites.len()
    }

    /// Iterator over `(page index, newest location)` for all pages.
    pub fn entries(&self) -> impl Iterator<Item = (PageIndex, PageLocation)> + '_ {
        self.locations
            .iter()
            .enumerate()
            .map(|(i, &loc)| (PageIndex::new(i as u16), loc))
    }

    /// Pages whose newest version is newer than the `local` versions
    /// reported by a prospective acquirer. `local(i)` returns the version
    /// the acquirer caches for page `i`, or `None` if uncached.
    pub fn stale_pages<F>(&self, local: F) -> Vec<PageIndex>
    where
        F: Fn(PageIndex) -> Option<Version>,
    {
        self.entries()
            .filter(|(idx, loc)| match local(*idx) {
                None => true, // no local copy at all: always needed
                Some(v) => loc.version.is_newer_than(v),
            })
            .map(|(idx, _)| idx)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn new_map_points_home_at_initial_version() {
        let m = PageMap::new(3, n(2));
        assert_eq!(m.num_pages(), 3);
        for (_, loc) in m.entries() {
            assert_eq!(
                loc,
                PageLocation {
                    node: n(2),
                    version: Version::INITIAL
                }
            );
        }
        assert_eq!(m.caching_sites().collect::<Vec<_>>(), vec![n(2)]);
    }

    #[test]
    fn record_update_moves_and_versions() {
        let mut m = PageMap::new(2, n(0));
        let v = m.record_update(PageIndex::new(1), n(3));
        assert_eq!(v, Version::new(1));
        assert_eq!(
            m.location(PageIndex::new(1)),
            PageLocation {
                node: n(3),
                version: Version::new(1)
            }
        );
        // Page 0 untouched.
        assert_eq!(m.location(PageIndex::new(0)).version, Version::INITIAL);
        // Updating site became a caching site.
        assert_eq!(m.num_caching_sites(), 2);
    }

    #[test]
    fn versions_increase_monotonically() {
        let mut m = PageMap::new(1, n(0));
        let v1 = m.record_update(PageIndex::new(0), n(1));
        let v2 = m.record_update(PageIndex::new(0), n(0));
        assert!(v2.is_newer_than(v1));
    }

    #[test]
    fn stale_pages_compares_versions() {
        let mut m = PageMap::new(3, n(0));
        m.record_update(PageIndex::new(0), n(1)); // v1
        m.record_update(PageIndex::new(2), n(1)); // v1
                                                  // Acquirer caches page 0 at v1 (current), page 2 at v0 (stale),
                                                  // and does not cache page 1 at all.
        let stale = m.stale_pages(|idx| match idx.get() {
            0 => Some(Version::new(1)),
            2 => Some(Version::INITIAL),
            _ => None,
        });
        // Page 1 is uncached -> needed; page 2 stale -> needed.
        assert_eq!(stale, vec![PageIndex::new(1), PageIndex::new(2)]);
    }

    #[test]
    fn uncached_initial_pages_are_still_needed() {
        // Even a never-written page must be fetched if the acquirer has no
        // copy at all (it needs the zero-filled initial content's home copy).
        let m = PageMap::new(1, n(0));
        let stale = m.stale_pages(|_| None);
        assert_eq!(stale, vec![PageIndex::new(0)]);
    }

    #[test]
    fn reassign_owner_keeps_version() {
        let mut m = PageMap::new(2, n(0));
        m.record_update(PageIndex::new(0), n(3)); // v1 at node 3
        m.reassign_owner(PageIndex::new(0), n(1));
        assert_eq!(
            m.location(PageIndex::new(0)),
            PageLocation {
                node: n(1),
                version: Version::new(1)
            },
            "owner moves, version does not advance"
        );
        assert!(m.caching_sites().any(|s| s == n(1)));
    }

    #[test]
    fn forget_caching_site_drops_cold_caches() {
        let mut m = PageMap::new(1, n(0));
        m.record_cached(n(2));
        assert_eq!(m.num_caching_sites(), 2);
        m.forget_caching_site(n(2));
        assert_eq!(m.caching_sites().collect::<Vec<_>>(), vec![n(0)]);
    }

    #[test]
    #[should_panic]
    fn location_bounds_checked() {
        PageMap::new(1, n(0)).location(PageIndex::new(5));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_page_object_rejected() {
        PageMap::new(0, n(0));
    }
}
