//! Sub-transaction UNDO: undo logging and shadow paging.
//!
//! The paper (§4.1, Algorithm 4.3) notes that "the UNDO operations required
//! by the `LocalLockRelease` routine may be done using either local UNDO
//! logs or shadow pages. In either case, no network communication is
//! required." Both strategies are implemented behind the [`Recovery`]
//! trait so the execution engine (and the recovery ablation bench) can
//! switch between them.

use std::collections::BTreeMap;

use crate::ids::{PageId, Version};
use crate::page::PageData;
use crate::store::PageStore;

/// A recovery strategy: capture page pre-images when a transaction first
/// touches a page, and either discard them (commit) or reapply them
/// (abort).
///
/// `token` identifies the [sub-]transaction whose writes are being guarded;
/// the engine uses raw transaction ids. Implementations are purely local —
/// rollback never generates network traffic.
pub trait Recovery {
    /// Records the pre-image of `page` for transaction `token` if this is
    /// the transaction's first write to that page.
    fn before_write(&mut self, token: u64, store: &PageStore, page: PageId);

    /// Discards transaction `token`'s pre-images (it pre-committed; its
    /// parent — or the root commit — now owns the fate of the data).
    fn forget(&mut self, token: u64);

    /// Restores every page `token` touched to its pre-image and returns the
    /// restored page ids.
    fn rollback(&mut self, token: u64, store: &mut PageStore) -> Vec<PageId>;

    /// Moves `token`'s pre-images to `parent` *underneath* any pre-image the
    /// parent already holds (the parent's pre-image is older and wins).
    ///
    /// Used at sub-transaction pre-commit under closed nesting: if an
    /// ancestor later aborts, the child's committed writes must roll back
    /// with it.
    fn inherit(&mut self, token: u64, parent: u64);
}

/// Pre-image kept for one page.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PreImage {
    /// The page did not exist locally before the write.
    Absent,
    /// The page existed with this version and payload. The payload is a
    /// copy-on-write handle: capture is a refcount bump, and the bytes are
    /// only duplicated when the store's copy is subsequently written.
    Present(Version, PageData),
}

fn capture(store: &PageStore, page: PageId) -> PreImage {
    match store.get(page) {
        None => PreImage::Absent,
        Some(p) => PreImage::Present(p.version(), p.payload()),
    }
}

fn apply(store: &mut PageStore, page: PageId, pre: PreImage) {
    match pre {
        PreImage::Absent => store.evict(page),
        PreImage::Present(version, data) => {
            if store.contains(page) {
                store.restore(page, version, data);
            } else {
                store.install(page, version, data);
            }
            store.mark_clean(page);
        }
    }
}

/// Undo-log recovery: pre-images are captured into a per-transaction log on
/// first write; rollback replays the log.
///
/// ```
/// use lotec_mem::{ObjectId, PageId, PageStore, Recovery, UndoLog};
///
/// let mut store = PageStore::new(64);
/// let mut undo = UndoLog::new();
/// let page = PageId::new(ObjectId::new(0), 0);
/// store.ensure(page);
/// let before = store.chain(page);
///
/// undo.before_write(1, &store, page); // transaction 1 is about to write
/// store.apply_stamp(page, 42);
/// assert_ne!(store.chain(page), before);
///
/// undo.rollback(1, &mut store);       // transaction 1 aborts
/// assert_eq!(store.chain(page), before);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    // token -> (page, pre-image) pairs in first-write order (first write
    // wins). A transaction touches a handful of pages, so a linear scan of
    // a flat Vec beats a tree walk on the per-write hot path.
    logs: BTreeMap<u64, Vec<(PageId, PreImage)>>,
}

impl UndoLog {
    /// Creates an empty undo log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of transactions with live log entries.
    pub fn active_transactions(&self) -> usize {
        self.logs.len()
    }

    /// Number of pre-images held for `token`.
    pub fn entries_for(&self, token: u64) -> usize {
        self.logs.get(&token).map_or(0, Vec::len)
    }
}

impl Recovery for UndoLog {
    fn before_write(&mut self, token: u64, store: &PageStore, page: PageId) {
        let log = self.logs.entry(token).or_default();
        if !log.iter().any(|(p, _)| *p == page) {
            log.push((page, capture(store, page)));
        }
    }

    fn forget(&mut self, token: u64) {
        self.logs.remove(&token);
    }

    fn rollback(&mut self, token: u64, store: &mut PageStore) -> Vec<PageId> {
        let Some(log) = self.logs.remove(&token) else {
            return Vec::new();
        };
        let mut restored = Vec::with_capacity(log.len());
        for (page, pre) in log {
            apply(store, page, pre);
            restored.push(page);
        }
        restored
    }

    fn inherit(&mut self, token: u64, parent: u64) {
        let Some(child) = self.logs.remove(&token) else {
            return;
        };
        let parent_log = self.logs.entry(parent).or_default();
        for (page, pre) in child {
            // The parent's existing pre-image (if any) is older: keep it.
            if !parent_log.iter().any(|(p, _)| *p == page) {
                parent_log.push((page, pre));
            }
        }
    }
}

/// Shadow-page recovery: a full shadow copy of each touched page is kept;
/// rollback swaps the shadows back in.
///
/// Functionally equivalent to [`UndoLog`] in this simulator (both capture
/// whole-page pre-images); kept as a distinct type because the paper names
/// both and the recovery ablation bench compares their bookkeeping costs.
#[derive(Debug, Clone, Default)]
pub struct ShadowPages {
    shadows: BTreeMap<(u64, PageId), PreImage>,
}

impl ShadowPages {
    /// Creates an empty shadow table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of shadow pages currently held.
    pub fn len(&self) -> usize {
        self.shadows.len()
    }

    /// True when no shadows are held.
    pub fn is_empty(&self) -> bool {
        self.shadows.is_empty()
    }
}

impl Recovery for ShadowPages {
    fn before_write(&mut self, token: u64, store: &PageStore, page: PageId) {
        self.shadows
            .entry((token, page))
            .or_insert_with(|| capture(store, page));
    }

    fn forget(&mut self, token: u64) {
        self.shadows.retain(|(t, _), _| *t != token);
    }

    fn rollback(&mut self, token: u64, store: &mut PageStore) -> Vec<PageId> {
        let keys: Vec<(u64, PageId)> = self
            .shadows
            .range((token, PageId::new(crate::ObjectId::new(0), 0))..)
            .take_while(|((t, _), _)| *t == token)
            .map(|(k, _)| *k)
            .collect();
        let mut restored = Vec::with_capacity(keys.len());
        for key in keys {
            let pre = self.shadows.remove(&key).expect("key just enumerated");
            apply(store, key.1, pre);
            restored.push(key.1);
        }
        restored
    }

    fn inherit(&mut self, token: u64, parent: u64) {
        let keys: Vec<(u64, PageId)> = self
            .shadows
            .range((token, PageId::new(crate::ObjectId::new(0), 0))..)
            .take_while(|((t, _), _)| *t == token)
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            let pre = self.shadows.remove(&key).expect("key just enumerated");
            self.shadows.entry((parent, key.1)).or_insert(pre);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;

    fn pid(o: u32, i: u16) -> PageId {
        PageId::new(ObjectId::new(o), i)
    }

    fn check_roundtrip<R: Recovery>(mut rec: R) {
        let mut store = PageStore::new(8);
        store.install(pid(0, 0), Version::new(2), 7u64.to_le_bytes().to_vec());
        let before = store.chain(pid(0, 0));

        rec.before_write(1, &store, pid(0, 0));
        store.apply_stamp(pid(0, 0), 99);
        rec.before_write(1, &store, pid(0, 1)); // page absent before
        store.apply_stamp(pid(0, 1), 99);

        assert_ne!(store.chain(pid(0, 0)), before);
        let restored = rec.rollback(1, &mut store);
        assert_eq!(restored.len(), 2);
        assert_eq!(store.chain(pid(0, 0)), before);
        assert_eq!(store.version_of(pid(0, 0)), Some(Version::new(2)));
        assert!(!store.is_dirty(pid(0, 0)));
        assert!(
            !store.contains(pid(0, 1)),
            "absent page evicted on rollback"
        );
    }

    #[test]
    fn undo_log_roundtrip() {
        check_roundtrip(UndoLog::new());
    }

    #[test]
    fn shadow_pages_roundtrip() {
        check_roundtrip(ShadowPages::new());
    }

    fn check_first_write_wins<R: Recovery>(mut rec: R) {
        let mut store = PageStore::new(8);
        store.install(pid(0, 0), Version::new(1), 5u64.to_le_bytes().to_vec());
        let original = store.chain(pid(0, 0));
        rec.before_write(1, &store, pid(0, 0));
        store.apply_stamp(pid(0, 0), 1);
        // A second before_write must NOT re-capture the modified page.
        rec.before_write(1, &store, pid(0, 0));
        store.apply_stamp(pid(0, 0), 2);
        rec.rollback(1, &mut store);
        assert_eq!(store.chain(pid(0, 0)), original);
    }

    #[test]
    fn undo_log_first_write_wins() {
        check_first_write_wins(UndoLog::new());
    }

    #[test]
    fn shadow_first_write_wins() {
        check_first_write_wins(ShadowPages::new());
    }

    fn check_inherit_then_parent_abort<R: Recovery>(mut rec: R) {
        let mut store = PageStore::new(8);
        store.install(pid(0, 0), Version::new(1), 3u64.to_le_bytes().to_vec());
        let original = store.chain(pid(0, 0));

        // Child (token 2) writes, pre-commits; parent (token 1) inherits.
        rec.before_write(2, &store, pid(0, 0));
        store.apply_stamp(pid(0, 0), 20);
        rec.inherit(2, 1);

        // Parent writes the same page afterwards: its pre-image must not
        // overwrite the inherited (older) one.
        rec.before_write(1, &store, pid(0, 0));
        store.apply_stamp(pid(0, 0), 10);

        // Parent aborts: the *original* content returns.
        rec.rollback(1, &mut store);
        assert_eq!(store.chain(pid(0, 0)), original);
    }

    #[test]
    fn undo_log_inherit_then_parent_abort() {
        check_inherit_then_parent_abort(UndoLog::new());
    }

    #[test]
    fn shadow_inherit_then_parent_abort() {
        check_inherit_then_parent_abort(ShadowPages::new());
    }

    #[test]
    fn forget_discards_preimages() {
        let mut rec = UndoLog::new();
        let mut store = PageStore::new(8);
        rec.before_write(1, &store, pid(0, 0));
        store.apply_stamp(pid(0, 0), 1);
        let after = store.chain(pid(0, 0));
        rec.forget(1);
        assert_eq!(rec.rollback(1, &mut store), vec![]);
        assert_eq!(
            store.chain(pid(0, 0)),
            after,
            "forgotten txn can't roll back"
        );
    }

    #[test]
    fn rollback_of_unknown_token_is_noop() {
        let mut rec = ShadowPages::new();
        let mut store = PageStore::new(8);
        assert!(rec.rollback(42, &mut store).is_empty());
    }

    #[test]
    fn shadow_rollback_only_touches_own_token() {
        let mut rec = ShadowPages::new();
        let mut store = PageStore::new(8);
        store.install(pid(0, 0), Version::new(1), 1u64.to_le_bytes().to_vec());
        store.install(pid(0, 1), Version::new(1), 2u64.to_le_bytes().to_vec());
        rec.before_write(1, &store, pid(0, 0));
        rec.before_write(2, &store, pid(0, 1));
        store.apply_stamp(pid(0, 0), 1);
        store.apply_stamp(pid(0, 1), 2);
        let t2_chain = store.chain(pid(0, 1));
        rec.rollback(1, &mut store);
        assert_eq!(
            store.chain(pid(0, 1)),
            t2_chain,
            "token 2's pages untouched"
        );
        assert_eq!(rec.len(), 1);
    }
}
