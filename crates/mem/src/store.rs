//! One node's local page cache.

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{ObjectId, PageId, Version};
use crate::page::Page;

/// The local page cache of a single node.
///
/// Each site "keeps track of which locally cached pages have been made
/// dirty by transaction executions" (paper §4.1); that dirty information is
/// piggybacked on global lock releases to update the GDO page map. The
/// store uses ordered maps so iteration order — and therefore the
/// simulation — is deterministic.
#[derive(Debug, Clone)]
pub struct PageStore {
    page_size: usize,
    pages: BTreeMap<PageId, Page>,
    dirty: BTreeSet<PageId>,
}

impl PageStore {
    /// Creates an empty store whose pages are all `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size < 8` (see [`Page::zeroed`]).
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 8, "page size must be at least 8 bytes");
        PageStore {
            page_size,
            pages: BTreeMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// True if `page` is cached locally (at any version).
    pub fn contains(&self, page: PageId) -> bool {
        self.pages.contains_key(&page)
    }

    /// The cached version of `page`, if cached.
    pub fn version_of(&self, page: PageId) -> Option<Version> {
        self.pages.get(&page).map(Page::version)
    }

    /// Read-only access to a cached page.
    pub fn get(&self, page: PageId) -> Option<&Page> {
        self.pages.get(&page)
    }

    /// Installs (or replaces) a page received from another node.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `page_size` bytes.
    pub fn install(&mut self, page: PageId, version: Version, data: Vec<u8>) {
        assert_eq!(data.len(), self.page_size, "installed page has wrong size");
        self.pages.insert(page, Page::from_parts(version, data));
        self.dirty.remove(&page);
    }

    /// Ensures `page` exists locally, creating a zeroed
    /// [`Version::INITIAL`] page if absent. Returns its current version.
    pub fn ensure(&mut self, page: PageId) -> Version {
        self.pages
            .entry(page)
            .or_insert_with(|| Page::zeroed(self.page_size))
            .version()
    }

    /// Folds a write `stamp` into `page`'s content chain and marks it
    /// dirty. Creates the page (zeroed) if absent. Returns the new chain.
    pub fn apply_stamp(&mut self, page: PageId, stamp: u64) -> u64 {
        self.ensure(page);
        self.dirty.insert(page);
        self.pages
            .get_mut(&page)
            .expect("just ensured")
            .apply_stamp(stamp)
    }

    /// Overwrites the payload prefix of `page` and marks it dirty.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than the page size.
    pub fn write(&mut self, page: PageId, bytes: &[u8]) {
        self.ensure(page);
        self.dirty.insert(page);
        self.pages
            .get_mut(&page)
            .expect("just ensured")
            .write(bytes);
    }

    /// The content chain of `page` (zero if the page is absent).
    pub fn chain(&self, page: PageId) -> u64 {
        self.pages.get(&page).map_or(0, Page::chain)
    }

    /// True if `page` has uncommitted local modifications.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.dirty.contains(&page)
    }

    /// All dirty pages, in deterministic order.
    pub fn dirty_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.dirty.iter().copied()
    }

    /// Dirty pages belonging to `object`, in page-index order.
    pub fn dirty_pages_of(&self, object: ObjectId) -> Vec<PageId> {
        self.dirty
            .iter()
            .copied()
            .filter(|p| p.object() == object)
            .collect()
    }

    /// Publishes the dirty pages of `object` at `new_version` (the family's
    /// root has committed): stamps each with the version and clears its
    /// dirty bit. Returns the published pages.
    pub fn publish_object(&mut self, object: ObjectId, new_version: Version) -> Vec<PageId> {
        let published = self.dirty_pages_of(object);
        for &page in &published {
            self.pages
                .get_mut(&page)
                .expect("dirty page must be cached")
                .set_version(new_version);
            self.dirty.remove(&page);
        }
        published
    }

    /// Publishes a single dirty page at `version` (pages of one object may
    /// carry different version counters, so batch publication via
    /// [`PageStore::publish_object`] is not always applicable).
    ///
    /// # Panics
    ///
    /// Panics if the page is not cached.
    pub fn publish_page(&mut self, page: PageId, version: Version) {
        self.pages
            .get_mut(&page)
            .expect("publish of uncached page")
            .set_version(version);
        self.dirty.remove(&page);
    }

    /// Clears the dirty bit of `page` without publishing (used by UNDO).
    pub fn mark_clean(&mut self, page: PageId) {
        self.dirty.remove(&page);
    }

    /// Replaces the full contents of `page` (used by UNDO/shadow restore);
    /// version and dirty state are restored by the caller.
    ///
    /// # Panics
    ///
    /// Panics if the page is not cached or `data` has the wrong size.
    pub fn restore(&mut self, page: PageId, version: Version, data: Vec<u8>) {
        assert_eq!(data.len(), self.page_size, "restored page has wrong size");
        let p = self.pages.get_mut(&page).expect("restore of uncached page");
        *p = Page::from_parts(version, data);
    }

    /// Drops `page` from the cache entirely (used by UNDO when the page did
    /// not exist before the aborted transaction touched it).
    pub fn evict(&mut self, page: PageId) {
        self.pages.remove(&page);
        self.dirty.remove(&page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(o: u32, i: u16) -> PageId {
        PageId::new(ObjectId::new(o), i)
    }

    #[test]
    fn empty_store() {
        let s = PageStore::new(64);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(pid(0, 0)));
        assert_eq!(s.version_of(pid(0, 0)), None);
        assert_eq!(s.chain(pid(0, 0)), 0);
    }

    #[test]
    fn install_and_read_back() {
        let mut s = PageStore::new(16);
        s.install(pid(1, 0), Version::new(3), vec![7; 16]);
        assert!(s.contains(pid(1, 0)));
        assert_eq!(s.version_of(pid(1, 0)), Some(Version::new(3)));
        assert_eq!(s.get(pid(1, 0)).unwrap().data()[0], 7);
        assert!(!s.is_dirty(pid(1, 0)), "installed pages are clean");
    }

    #[test]
    fn stamp_marks_dirty_and_chains() {
        let mut s = PageStore::new(8);
        let c1 = s.apply_stamp(pid(0, 1), 42);
        assert!(s.is_dirty(pid(0, 1)));
        assert_eq!(s.chain(pid(0, 1)), c1);
        let c2 = s.apply_stamp(pid(0, 1), 43);
        assert_ne!(c1, c2);
    }

    #[test]
    fn publish_versions_and_cleans() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(2, 0), 1);
        s.apply_stamp(pid(2, 1), 1);
        s.apply_stamp(pid(3, 0), 1); // different object, untouched by publish
        let published = s.publish_object(ObjectId::new(2), Version::new(5));
        assert_eq!(published, vec![pid(2, 0), pid(2, 1)]);
        assert_eq!(s.version_of(pid(2, 0)), Some(Version::new(5)));
        assert!(!s.is_dirty(pid(2, 0)));
        assert!(s.is_dirty(pid(3, 0)));
    }

    #[test]
    fn dirty_iteration_is_ordered() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(1, 2), 1);
        s.apply_stamp(pid(0, 5), 1);
        s.apply_stamp(pid(1, 0), 1);
        let dirty: Vec<PageId> = s.dirty_pages().collect();
        assert_eq!(dirty, vec![pid(0, 5), pid(1, 0), pid(1, 2)]);
    }

    #[test]
    fn publish_page_sets_individual_versions() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(0, 0), 1);
        s.apply_stamp(pid(0, 1), 1);
        s.publish_page(pid(0, 0), Version::new(4));
        s.publish_page(pid(0, 1), Version::new(2));
        assert_eq!(s.version_of(pid(0, 0)), Some(Version::new(4)));
        assert_eq!(s.version_of(pid(0, 1)), Some(Version::new(2)));
        assert!(!s.is_dirty(pid(0, 0)) && !s.is_dirty(pid(0, 1)));
    }

    #[test]
    fn restore_and_evict() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(0, 0), 9);
        s.restore(pid(0, 0), Version::INITIAL, vec![0; 8]);
        assert_eq!(s.chain(pid(0, 0)), 0);
        s.evict(pid(0, 0));
        assert!(!s.contains(pid(0, 0)));
    }

    #[test]
    fn install_clears_dirty_bit() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(0, 0), 1);
        assert!(s.is_dirty(pid(0, 0)));
        s.install(pid(0, 0), Version::new(2), vec![0; 8]);
        assert!(!s.is_dirty(pid(0, 0)));
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn install_checks_size() {
        PageStore::new(16).install(pid(0, 0), Version::INITIAL, vec![0; 8]);
    }
}
