//! One node's local page cache.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::atlas::PageAtlas;
use crate::ids::{ObjectId, PageId, Version};
use crate::page::{Page, PageData};

/// The local page cache of a single node.
///
/// Each site "keeps track of which locally cached pages have been made
/// dirty by transaction executions" (paper §4.1); that dirty information is
/// piggybacked on global lock releases to update the GDO page map.
///
/// Two storage layouts sit behind one API. A store built with
/// [`PageStore::new`] keeps ordered maps (any [`PageId`] goes). A store
/// built with [`PageStore::with_atlas`] — what the engine uses — keeps flat
/// `Vec`s indexed by the atlas's dense global page numbering, so every
/// lookup on the simulation hot path is an array index instead of a tree
/// walk. Slot order equals `PageId` order, so iteration — and therefore
/// the simulation — is deterministic in both layouts.
#[derive(Debug, Clone)]
pub struct PageStore {
    page_size: usize,
    slots: Slots,
}

#[derive(Debug, Clone)]
enum Slots {
    /// Ordered-map layout: accepts arbitrary page ids.
    Sparse {
        pages: BTreeMap<PageId, Page>,
        dirty: BTreeSet<PageId>,
    },
    /// Flat layout over a fixed object layout; `cached` counts `Some`
    /// entries so `len` stays O(1).
    Dense {
        atlas: Arc<PageAtlas>,
        pages: Vec<Option<Page>>,
        dirty: Vec<bool>,
        cached: usize,
    },
}

/// Iterator over a store's dirty pages, in `PageId` order.
#[derive(Debug)]
pub struct DirtyPages<'a> {
    inner: DirtyInner<'a>,
}

#[derive(Debug)]
enum DirtyInner<'a> {
    Sparse(std::collections::btree_set::Iter<'a, PageId>),
    Dense {
        atlas: &'a PageAtlas,
        flags: std::iter::Enumerate<std::slice::Iter<'a, bool>>,
    },
}

impl Iterator for DirtyPages<'_> {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        match &mut self.inner {
            DirtyInner::Sparse(it) => it.next().copied(),
            DirtyInner::Dense { atlas, flags } => {
                for (slot, &dirty) in flags.by_ref() {
                    if dirty {
                        return Some(atlas.page_id(slot));
                    }
                }
                None
            }
        }
    }
}

impl PageStore {
    /// Creates an empty map-backed store whose pages are all `page_size`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size < 8` (see [`Page::zeroed`]).
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 8, "page size must be at least 8 bytes");
        PageStore {
            page_size,
            slots: Slots::Sparse {
                pages: BTreeMap::new(),
                dirty: BTreeSet::new(),
            },
        }
    }

    /// Creates an empty store laid out densely over `atlas` — every page
    /// operation is an array index. Only pages inside the atlas's layout
    /// may be touched.
    ///
    /// # Panics
    ///
    /// Panics if `page_size < 8`.
    pub fn with_atlas(page_size: usize, atlas: Arc<PageAtlas>) -> Self {
        assert!(page_size >= 8, "page size must be at least 8 bytes");
        let total = atlas.total_pages();
        PageStore {
            page_size,
            slots: Slots::Dense {
                atlas,
                pages: vec![None; total],
                dirty: vec![false; total],
                cached: 0,
            },
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        match &self.slots {
            Slots::Sparse { pages, .. } => pages.len(),
            Slots::Dense { cached, .. } => *cached,
        }
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of page data cached locally (pages × page size). Cheap: the
    /// state sampler reads this per node at every sample tick.
    #[must_use]
    pub fn cached_bytes(&self) -> u64 {
        self.len() as u64 * self.page_size as u64
    }

    /// True if `page` is cached locally (at any version).
    pub fn contains(&self, page: PageId) -> bool {
        match &self.slots {
            Slots::Sparse { pages, .. } => pages.contains_key(&page),
            Slots::Dense { atlas, pages, .. } => pages[atlas.slot(page)].is_some(),
        }
    }

    /// The cached version of `page`, if cached.
    pub fn version_of(&self, page: PageId) -> Option<Version> {
        self.get(page).map(Page::version)
    }

    /// Read-only access to a cached page.
    pub fn get(&self, page: PageId) -> Option<&Page> {
        match &self.slots {
            Slots::Sparse { pages, .. } => pages.get(&page),
            Slots::Dense { atlas, pages, .. } => pages[atlas.slot(page)].as_ref(),
        }
    }

    /// Installs (or replaces) a page received from another node. Accepts
    /// either owned bytes or a shared [`PageData`] handle — passing the
    /// handle makes the install a refcount bump.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `page_size` bytes.
    pub fn install(&mut self, page: PageId, version: Version, data: impl Into<PageData>) {
        let data = data.into();
        assert_eq!(data.len(), self.page_size, "installed page has wrong size");
        let installed = Page::from_parts(version, data);
        match &mut self.slots {
            Slots::Sparse { pages, dirty } => {
                pages.insert(page, installed);
                dirty.remove(&page);
            }
            Slots::Dense {
                atlas,
                pages,
                dirty,
                cached,
            } => {
                let slot = atlas.slot(page);
                if pages[slot].is_none() {
                    *cached += 1;
                }
                pages[slot] = Some(installed);
                dirty[slot] = false;
            }
        }
    }

    /// Ensures `page` exists locally, creating a zeroed
    /// [`Version::INITIAL`] page if absent. Returns its current version.
    pub fn ensure(&mut self, page: PageId) -> Version {
        let page_size = self.page_size;
        match &mut self.slots {
            Slots::Sparse { pages, .. } => pages
                .entry(page)
                .or_insert_with(|| Page::zeroed(page_size))
                .version(),
            Slots::Dense {
                atlas,
                pages,
                cached,
                ..
            } => {
                let slot = atlas.slot(page);
                if pages[slot].is_none() {
                    pages[slot] = Some(Page::zeroed(page_size));
                    *cached += 1;
                }
                pages[slot].as_ref().expect("just ensured").version()
            }
        }
    }

    /// Folds a write `stamp` into `page`'s content chain and marks it
    /// dirty. Creates the page (zeroed) if absent. Returns the new chain.
    pub fn apply_stamp(&mut self, page: PageId, stamp: u64) -> u64 {
        let page_size = self.page_size;
        match &mut self.slots {
            Slots::Sparse { pages, dirty } => {
                dirty.insert(page);
                pages
                    .entry(page)
                    .or_insert_with(|| Page::zeroed(page_size))
                    .apply_stamp(stamp)
            }
            Slots::Dense {
                atlas,
                pages,
                dirty,
                cached,
            } => {
                // One slot resolution covers the ensure and the stamp.
                let slot = atlas.slot(page);
                dirty[slot] = true;
                pages[slot]
                    .get_or_insert_with(|| {
                        *cached += 1;
                        Page::zeroed(page_size)
                    })
                    .apply_stamp(stamp)
            }
        }
    }

    /// Overwrites the payload prefix of `page` and marks it dirty.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than the page size.
    pub fn write(&mut self, page: PageId, bytes: &[u8]) {
        self.ensure(page);
        match &mut self.slots {
            Slots::Sparse { pages, dirty } => {
                dirty.insert(page);
                pages.get_mut(&page).expect("just ensured").write(bytes);
            }
            Slots::Dense {
                atlas,
                pages,
                dirty,
                ..
            } => {
                let slot = atlas.slot(page);
                dirty[slot] = true;
                pages[slot].as_mut().expect("just ensured").write(bytes);
            }
        }
    }

    /// The content chain of `page` (zero if the page is absent).
    pub fn chain(&self, page: PageId) -> u64 {
        self.get(page).map_or(0, Page::chain)
    }

    /// True if `page` has uncommitted local modifications.
    pub fn is_dirty(&self, page: PageId) -> bool {
        match &self.slots {
            Slots::Sparse { dirty, .. } => dirty.contains(&page),
            Slots::Dense { atlas, dirty, .. } => dirty[atlas.slot(page)],
        }
    }

    /// All dirty pages, in deterministic (`PageId`) order.
    pub fn dirty_pages(&self) -> DirtyPages<'_> {
        DirtyPages {
            inner: match &self.slots {
                Slots::Sparse { dirty, .. } => DirtyInner::Sparse(dirty.iter()),
                Slots::Dense { atlas, dirty, .. } => DirtyInner::Dense {
                    atlas,
                    flags: dirty.iter().enumerate(),
                },
            },
        }
    }

    /// Dirty pages belonging to `object`, in page-index order.
    pub fn dirty_pages_of(&self, object: ObjectId) -> Vec<PageId> {
        match &self.slots {
            Slots::Sparse { dirty, .. } => dirty
                .iter()
                .copied()
                .filter(|p| p.object() == object)
                .collect(),
            Slots::Dense { atlas, dirty, .. } => atlas
                .object_slots(object)
                .filter(|&s| dirty[s])
                .map(|s| atlas.page_id(s))
                .collect(),
        }
    }

    /// Publishes the dirty pages of `object` at `new_version` (the family's
    /// root has committed): stamps each with the version and clears its
    /// dirty bit. Returns the published pages.
    pub fn publish_object(&mut self, object: ObjectId, new_version: Version) -> Vec<PageId> {
        let published = self.dirty_pages_of(object);
        for &page in &published {
            self.publish_page(page, new_version);
        }
        published
    }

    /// Publishes a single dirty page at `version` (pages of one object may
    /// carry different version counters, so batch publication via
    /// [`PageStore::publish_object`] is not always applicable).
    ///
    /// # Panics
    ///
    /// Panics if the page is not cached.
    pub fn publish_page(&mut self, page: PageId, version: Version) {
        match &mut self.slots {
            Slots::Sparse { pages, dirty } => {
                pages
                    .get_mut(&page)
                    .expect("publish of uncached page")
                    .set_version(version);
                dirty.remove(&page);
            }
            Slots::Dense {
                atlas,
                pages,
                dirty,
                ..
            } => {
                let slot = atlas.slot(page);
                pages[slot]
                    .as_mut()
                    .expect("publish of uncached page")
                    .set_version(version);
                dirty[slot] = false;
            }
        }
    }

    /// Clears the dirty bit of `page` without publishing (used by UNDO).
    pub fn mark_clean(&mut self, page: PageId) {
        match &mut self.slots {
            Slots::Sparse { dirty, .. } => {
                dirty.remove(&page);
            }
            Slots::Dense { atlas, dirty, .. } => dirty[atlas.slot(page)] = false,
        }
    }

    /// Replaces the full contents of `page` (used by UNDO/shadow restore);
    /// version and dirty state are restored by the caller.
    ///
    /// # Panics
    ///
    /// Panics if the page is not cached or `data` has the wrong size.
    pub fn restore(&mut self, page: PageId, version: Version, data: impl Into<PageData>) {
        let data = data.into();
        assert_eq!(data.len(), self.page_size, "restored page has wrong size");
        let restored = Page::from_parts(version, data);
        match &mut self.slots {
            Slots::Sparse { pages, .. } => {
                let p = pages.get_mut(&page).expect("restore of uncached page");
                *p = restored;
            }
            Slots::Dense { atlas, pages, .. } => {
                let slot = atlas.slot(page);
                assert!(pages[slot].is_some(), "restore of uncached page");
                pages[slot] = Some(restored);
            }
        }
    }

    /// Drops `page` from the cache entirely (used by UNDO when the page did
    /// not exist before the aborted transaction touched it).
    pub fn evict(&mut self, page: PageId) {
        match &mut self.slots {
            Slots::Sparse { pages, dirty } => {
                pages.remove(&page);
                dirty.remove(&page);
            }
            Slots::Dense {
                atlas,
                pages,
                dirty,
                cached,
            } => {
                let slot = atlas.slot(page);
                if pages[slot].take().is_some() {
                    *cached -= 1;
                }
                dirty[slot] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(o: u32, i: u16) -> PageId {
        PageId::new(ObjectId::new(o), i)
    }

    #[test]
    fn empty_store() {
        let s = PageStore::new(64);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(pid(0, 0)));
        assert_eq!(s.version_of(pid(0, 0)), None);
        assert_eq!(s.chain(pid(0, 0)), 0);
    }

    #[test]
    fn install_and_read_back() {
        let mut s = PageStore::new(16);
        s.install(pid(1, 0), Version::new(3), vec![7; 16]);
        assert!(s.contains(pid(1, 0)));
        assert_eq!(s.version_of(pid(1, 0)), Some(Version::new(3)));
        assert_eq!(s.get(pid(1, 0)).unwrap().data()[0], 7);
        assert!(!s.is_dirty(pid(1, 0)), "installed pages are clean");
    }

    #[test]
    fn stamp_marks_dirty_and_chains() {
        let mut s = PageStore::new(8);
        let c1 = s.apply_stamp(pid(0, 1), 42);
        assert!(s.is_dirty(pid(0, 1)));
        assert_eq!(s.chain(pid(0, 1)), c1);
        let c2 = s.apply_stamp(pid(0, 1), 43);
        assert_ne!(c1, c2);
    }

    #[test]
    fn publish_versions_and_cleans() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(2, 0), 1);
        s.apply_stamp(pid(2, 1), 1);
        s.apply_stamp(pid(3, 0), 1); // different object, untouched by publish
        let published = s.publish_object(ObjectId::new(2), Version::new(5));
        assert_eq!(published, vec![pid(2, 0), pid(2, 1)]);
        assert_eq!(s.version_of(pid(2, 0)), Some(Version::new(5)));
        assert!(!s.is_dirty(pid(2, 0)));
        assert!(s.is_dirty(pid(3, 0)));
    }

    #[test]
    fn dirty_iteration_is_ordered() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(1, 2), 1);
        s.apply_stamp(pid(0, 5), 1);
        s.apply_stamp(pid(1, 0), 1);
        let dirty: Vec<PageId> = s.dirty_pages().collect();
        assert_eq!(dirty, vec![pid(0, 5), pid(1, 0), pid(1, 2)]);
    }

    #[test]
    fn publish_page_sets_individual_versions() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(0, 0), 1);
        s.apply_stamp(pid(0, 1), 1);
        s.publish_page(pid(0, 0), Version::new(4));
        s.publish_page(pid(0, 1), Version::new(2));
        assert_eq!(s.version_of(pid(0, 0)), Some(Version::new(4)));
        assert_eq!(s.version_of(pid(0, 1)), Some(Version::new(2)));
        assert!(!s.is_dirty(pid(0, 0)) && !s.is_dirty(pid(0, 1)));
    }

    #[test]
    fn restore_and_evict() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(0, 0), 9);
        s.restore(pid(0, 0), Version::INITIAL, vec![0; 8]);
        assert_eq!(s.chain(pid(0, 0)), 0);
        s.evict(pid(0, 0));
        assert!(!s.contains(pid(0, 0)));
    }

    #[test]
    fn install_clears_dirty_bit() {
        let mut s = PageStore::new(8);
        s.apply_stamp(pid(0, 0), 1);
        assert!(s.is_dirty(pid(0, 0)));
        s.install(pid(0, 0), Version::new(2), vec![0; 8]);
        assert!(!s.is_dirty(pid(0, 0)));
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn install_checks_size() {
        PageStore::new(16).install(pid(0, 0), Version::INITIAL, vec![0; 8]);
    }

    /// Replays the same operation sequence against both layouts and checks
    /// every observable result agrees.
    #[test]
    fn dense_layout_matches_sparse_layout() {
        let atlas = Arc::new(PageAtlas::new(&[6, 6, 6, 6]));
        let mut sparse = PageStore::new(8);
        let mut dense = PageStore::with_atlas(8, Arc::clone(&atlas));
        let ops: [(u32, u16, u64); 7] = [
            (0, 1, 11),
            (2, 5, 12),
            (0, 1, 13),
            (3, 0, 14),
            (1, 2, 15),
            (2, 0, 16),
            (0, 0, 17),
        ];
        for &(o, p, stamp) in &ops {
            assert_eq!(
                sparse.apply_stamp(pid(o, p), stamp),
                dense.apply_stamp(pid(o, p), stamp)
            );
        }
        assert_eq!(sparse.len(), dense.len());
        assert_eq!(
            sparse.dirty_pages().collect::<Vec<_>>(),
            dense.dirty_pages().collect::<Vec<_>>()
        );
        assert_eq!(
            sparse.dirty_pages_of(ObjectId::new(0)),
            dense.dirty_pages_of(ObjectId::new(0))
        );
        assert_eq!(
            sparse.publish_object(ObjectId::new(0), Version::new(2)),
            dense.publish_object(ObjectId::new(0), Version::new(2))
        );
        for &(o, p, _) in &ops {
            assert_eq!(sparse.chain(pid(o, p)), dense.chain(pid(o, p)));
            assert_eq!(sparse.version_of(pid(o, p)), dense.version_of(pid(o, p)));
            assert_eq!(sparse.is_dirty(pid(o, p)), dense.is_dirty(pid(o, p)));
        }
        sparse.evict(pid(2, 5));
        dense.evict(pid(2, 5));
        assert_eq!(sparse.len(), dense.len());
        assert!(!dense.contains(pid(2, 5)));
    }

    #[test]
    fn dense_install_restore_roundtrip() {
        let atlas = Arc::new(PageAtlas::uniform(2, 3));
        let mut s = PageStore::with_atlas(16, atlas);
        s.install(pid(1, 2), Version::new(3), vec![9; 16]);
        assert_eq!(s.len(), 1);
        s.apply_stamp(pid(1, 2), 5);
        s.restore(pid(1, 2), Version::new(3), vec![9; 16]);
        s.mark_clean(pid(1, 2));
        assert_eq!(s.get(pid(1, 2)).unwrap().data()[8], 9);
        assert!(!s.is_dirty(pid(1, 2)));
    }

    #[test]
    #[should_panic]
    fn dense_rejects_pages_outside_layout() {
        let atlas = Arc::new(PageAtlas::uniform(1, 2));
        let mut s = PageStore::with_atlas(8, atlas);
        s.ensure(pid(4, 0));
    }
}
