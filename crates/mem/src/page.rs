//! A versioned page of shared memory.

use std::sync::Arc;

use crate::ids::Version;

/// A copy-on-write page payload: a cheaply clonable handle to the bytes.
///
/// Page payloads are copied around constantly — gather batches, installs
/// into caches, undo pre-images, crash repair — but mutated only at the
/// single write site ([`Page::apply_stamp`] / [`Page::write`]). Backing
/// the bytes with an [`Arc`] makes every one of those copies a refcount
/// bump; the bytes themselves are cloned lazily, only when a write lands
/// on a payload that still shares its allocation.
///
/// The representation is *compact*: only the written prefix of the page
/// is materialized, and every byte past it is logically zero. `len()`
/// always reports the full logical size. In this simulator the only
/// mutation a page ever sees is the eight-byte content chain, so a 4 KiB
/// page costs an eight-byte buffer — and the copy-on-write clone a
/// pre-image forces is eight bytes instead of the whole page.
#[derive(Debug, Clone, Eq)]
pub struct PageData {
    /// Materialized prefix; `bytes.len() <= len`, the tail is logically
    /// zero.
    bytes: Arc<Vec<u8>>,
    /// Logical payload length in bytes.
    len: usize,
}

/// The shared empty allocation behind every never-written payload.
fn empty_bytes() -> Arc<Vec<u8>> {
    static EMPTY: std::sync::OnceLock<Arc<Vec<u8>>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

impl PageData {
    /// A zero-filled payload of `size` logical bytes. No byte buffer is
    /// allocated until something writes.
    pub fn zeroed(size: usize) -> Self {
        PageData {
            bytes: empty_bytes(),
            len: size,
        }
    }

    /// Logical payload length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is logically empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only view of the materialized prefix. Bytes at and beyond
    /// `as_slice().len()` are logically zero up to [`Self::len`].
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable view of the first `need` bytes, cloning the (prefix-sized)
    /// allocation first if it is still shared with another handle and
    /// materializing zeros up to `need`.
    ///
    /// # Panics
    ///
    /// Panics if `need` exceeds the logical length.
    fn make_mut(&mut self, need: usize) -> &mut [u8] {
        assert!(need <= self.len, "write larger than page");
        let bytes = Arc::make_mut(&mut self.bytes);
        if bytes.len() < need {
            bytes.resize(need, 0);
        }
        &mut bytes[..need]
    }
}

impl From<Vec<u8>> for PageData {
    fn from(bytes: Vec<u8>) -> Self {
        PageData {
            len: bytes.len(),
            bytes: Arc::new(bytes),
        }
    }
}

impl PartialEq for PageData {
    /// Logical equality: equal lengths and equal bytes, treating the
    /// unmaterialized tail of either side as zeros.
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let (a, b) = (self.as_slice(), other.as_slice());
        let common = a.len().min(b.len());
        a[..common] == b[..common]
            && a[common..].iter().all(|&x| x == 0)
            && b[common..].iter().all(|&x| x == 0)
    }
}

impl std::ops::Deref for PageData {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

/// One page: a version stamp plus its byte payload.
///
/// The first eight bytes of every page double as a *content chain*: each
/// logical write folds the writer's stamp into them via [`mix`]. The chain
/// is what the correctness tests compare against a serial re-execution
/// oracle — two executions that applied the same writes in the same order
/// produce byte-identical chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    version: Version,
    data: PageData,
}

/// Deterministically folds a write `stamp` into a content chain value.
///
/// The function is a strong 64-bit mixer (SplitMix64 finalizer over the XOR
/// of the inputs), so distinct write sequences collide with negligible
/// probability and *order matters*: `mix(mix(h, a), b) != mix(mix(h, b), a)`
/// in general.
pub fn mix(chain: u64, stamp: u64) -> u64 {
    let mut z = chain.rotate_left(17).wrapping_add(0x9E37_79B9_7F4A_7C15)
        ^ stamp.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Page {
    /// Creates a zero-filled page of `size` bytes at [`Version::INITIAL`].
    ///
    /// # Panics
    ///
    /// Panics if `size < 8` — every page must be able to hold its content
    /// chain.
    pub fn zeroed(size: usize) -> Self {
        assert!(size >= 8, "page size must be at least 8 bytes");
        Page {
            version: Version::INITIAL,
            data: PageData::zeroed(size),
        }
    }

    /// Creates a page from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() < 8`.
    pub fn from_parts(version: Version, data: impl Into<PageData>) -> Self {
        let data = data.into();
        assert!(data.len() >= 8, "page size must be at least 8 bytes");
        Page { version, data }
    }

    /// The page's version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Sets the page's version (used when a committed update is published).
    pub fn set_version(&mut self, version: Version) {
        self.version = version;
    }

    /// Page size in logical bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the payload's materialized prefix; bytes beyond
    /// it are logically zero up to [`Self::size`].
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// A cheap copy-on-write handle to the payload (a refcount bump, not a
    /// byte copy).
    pub fn payload(&self) -> PageData {
        self.data.clone()
    }

    /// Overwrites the payload prefix with `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than the page.
    pub fn write(&mut self, bytes: &[u8]) {
        self.data.make_mut(bytes.len()).copy_from_slice(bytes);
    }

    /// The current content-chain value (first eight bytes, little-endian).
    pub fn chain(&self) -> u64 {
        let prefix = self.data.as_slice();
        if prefix.len() >= 8 {
            u64::from_le_bytes(prefix[..8].try_into().expect("just checked"))
        } else {
            // Never stamped: the chain bytes are still logical zeros.
            let mut b = [0u8; 8];
            b[..prefix.len()].copy_from_slice(prefix);
            u64::from_le_bytes(b)
        }
    }

    /// Folds `stamp` into the content chain, mutating the page.
    /// Returns the new chain value.
    pub fn apply_stamp(&mut self, stamp: u64) -> u64 {
        let next = mix(self.chain(), stamp);
        self.data.make_mut(8).copy_from_slice(&next.to_le_bytes());
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_has_initial_state() {
        let p = Page::zeroed(64);
        assert_eq!(p.version(), Version::INITIAL);
        assert_eq!(p.size(), 64);
        assert!(p.data().iter().all(|&b| b == 0));
        assert_eq!(p.chain(), 0);
    }

    #[test]
    fn write_overwrites_prefix_only() {
        let mut p = Page::zeroed(16);
        p.write(&[1, 2, 3]);
        // Only the written prefix is materialized; the logical size and
        // the zero tail are unchanged.
        assert_eq!(&p.data()[..3], &[1, 2, 3]);
        assert!(p.data()[3..].iter().all(|&b| b == 0));
        assert_eq!(p.size(), 16);
    }

    #[test]
    fn never_written_page_materializes_nothing() {
        let p = Page::zeroed(4096);
        assert_eq!(p.size(), 4096);
        assert_eq!(p.chain(), 0);
        assert!(p.data().is_empty(), "no bytes materialized before a write");
        // Logical equality ignores how much of the zero tail is backed.
        let mut q = Page::zeroed(4096);
        q.apply_stamp(3);
        assert_ne!(p.payload(), q.payload());
        assert_eq!(p.payload(), Page::zeroed(4096).payload());
    }

    #[test]
    fn stamp_chain_is_order_sensitive() {
        let mut ab = Page::zeroed(8);
        ab.apply_stamp(1);
        ab.apply_stamp(2);
        let mut ba = Page::zeroed(8);
        ba.apply_stamp(2);
        ba.apply_stamp(1);
        assert_ne!(ab.chain(), ba.chain());
    }

    #[test]
    fn same_stamps_same_chain() {
        let mut a = Page::zeroed(8);
        let mut b = Page::zeroed(8);
        for s in [5u64, 9, 13] {
            a.apply_stamp(s);
            b.apply_stamp(s);
        }
        assert_eq!(a.chain(), b.chain());
    }

    #[test]
    fn mix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix(0xDEAD_BEEF, 42);
        let flipped = mix(0xDEAD_BEEF, 43);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "differing bits: {differing}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 8 bytes")]
    fn tiny_pages_rejected() {
        Page::zeroed(4);
    }

    #[test]
    #[should_panic(expected = "write larger than page")]
    fn oversized_write_rejected() {
        Page::zeroed(8).write(&[0; 9]);
    }

    #[test]
    fn payload_handle_is_copy_on_write() {
        let mut p = Page::zeroed(16);
        p.apply_stamp(7);
        let snapshot = p.payload();
        // A write after taking the handle must not be visible through it.
        p.apply_stamp(8);
        assert_eq!(
            snapshot.as_slice(),
            {
                let mut q = Page::zeroed(16);
                q.apply_stamp(7);
                q.payload()
            }
            .as_slice()
        );
        assert_ne!(snapshot.as_slice(), p.data());
    }

    #[test]
    fn unshared_payload_writes_in_place() {
        let mut p = Page::zeroed(16);
        p.apply_stamp(1); // materializes the chain prefix
        let before = p.data().as_ptr();
        p.apply_stamp(2);
        // No other handle exists, so the allocation must be reused.
        assert_eq!(before, p.data().as_ptr());
    }
}
