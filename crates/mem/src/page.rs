//! A versioned page of shared memory.

use std::sync::Arc;

use crate::ids::Version;

/// A copy-on-write page payload: a cheaply clonable handle to the bytes.
///
/// Page payloads are copied around constantly — gather batches, installs
/// into caches, undo pre-images, crash repair — but mutated only at the
/// single write site ([`Page::apply_stamp`] / [`Page::write`]). Backing
/// the bytes with an [`Arc`] makes every one of those copies a refcount
/// bump; the bytes themselves are cloned lazily, only when a write lands
/// on a payload that still shares its allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageData(Arc<Vec<u8>>);

impl PageData {
    /// A zero-filled payload of `size` bytes.
    pub fn zeroed(size: usize) -> Self {
        PageData(Arc::new(vec![0; size]))
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Read-only view of the bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Mutable view of the bytes, cloning the allocation first if it is
    /// still shared with another handle.
    fn make_mut(&mut self) -> &mut Vec<u8> {
        Arc::make_mut(&mut self.0)
    }
}

impl From<Vec<u8>> for PageData {
    fn from(bytes: Vec<u8>) -> Self {
        PageData(Arc::new(bytes))
    }
}

impl std::ops::Deref for PageData {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// One page: a version stamp plus its byte payload.
///
/// The first eight bytes of every page double as a *content chain*: each
/// logical write folds the writer's stamp into them via [`mix`]. The chain
/// is what the correctness tests compare against a serial re-execution
/// oracle — two executions that applied the same writes in the same order
/// produce byte-identical chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    version: Version,
    data: PageData,
}

/// Deterministically folds a write `stamp` into a content chain value.
///
/// The function is a strong 64-bit mixer (SplitMix64 finalizer over the XOR
/// of the inputs), so distinct write sequences collide with negligible
/// probability and *order matters*: `mix(mix(h, a), b) != mix(mix(h, b), a)`
/// in general.
pub fn mix(chain: u64, stamp: u64) -> u64 {
    let mut z = chain.rotate_left(17).wrapping_add(0x9E37_79B9_7F4A_7C15)
        ^ stamp.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Page {
    /// Creates a zero-filled page of `size` bytes at [`Version::INITIAL`].
    ///
    /// # Panics
    ///
    /// Panics if `size < 8` — every page must be able to hold its content
    /// chain.
    pub fn zeroed(size: usize) -> Self {
        assert!(size >= 8, "page size must be at least 8 bytes");
        Page {
            version: Version::INITIAL,
            data: PageData::zeroed(size),
        }
    }

    /// Creates a page from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() < 8`.
    pub fn from_parts(version: Version, data: impl Into<PageData>) -> Self {
        let data = data.into();
        assert!(data.len() >= 8, "page size must be at least 8 bytes");
        Page { version, data }
    }

    /// The page's version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Sets the page's version (used when a committed update is published).
    pub fn set_version(&mut self, version: Version) {
        self.version = version;
    }

    /// Page size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// A cheap copy-on-write handle to the payload (a refcount bump, not a
    /// byte copy).
    pub fn payload(&self) -> PageData {
        self.data.clone()
    }

    /// Overwrites the payload prefix with `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than the page.
    pub fn write(&mut self, bytes: &[u8]) {
        assert!(bytes.len() <= self.data.len(), "write larger than page");
        self.data.make_mut()[..bytes.len()].copy_from_slice(bytes);
    }

    /// The current content-chain value (first eight bytes, little-endian).
    pub fn chain(&self) -> u64 {
        u64::from_le_bytes(self.data[..8].try_into().expect("page >= 8 bytes"))
    }

    /// Folds `stamp` into the content chain, mutating the page.
    /// Returns the new chain value.
    pub fn apply_stamp(&mut self, stamp: u64) -> u64 {
        let next = mix(self.chain(), stamp);
        self.data.make_mut()[..8].copy_from_slice(&next.to_le_bytes());
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_has_initial_state() {
        let p = Page::zeroed(64);
        assert_eq!(p.version(), Version::INITIAL);
        assert_eq!(p.size(), 64);
        assert!(p.data().iter().all(|&b| b == 0));
        assert_eq!(p.chain(), 0);
    }

    #[test]
    fn write_overwrites_prefix_only() {
        let mut p = Page::zeroed(16);
        p.write(&[1, 2, 3]);
        assert_eq!(&p.data()[..4], &[1, 2, 3, 0]);
    }

    #[test]
    fn stamp_chain_is_order_sensitive() {
        let mut ab = Page::zeroed(8);
        ab.apply_stamp(1);
        ab.apply_stamp(2);
        let mut ba = Page::zeroed(8);
        ba.apply_stamp(2);
        ba.apply_stamp(1);
        assert_ne!(ab.chain(), ba.chain());
    }

    #[test]
    fn same_stamps_same_chain() {
        let mut a = Page::zeroed(8);
        let mut b = Page::zeroed(8);
        for s in [5u64, 9, 13] {
            a.apply_stamp(s);
            b.apply_stamp(s);
        }
        assert_eq!(a.chain(), b.chain());
    }

    #[test]
    fn mix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix(0xDEAD_BEEF, 42);
        let flipped = mix(0xDEAD_BEEF, 43);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "differing bits: {differing}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 8 bytes")]
    fn tiny_pages_rejected() {
        Page::zeroed(4);
    }

    #[test]
    #[should_panic(expected = "write larger than page")]
    fn oversized_write_rejected() {
        Page::zeroed(8).write(&[0; 9]);
    }

    #[test]
    fn payload_handle_is_copy_on_write() {
        let mut p = Page::zeroed(16);
        p.apply_stamp(7);
        let snapshot = p.payload();
        // A write after taking the handle must not be visible through it.
        p.apply_stamp(8);
        assert_eq!(
            snapshot.as_slice(),
            {
                let mut q = Page::zeroed(16);
                q.apply_stamp(7);
                q.payload()
            }
            .as_slice()
        );
        assert_ne!(snapshot.as_slice(), p.data());
    }

    #[test]
    fn unshared_payload_writes_in_place() {
        let mut p = Page::zeroed(16);
        let before = p.data().as_ptr();
        p.apply_stamp(1);
        // No other handle exists, so the allocation must be reused.
        assert_eq!(before, p.data().as_ptr());
    }
}
