//! Simulated site identity.

use std::fmt;

/// Identifies one site (processor / workstation) in the simulated
/// distributed system.
///
/// The paper's model is a cluster of nodes on a switched network; each node
/// runs transaction families locally and holds a local page cache, and one
/// or more nodes host partitions of the Global Directory of Objects (GDO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Constructs a node id from its index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The underlying index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Iterator over the first `count` node ids (`N0 .. N{count-1}`).
    pub fn all(count: u32) -> impl Iterator<Item = NodeId> + Clone {
        (0..count).map(NodeId)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let n = NodeId::new(7);
        assert_eq!(n.to_string(), "N7");
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7u32), n);
    }

    #[test]
    fn all_enumerates_in_order() {
        let v: Vec<NodeId> = NodeId::all(3).collect();
        assert_eq!(v, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
