//! Virtual time: [`SimTime`] (an instant) and [`SimDuration`] (a span).
//!
//! Both are nanosecond-resolution `u64` newtypes. Nanoseconds were chosen
//! because the paper's network sweep goes down to a 500 ns per-message
//! software cost; a `u64` of nanoseconds still covers ~584 years of virtual
//! time, far beyond any simulation here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as a sentinel deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant `n` nanoseconds after the epoch.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Constructs an instant `n` microseconds after the epoch.
    pub const fn from_micros(n: u64) -> Self {
        SimTime(n * 1_000)
    }

    /// Constructs an instant `n` milliseconds after the epoch.
    pub const fn from_millis(n: u64) -> Self {
        SimTime(n * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since called with a later instant"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`], clamping at zero.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a span of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Constructs a span of `n` microseconds.
    pub const fn from_micros(n: u64) -> Self {
        SimDuration(n * 1_000)
    }

    /// Constructs a span of `n` milliseconds.
    pub const fn from_millis(n: u64) -> Self {
        SimDuration(n * 1_000_000)
    }

    /// Constructs a span of `n` seconds.
    pub const fn from_secs(n: u64) -> Self {
        SimDuration(n * 1_000_000_000)
    }

    /// Constructs a span from a floating-point number of seconds, rounding
    /// to the nearest nanosecond. Negative or NaN inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as floating-point microseconds (used for reporting; the
    /// paper's time figures are in microseconds).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(100).as_nanos(), 100_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_nanos(234);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_sum_and_scale() {
        let parts = [
            SimDuration::from_nanos(1),
            SimDuration::from_nanos(2),
            SimDuration::from_nanos(3),
        ];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total, SimDuration::from_nanos(6));
        assert_eq!(total * 2, SimDuration::from_nanos(12));
        assert_eq!(total / 3, SimDuration::from_nanos(2));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(
            SimDuration::from_secs_f64(0.5e-9),
            SimDuration::from_nanos(1)
        ); // round-half-up
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(20).to_string(), "20.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_nanos(4));
        let t = SimTime::from_nanos(5);
        assert_eq!(
            t.saturating_duration_since(SimTime::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_panics_on_reversal() {
        SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }
}
