//! A deterministic future-event list.
//!
//! Events are delivered in non-decreasing timestamp order. Events with equal
//! timestamps are delivered in insertion (FIFO) order — ties are broken by a
//! monotonically increasing sequence number, never by payload comparison, so
//! the queue imposes no trait bounds on the event type and two runs with the
//! same schedule of `push` calls always pop identically.
//!
//! # Structure
//!
//! [`EventQueue`] is a two-tier calendar queue:
//!
//! * a **bucket ring** of [`NUM_BUCKETS`] buckets, each covering
//!   [`BUCKET_WIDTH_NS`] nanoseconds of near-future time, holding plain
//!   `(time, seq, slot)` index entries;
//! * an **overflow heap** (a plain binary heap over the same index entries)
//!   for events scheduled at or beyond the ring's horizon.
//!
//! Payloads live in a [`Slab`] arena keyed by the `slot` index, so pushes
//! and pops move 24-byte plain-data entries and, after warm-up, allocate
//! nothing.
//!
//! # Invariants
//!
//! 1. `seq` increases by one per push and is never reused; `(time, seq)` is
//!    therefore a total order over all events ever pushed.
//! 2. Every ring entry's time lies in `[ring_start, ring_start + SPAN_NS)`,
//!    and within that window each time maps to exactly one bucket — so the
//!    first non-empty bucket at or after the cursor holds the ring minimum.
//! 3. The overflow heap may hold events that have *become* near-future as
//!    the window advanced (the window only moves forward), so [`Self::pop`]
//!    always compares the ring candidate against the overflow head by
//!    `(time, seq)` and takes the smaller. This comparison is what makes
//!    the pop order provably identical to a single `(time, seq)`-ordered
//!    heap: whichever tier holds the global minimum, it is selected.
//! 4. The cursor (`ring_start`) only advances over empty buckets or jumps
//!    when the ring is empty; entries already in the ring always remain
//!    inside the advanced window (they are `>=` the popped minimum).
//!
//! The previous single-tier binary-heap implementation is retained verbatim
//! as [`reference::HeapQueue`] to serve as a differential oracle.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::slab::Slab;
use crate::time::SimTime;

/// Log2 of the bucket width: each bucket covers 4096 ns. Engine event
/// delays are dominated by sub-microsecond lock/directory costs and
/// microsecond-scale compute/network latencies, so the common case lands
/// within a few buckets of the cursor.
const BUCKET_WIDTH_SHIFT: u32 = 12;
/// Width of one calendar bucket in nanoseconds.
const BUCKET_WIDTH_NS: u64 = 1 << BUCKET_WIDTH_SHIFT;
/// Number of buckets in the ring (power of two, so the home bucket is a
/// shift-and-mask). 256 buckets x 4096 ns ≈ a 1 ms near-future horizon.
const NUM_BUCKETS: usize = 256;
/// Nanoseconds covered by the whole ring.
const SPAN_NS: u64 = (NUM_BUCKETS as u64) << BUCKET_WIDTH_SHIFT;

/// A queue index entry: everything pop ordering needs, payload elsewhere.
#[derive(Debug, Clone, Copy)]
struct Pending {
    time: u64,
    seq: u64,
    slot: u32,
}

impl Pending {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-(time, seq)-first.
        other.key().cmp(&self.key())
    }
}

/// Two-tier calendar queue of timestamped events with deterministic FIFO
/// tie-breaking, slab-backed payload storage, and a far-future overflow
/// heap. Pop order is identical to a `(time, seq)`-ordered binary heap
/// (see [`reference::HeapQueue`], the retained differential oracle).
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Near-future calendar ring; `buckets[i]` holds in-window entries
    /// whose home index is `i`. Bucket vectors keep their capacity across
    /// pops, so steady-state operation does not allocate.
    buckets: Vec<Vec<Pending>>,
    /// Far-future entries, beyond `ring_start + SPAN_NS` at push time.
    overflow: BinaryHeap<Pending>,
    /// Payload arena; `Pending::slot` keys into it.
    payloads: Slab<E>,
    /// Start of the ring window, always bucket-aligned.
    ring_start: u64,
    /// Number of entries currently in the ring (not counting overflow).
    ring_len: usize,
    /// Next insertion sequence number (monotonic, never reused).
    seq: u64,
}

#[inline]
fn bucket_of(time_ns: u64) -> usize {
    ((time_ns >> BUCKET_WIDTH_SHIFT) as usize) & (NUM_BUCKETS - 1)
}

#[inline]
fn bucket_align(time_ns: u64) -> u64 {
    time_ns & !(BUCKET_WIDTH_NS - 1)
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            payloads: Slab::new(),
            ring_start: 0,
            ring_len: 0,
            seq: 0,
        }
    }

    /// Enqueues `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let slot = self.payloads.insert(event);
        let time = time.as_nanos();
        let entry = Pending { time, seq, slot };
        if time >= self.ring_start.saturating_add(SPAN_NS) {
            if self.ring_len == 0 {
                // Nothing pins the window: jump it so this entry (and the
                // pushes that follow it) stay on the cheap ring path.
                self.ring_start = bucket_align(time);
            } else {
                self.overflow.push(entry);
                return;
            }
        }
        // Past-window times (only reachable by direct queue use; the
        // simulator never schedules into the past) clamp into the cursor
        // bucket, where the argmin scan still orders them correctly.
        let idx = if time < self.ring_start {
            bucket_of(self.ring_start)
        } else {
            bucket_of(time)
        };
        self.buckets[idx].push(entry);
        self.ring_len += 1;
    }

    /// Advances the cursor to the first non-empty bucket and returns the
    /// position of that bucket's `(time, seq)`-minimum entry, if the ring
    /// holds any entry at all.
    #[inline]
    fn ring_candidate(&mut self) -> Option<(usize, usize)> {
        if self.ring_len == 0 {
            return None;
        }
        let mut idx = bucket_of(self.ring_start);
        while self.buckets[idx].is_empty() {
            // Bounded: some bucket is non-empty and every ring entry is
            // inside the window, at most NUM_BUCKETS - 1 steps away.
            self.ring_start += BUCKET_WIDTH_NS;
            idx = bucket_of(self.ring_start);
        }
        let bucket = &self.buckets[idx];
        let mut best = 0;
        for (pos, entry) in bucket.iter().enumerate().skip(1) {
            if entry.key() < bucket[best].key() {
                best = pos;
            }
        }
        Some((idx, best))
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ring = self.ring_candidate();
        let from_overflow = match (&ring, self.overflow.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            // The window's advance can leave the global minimum in the
            // overflow heap, so the tiers are always compared head-to-head.
            (&Some((idx, pos)), Some(over)) => over.key() < self.buckets[idx][pos].key(),
        };
        let entry = if from_overflow {
            self.overflow.pop().expect("peeked entry")
        } else {
            let (idx, pos) = ring.expect("ring candidate");
            self.ring_len -= 1;
            self.buckets[idx].swap_remove(pos)
        };
        let event = self.payloads.remove(entry.slot);
        Some((SimTime::from_nanos(entry.time), event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(u64, u64)> = self.overflow.peek().map(Pending::key);
        if self.ring_len > 0 {
            let start = bucket_of(self.ring_start);
            for step in 0..NUM_BUCKETS {
                let bucket = &self.buckets[(start + step) & (NUM_BUCKETS - 1)];
                if bucket.is_empty() {
                    continue;
                }
                let ring_min = bucket.iter().map(Pending::key).min().expect("non-empty");
                if best.is_none_or(|b| ring_min < b) {
                    best = Some(ring_min);
                }
                break;
            }
        }
        best.map(|(time, _)| SimTime::from_nanos(time))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// True when the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event. Capacity (and the sequence counter) is
    /// retained.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.payloads.clear();
        self.ring_len = 0;
    }
}

pub mod reference {
    //! The original single-tier binary-heap future-event list, retained
    //! verbatim as a differential oracle for the calendar queue (see
    //! `tests/prop_event_queue.rs`): both must produce the exact same pop
    //! sequence, tie-breaks included, for any push stream.

    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    /// Min-heap of timestamped events with deterministic FIFO tie-breaking.
    #[derive(Debug, Clone)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        seq: u64,
    }

    #[derive(Debug, Clone)]
    struct Entry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert to get earliest-first, and
            // invert the sequence number so equal-time events pop FIFO.
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapQueue<E> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }

        /// Enqueues `event` at `time`.
        pub fn push(&mut self, time: SimTime, event: E) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { time, seq, event });
        }

        /// Removes and returns the earliest event, if any.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.time, e.event))
        }

        /// Timestamp of the earliest pending event, if any.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True when the queue has no pending events.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Drops every pending event.
        pub fn clear(&mut self) {
            self.heap.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pops_earliest_first() {
        let mut q = EventQueue::new();
        q.push(t(50), 'b');
        q.push(t(10), 'a');
        q.push(t(90), 'c');
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), 'a')));
        assert_eq!(q.pop(), Some((t(50), 'b')));
        assert_eq!(q.pop(), Some((t(90), 'c')));
    }

    #[test]
    fn equal_times_pop_fifo_even_interleaved() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(10), 2);
        q.pop();
        q.push(t(10), 3);
        q.push(t(10), 4);
        assert_eq!(q.pop(), Some((t(10), 2)));
        assert_eq!(q.pop(), Some((t(10), 3)));
        assert_eq!(q.pop(), Some((t(10), 4)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn no_trait_bounds_on_payload() {
        // A payload type with no Ord/Eq still works.
        struct Opaque(#[allow(dead_code)] fn());
        let mut q = EventQueue::new();
        q.push(t(1), Opaque(|| {}));
        assert!(q.pop().is_some());
    }

    #[test]
    fn far_future_overflow_pops_in_order() {
        let mut q = EventQueue::new();
        // Pin the window at zero, then push far beyond the horizon.
        q.push(t(1), 0u32);
        q.push(t(3 * SPAN_NS), 3);
        q.push(t(2 * SPAN_NS), 2);
        q.push(t(SPAN_NS + 7), 1);
        assert_eq!(q.pop(), Some((t(1), 0)));
        assert_eq!(q.pop(), Some((t(SPAN_NS + 7), 1)));
        assert_eq!(q.pop(), Some((t(2 * SPAN_NS), 2)));
        assert_eq!(q.pop(), Some((t(3 * SPAN_NS), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_beats_ring_after_window_advance() {
        let mut q = EventQueue::new();
        // `b` is beyond the initial window, so it lands in overflow while
        // `a` pins the ring at zero.
        q.push(t(0), 'a');
        q.push(t(SPAN_NS + 10), 'b');
        assert_eq!(q.pop(), Some((t(0), 'a')));
        // The ring is now empty; a push past `b` jumps the window so the
        // overflow entry `b` is *behind* the ring entry `c` — pop must
        // still take `b` first.
        q.push(t(SPAN_NS + 500_000), 'c');
        assert_eq!(q.peek_time(), Some(t(SPAN_NS + 10)));
        assert_eq!(q.pop(), Some((t(SPAN_NS + 10), 'b')));
        assert_eq!(q.pop(), Some((t(SPAN_NS + 500_000), 'c')));
    }

    #[test]
    fn wraparound_keeps_order_across_many_windows() {
        // March the clock through several full ring wraps, interleaving
        // pushes at mixed offsets; pops must stay globally sorted with
        // FIFO tie-breaks.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut now = 0u64;
        let mut tag = 0u32;
        for round in 0..40 {
            for offset in [0, 1, BUCKET_WIDTH_NS, SPAN_NS / 2, SPAN_NS + 3] {
                q.push(t(now + offset), tag);
                expect.push((now + offset, tag));
                tag += 1;
            }
            // Drain two events per round so the window advances.
            for _ in 0..2 {
                expect.sort_by_key(|&(time, tag)| (time, tag));
                let (etime, etag) = expect.remove(0);
                assert_eq!(q.pop(), Some((t(etime), etag)), "round {round}");
                now = now.max(etime);
            }
        }
        expect.sort_by_key(|&(time, tag)| (time, tag));
        for (etime, etag) in expect {
            assert_eq!(q.pop(), Some((t(etime), etag)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn matches_reference_heap_on_mixed_stream() {
        let mut q = EventQueue::new();
        let mut r = reference::HeapQueue::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut now = 0u64;
        for i in 0..2_000u32 {
            // xorshift-mixed pseudo-random interleave of pushes and pops.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !x.is_multiple_of(3) || q.is_empty() {
                // Mixed near/far offsets, frequent exact ties.
                let offset = match x % 5 {
                    0 => 0,
                    1 => x % 64,
                    2 => x % BUCKET_WIDTH_NS,
                    3 => x % SPAN_NS,
                    _ => SPAN_NS + x % SPAN_NS,
                };
                q.push(t(now + offset), i);
                r.push(t(now + offset), i);
            } else {
                let got = q.pop();
                let want = r.pop();
                assert_eq!(got, want);
                if let Some((time, _)) = got {
                    now = time.as_nanos();
                }
            }
            assert_eq!(q.peek_time(), r.peek_time());
            assert_eq!(q.len(), r.len());
        }
        while let Some(want) = r.pop() {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.is_empty());
    }
}
