//! A deterministic future-event list.
//!
//! Events are delivered in non-decreasing timestamp order. Events with equal
//! timestamps are delivered in insertion (FIFO) order — ties are broken by a
//! monotonically increasing sequence number, never by payload comparison, so
//! the queue imposes no trait bounds on the event type and two runs with the
//! same schedule of `push` calls always pop identically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Min-heap of timestamped events with deterministic FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, and invert
        // the sequence number so equal-time events pop FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Enqueues `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pops_earliest_first() {
        let mut q = EventQueue::new();
        q.push(t(50), 'b');
        q.push(t(10), 'a');
        q.push(t(90), 'c');
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), 'a')));
        assert_eq!(q.pop(), Some((t(50), 'b')));
        assert_eq!(q.pop(), Some((t(90), 'c')));
    }

    #[test]
    fn equal_times_pop_fifo_even_interleaved() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(10), 2);
        q.pop();
        q.push(t(10), 3);
        q.push(t(10), 4);
        assert_eq!(q.pop(), Some((t(10), 2)));
        assert_eq!(q.pop(), Some((t(10), 3)));
        assert_eq!(q.pop(), Some((t(10), 4)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn no_trait_bounds_on_payload() {
        // A payload type with no Ord/Eq still works.
        struct Opaque(#[allow(dead_code)] fn());
        let mut q = EventQueue::new();
        q.push(t(1), Opaque(|| {}));
        assert!(q.pop().is_some());
    }
}
