//! Instrumentation primitives: counters and histograms.
//!
//! The evaluation layer records, per shared object and per protocol, the
//! number of consistency messages, the bytes they carry, and their total
//! transfer time. These types provide the raw accumulation machinery.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` (bucket 0 holds zeros and
/// ones). Exact min/max/sum are tracked alongside, so `mean` is exact while
/// quantiles are bucket-resolution approximations — plenty for the shape
/// comparisons this repo performs.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize; // 0 for value 0, 1 for 1, ...
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile `q` in `[0, 1]`: upper bound of the bucket
    /// containing the q-th sample. Returns `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Upper bound of bucket i, clamped by the observed max.
                let upper = if i == 0 { 1 } else { 1u64 << i };
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            None => write!(f, "histogram(empty)"),
            Some(mean) => write!(
                f,
                "histogram(n={}, mean={:.1}, min={}, p50~{}, p99~{}, max={})",
                self.count,
                mean,
                self.min,
                self.quantile(0.5).unwrap(),
                self.quantile(0.99).unwrap(),
                self.max
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.to_string(), "histogram(empty)");
    }

    #[test]
    fn exact_stats_track() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.mean(), Some(22.0));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn zero_samples_supported() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.mean(), Some(0.0));
    }

    #[test]
    fn quantile_is_bucket_approximate_but_ordered() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        // p50 of 1..=1000 is 500; bucket resolution gives [512, 1024)-ish.
        assert!((256..=1024).contains(&p50), "p50~{p50}");
        assert!(p99 <= 1000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 60);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(5);
        let before = a.to_string();
        a.merge(&Histogram::new());
        assert_eq!(a.to_string(), before);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_bounds_checked() {
        Histogram::new().quantile(1.5);
    }
}
