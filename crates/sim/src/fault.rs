//! Deterministic fault injection: the [`FaultPlan`].
//!
//! A fault plan is *data*, not behavior: probabilities for per-message
//! faults (drop, duplicate, extra delay) plus a schedule of node crash
//! windows. The layers above interpret it — `lotec-net` turns the
//! probabilities into lossy delivery with retransmit accounting, and the
//! `lotec-core` engine turns crash windows into crash-abort and recovery
//! events. Keeping the plan here, at the bottom of the dependency graph,
//! lets every crate see the same schedule without cycles.
//!
//! Determinism: the plan itself holds no RNG. Consumers draw from a
//! dedicated [`SimRng`](crate::SimRng) fork, so a (seed, plan) pair always
//! reproduces the same faulty execution, byte for byte. An all-zero plan
//! reports [`FaultPlan::enabled`]` == false` and consumers skip the fault
//! path entirely — no RNG draws, no accounting, no behavior change.

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// A scheduled crash of one node: the node is unreachable during
/// `[at, until)` and comes back with its caches cold at `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing node.
    pub node: NodeId,
    /// When the node dies.
    pub at: SimTime,
    /// When the node recovers (exclusive end of the outage).
    pub until: SimTime,
}

/// A deterministic fault schedule for one run.
///
/// The default plan is completely benign: all probabilities zero, no
/// crashes, [`FaultPlan::enabled`] is false.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that a message transmission attempt is lost in flight.
    pub drop_prob: f64,
    /// Probability that a delivered message is duplicated (the copy is
    /// charged to the ledger but carries no new information).
    pub duplicate_prob: f64,
    /// Probability that a delivered message suffers extra queueing delay.
    pub delay_prob: f64,
    /// Upper bound on the extra delay drawn when `delay_prob` fires.
    pub max_extra_delay: SimDuration,
    /// Retransmission timeout: how long a sender waits before resending a
    /// lost (or crash-swallowed) message.
    pub rto: SimDuration,
    /// Scheduled node outages.
    pub crashes: Vec<CrashWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_extra_delay: SimDuration::ZERO,
            rto: SimDuration::from_micros(500),
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// True when the plan can actually perturb a run. Consumers gate the
    /// entire fault path on this so a disabled plan is zero-cost.
    pub fn enabled(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.delay_prob > 0.0
            || !self.crashes.is_empty()
    }

    /// True when `node` is inside a crash window at instant `at`.
    pub fn is_down(&self, node: NodeId, at: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|w| w.node == node && at >= w.at && at < w.until)
    }

    /// The earliest instant `>= at` at which `node` is up. For a node
    /// outside any outage this is `at` itself; inside an outage it is the
    /// window's end (re-checked in case windows chain back to back).
    pub fn up_at(&self, node: NodeId, at: SimTime) -> SimTime {
        let mut t = at;
        // Windows may overlap or chain; iterate until no window covers `t`.
        loop {
            match self
                .crashes
                .iter()
                .filter(|w| w.node == node && t >= w.at && t < w.until)
                .map(|w| w.until)
                .max()
            {
                Some(until) => t = until,
                None => return t,
            }
        }
    }

    /// Validates plan sanity against a cluster size.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1)` for drops (a drop
    /// probability of 1 would retransmit forever) or `[0, 1]` for the
    /// rest, if `rto` is zero while drops or crashes are enabled, or if a
    /// crash window is empty or names a node outside `0..num_nodes`.
    pub fn validate(&self, num_nodes: u32) {
        assert!(
            (0.0..1.0).contains(&self.drop_prob),
            "drop_prob must be in [0, 1): 1.0 would retransmit forever"
        );
        assert!(
            (0.0..=1.0).contains(&self.duplicate_prob),
            "duplicate_prob must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.delay_prob),
            "delay_prob must be a probability"
        );
        if self.drop_prob > 0.0 || !self.crashes.is_empty() {
            assert!(
                self.rto > SimDuration::ZERO,
                "rto must be positive when drops or crashes are enabled"
            );
        }
        for w in &self.crashes {
            assert!(w.until > w.at, "empty crash window for node {}", w.node);
            assert!(
                w.node.index() < num_nodes,
                "crash window names node {} outside 0..{num_nodes}",
                w.node
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn default_plan_is_disabled_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled());
        plan.validate(4);
        assert!(!plan.is_down(n(0), SimTime::ZERO));
        assert_eq!(plan.up_at(n(0), SimTime::from_micros(7)).as_nanos(), 7_000);
    }

    #[test]
    fn probabilities_enable_the_plan() {
        for plan in [
            FaultPlan {
                drop_prob: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                duplicate_prob: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                delay_prob: 0.1,
                ..FaultPlan::default()
            },
        ] {
            assert!(plan.enabled());
            plan.validate(4);
        }
    }

    #[test]
    fn crash_window_membership() {
        let plan = FaultPlan {
            crashes: vec![CrashWindow {
                node: n(2),
                at: SimTime::from_micros(10),
                until: SimTime::from_micros(20),
            }],
            ..FaultPlan::default()
        };
        assert!(plan.enabled());
        plan.validate(4);
        assert!(!plan.is_down(n(2), SimTime::from_micros(9)));
        assert!(plan.is_down(n(2), SimTime::from_micros(10)));
        assert!(plan.is_down(n(2), SimTime::from_micros(19)));
        assert!(
            !plan.is_down(n(2), SimTime::from_micros(20)),
            "end exclusive"
        );
        assert!(
            !plan.is_down(n(1), SimTime::from_micros(15)),
            "other node up"
        );
    }

    #[test]
    fn up_at_skips_chained_windows() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow {
                    node: n(0),
                    at: SimTime::from_micros(10),
                    until: SimTime::from_micros(20),
                },
                CrashWindow {
                    node: n(0),
                    at: SimTime::from_micros(20),
                    until: SimTime::from_micros(30),
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(
            plan.up_at(n(0), SimTime::from_micros(15)),
            SimTime::from_micros(30),
            "back-to-back windows are skipped in one call"
        );
        assert_eq!(
            plan.up_at(n(0), SimTime::from_micros(5)),
            SimTime::from_micros(5),
            "before the outage the node is already up"
        );
    }

    #[test]
    #[should_panic(expected = "retransmit forever")]
    fn certain_drop_rejected() {
        FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::default()
        }
        .validate(4);
    }

    #[test]
    #[should_panic(expected = "empty crash window")]
    fn empty_window_rejected() {
        FaultPlan {
            crashes: vec![CrashWindow {
                node: n(0),
                at: SimTime::from_micros(5),
                until: SimTime::from_micros(5),
            }],
            ..FaultPlan::default()
        }
        .validate(4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_node_rejected() {
        FaultPlan {
            crashes: vec![CrashWindow {
                node: n(9),
                at: SimTime::ZERO,
                until: SimTime::from_micros(1),
            }],
            ..FaultPlan::default()
        }
        .validate(4);
    }

    #[test]
    #[should_panic(expected = "rto must be positive")]
    fn zero_rto_with_drops_rejected() {
        FaultPlan {
            drop_prob: 0.2,
            rto: SimDuration::ZERO,
            ..FaultPlan::default()
        }
        .validate(4);
    }
}
