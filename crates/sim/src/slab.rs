//! A free-list slab arena with dense `u32` keys.
//!
//! The event queue stores payloads here so that the queue's own ordering
//! structures only ever move small plain-data index entries: inserting a
//! value reuses a vacated slot when one exists, so a steady-state
//! schedule/pop workload allocates nothing after warm-up.

/// A slab allocator: values keyed by dense `u32` slot indices, vacated
/// slots recycled LIFO through an internal free list.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `value`, returning the slot key it now occupies.
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(value);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab capacity exceeds u32");
                self.slots.push(Some(value));
                slot
            }
        }
    }

    /// Removes and returns the value at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is vacant or out of bounds — keys are only ever
    /// minted by [`Slab::insert`] and must not be removed twice.
    pub fn remove(&mut self, slot: u32) -> T {
        let value = self.slots[slot as usize].take().expect("slot occupied");
        self.free.push(slot);
        value
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every value and recycles all slots, keeping capacity.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuses_slots() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), "a");
        // The vacated slot is recycled before the slab grows.
        let c = slab.insert("c");
        assert_eq!(c, a);
        assert_eq!(slab.remove(b), "b");
        assert_eq!(slab.remove(c), "c");
        assert!(slab.is_empty());
    }

    #[test]
    #[should_panic(expected = "slot occupied")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(1u8);
        slab.remove(a);
        slab.remove(a);
    }

    #[test]
    fn clear_empties() {
        let mut slab = Slab::new();
        slab.insert(1);
        slab.insert(2);
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.insert(3), 0);
    }
}
