//! Discrete-event simulation kernel for the LOTEC reproduction.
//!
//! This crate is the bottom of the workspace dependency graph. It provides
//! the small set of primitives every other subsystem builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock with nanosecond
//!   resolution (the paper sweeps software message costs down to 500 ns, so
//!   nanoseconds are the natural unit),
//! * [`NodeId`] — the identity of a simulated site (processor/workstation),
//! * [`EventQueue`] — a deterministic future-event list,
//! * [`Simulator`] — clock + queue glue with run-loop helpers,
//! * [`SimRng`] — a small, fully deterministic PRNG (xoshiro256**) so that
//!   every experiment is reproducible from a single seed,
//! * [`FaultPlan`] — a seeded fault-injection schedule (message loss,
//!   duplication, delay, node crash windows) interpreted by upper layers,
//! * [`stats`] — counters and histograms used by the instrumentation layer.
//!
//! # Example
//!
//! ```
//! use lotec_sim::{Simulator, SimDuration};
//!
//! let mut sim: Simulator<&'static str> = Simulator::new();
//! sim.schedule_in(SimDuration::from_micros(5), "second");
//! sim.schedule_in(SimDuration::from_micros(1), "first");
//! let (t1, e1) = sim.next_event().unwrap();
//! assert_eq!(e1, "first");
//! assert_eq!(t1, sim.now());
//! let (_, e2) = sim.next_event().unwrap();
//! assert_eq!(e2, "second");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;

mod node;

pub use event::EventQueue;
pub use fault::{CrashWindow, FaultPlan};
pub use node::NodeId;
pub use rng::SimRng;
pub use slab::Slab;
pub use time::{SimDuration, SimTime};

/// A discrete-event simulator: a virtual clock plus a future-event list.
///
/// `Simulator` is deliberately minimal: it owns the clock and the queue and
/// guarantees that events are delivered in non-decreasing time order with
/// deterministic FIFO tie-breaking. Domain logic (what an event *means*)
/// lives in the crates layered on top.
#[derive(Debug, Clone)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    delivered: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past would silently corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after a relative delay from the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` once the queue is exhausted.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now);
        self.now = t;
        self.delivered += 1;
        Some((t, e))
    }

    /// Runs the simulation to completion, calling `handler` for each event.
    ///
    /// The handler receives `&mut Simulator` so it can schedule follow-up
    /// events. Returns the number of events processed.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, SimTime, E)) -> u64 {
        let start = self.delivered;
        while let Some((t, e)) = self.next_event() {
            handler(self, t, e);
        }
        self.delivered - start
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are still delivered. Returns `true` if the queue drained.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut Self, SimTime, E),
    ) -> bool {
        loop {
            match self.queue.peek_time() {
                None => return true,
                Some(t) if t > deadline => return false,
                Some(_) => {
                    let (t, e) = self.next_event().expect("peeked event vanished");
                    handler(self, t, e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let sim: Simulator<u32> = Simulator::new();
        assert_eq!(sim.now(), SimTime::ZERO);
        assert!(sim.is_idle());
    }

    #[test]
    fn events_delivered_in_time_order() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(30), 3);
        sim.schedule_at(SimTime::from_nanos(10), 1);
        sim.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut sim: Simulator<u32> = Simulator::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            sim.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_in(SimDuration::from_micros(7), ());
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t, SimTime::from_nanos(7_000));
        assert_eq!(sim.now(), t);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(10), ());
        sim.next_event();
        sim.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn run_processes_cascading_events() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(1), 0);
        let n = sim.run(|sim, _, depth| {
            if depth < 9 {
                sim.schedule_in(SimDuration::from_nanos(1), depth + 1);
            }
        });
        assert_eq!(n, 10);
        assert_eq!(sim.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Simulator<u32> = Simulator::new();
        for i in 1..=10 {
            sim.schedule_at(SimTime::from_nanos(i * 10), i as u32);
        }
        let mut seen = Vec::new();
        let drained = sim.run_until(SimTime::from_nanos(50), |_, _, e| seen.push(e));
        assert!(!drained);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        // Events at exactly the deadline are delivered; the rest remain.
        assert_eq!(sim.pending(), 5);
        let drained = sim.run_until(SimTime::from_nanos(1_000), |_, _, e| seen.push(e));
        assert!(drained);
        assert_eq!(seen.len(), 10);
    }
}
