//! A small, fully deterministic PRNG.
//!
//! The simulator and the workload generator must be reproducible from a
//! single seed so that (a) every figure in EXPERIMENTS.md can be regenerated
//! exactly and (b) the three consistency protocols can be compared on *the
//! same* randomized transaction workload, as the paper does.
//!
//! [`SimRng`] is xoshiro256\*\* seeded through SplitMix64 — the standard
//! recommendation from the xoshiro authors. It is implemented here rather
//! than pulled from `rand` so the kernel crate stays dependency-free; the
//! workload crate layers richer distributions (zipf, etc.) on top.

/// Deterministic xoshiro256\*\* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent sub-stream for component `stream`.
    ///
    /// Forking lets each subsystem (workload generation, path selection,
    /// fault injection, …) own its own stream so adding draws to one does
    /// not perturb the others.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the fork index into fresh seed material derived from our
        // current state, without advancing our own stream.
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        SimRng::seed_from_u64(splitmix64(&mut sm))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Widening-multiply rejection sampling (Lemire 2019): unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: lo > hi");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform integer in `[lo, hi)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_range: empty range");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize_range(0, items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_range(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = SimRng::seed_from_u64(7);
        let mut f1 = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn next_below_stays_in_bounds_and_hits_everything() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = SimRng::seed_from_u64(9);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = rng.range_inclusive(10, 20);
            assert!((10..=20).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 20;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(rng.range_inclusive(5, 5), 5);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0));
        assert!(!rng.chance(0.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_rate_roughly_matches_p() {
        let mut rng = SimRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::seed_from_u64(0).next_below(0);
    }
}
