//! Summarizes a recorded event stream: event census, phase-attributed
//! time, lock traffic, and prediction quality. This backs the
//! `obs_report` bench binary and is usable as a library.

use std::collections::BTreeMap;

use lotec_sim::{SimDuration, SimTime};

use crate::event::{ObsEvent, ObsEventKind, ObsPhase};

/// Time a family spent in each coarse phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Waiting for lock grants.
    pub lock_wait: SimDuration,
    /// Waiting for page transfers.
    pub transfer_wait: SimDuration,
    /// Executing method bodies.
    pub running: SimDuration,
    /// Backing off before restarts.
    pub backoff: SimDuration,
}

impl PhaseTimes {
    /// Sum over all phases.
    pub fn total(&self) -> SimDuration {
        self.lock_wait + self.transfer_wait + self.running + self.backoff
    }

    /// Adds `dur` to the bucket of `phase` (terminal phases hold no time).
    pub fn add(&mut self, phase: ObsPhase, dur: SimDuration) {
        match phase {
            ObsPhase::LockWait => self.lock_wait += dur,
            ObsPhase::TransferWait => self.transfer_wait += dur,
            ObsPhase::Running => self.running += dur,
            ObsPhase::Backoff => self.backoff += dur,
            ObsPhase::Committed | ObsPhase::Failed => {}
        }
    }

    /// Accumulates another family's times into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.lock_wait += other.lock_wait;
        self.transfer_wait += other.transfer_wait;
        self.running += other.running;
        self.backoff += other.backoff;
    }
}

/// Aggregated prediction quality of the compile-time page analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionTotals {
    /// Grants with plan information.
    pub grants: u64,
    /// Total predicted pages.
    pub predicted: u64,
    /// Total actually-touched pages (reads ∪ writes).
    pub actual: u64,
    /// Predicted pages that were actually touched.
    pub true_positives: u64,
}

impl PredictionTotals {
    /// Fraction of predicted pages that were needed (`None` if nothing was
    /// predicted).
    pub fn precision(&self) -> Option<f64> {
        (self.predicted > 0).then(|| self.true_positives as f64 / self.predicted as f64)
    }

    /// Fraction of needed pages that were predicted (`None` if nothing was
    /// touched).
    pub fn recall(&self) -> Option<f64> {
        (self.actual > 0).then(|| self.true_positives as f64 / self.actual as f64)
    }
}

/// Full summary of a recorded trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Count of events per kind name.
    pub kind_counts: BTreeMap<&'static str, u64>,
    /// Count of events per node.
    pub node_counts: BTreeMap<u32, u64>,
    /// Phase times per family.
    pub family_phases: BTreeMap<u64, PhaseTimes>,
    /// Terminal phase per family, when one was observed.
    pub family_outcome: BTreeMap<u64, ObsPhase>,
    /// Aggregate phase times over all families.
    pub aggregate: PhaseTimes,
    /// Deadlock victims, in detection order.
    pub deadlock_victims: Vec<u64>,
    /// Demand fetches per object.
    pub demand_fetches: BTreeMap<u32, u64>,
    /// Prediction quality totals.
    pub prediction: PredictionTotals,
    /// Largest gather fan-out seen in a single grant.
    pub max_fanout: u32,
    /// Total gather source count (for computing the mean fan-out).
    pub total_sources: u64,
    /// Timestamp of the last event.
    pub end: SimTime,
}

impl TraceSummary {
    /// Builds a summary from an event stream.
    pub fn of(events: &[ObsEvent]) -> Self {
        let mut s = TraceSummary::default();
        // family -> (phase, entered-at).
        let mut open: BTreeMap<u64, (ObsPhase, SimTime)> = BTreeMap::new();
        for event in events {
            *s.kind_counts.entry(event.kind.name()).or_default() += 1;
            *s.node_counts.entry(event.node).or_default() += 1;
            s.end = s.end.max(event.at);
            match &event.kind {
                ObsEventKind::PhaseEnter { family, phase } => {
                    if let Some((prev, since)) = open.remove(family) {
                        s.family_phases
                            .entry(*family)
                            .or_default()
                            .add(prev, event.at.saturating_duration_since(since));
                    }
                    if phase.is_terminal() {
                        s.family_outcome.insert(*family, *phase);
                    } else {
                        open.insert(*family, (*phase, event.at));
                    }
                }
                ObsEventKind::Deadlock { victim, .. } => s.deadlock_victims.push(*victim),
                ObsEventKind::DemandFetch { object, .. } => {
                    *s.demand_fetches.entry(*object).or_default() += 1;
                }
                ObsEventKind::GrantPlan {
                    predicted,
                    actual_reads,
                    actual_writes,
                    sources,
                    ..
                } => {
                    let mut actual: Vec<u16> = actual_reads
                        .iter()
                        .chain(actual_writes.iter())
                        .copied()
                        .collect();
                    actual.sort_unstable();
                    actual.dedup();
                    let tp = predicted.iter().filter(|p| actual.contains(p)).count() as u64;
                    s.prediction.grants += 1;
                    s.prediction.predicted += predicted.len() as u64;
                    s.prediction.actual += actual.len() as u64;
                    s.prediction.true_positives += tp;
                    s.max_fanout = s.max_fanout.max(*sources);
                    s.total_sources += *sources as u64;
                }
                _ => {}
            }
        }
        // Attribute still-open phases up to the end of the recording.
        for (family, (phase, since)) in open {
            s.family_phases
                .entry(family)
                .or_default()
                .add(phase, s.end.saturating_duration_since(since));
        }
        let mut aggregate = PhaseTimes::default();
        for times in s.family_phases.values() {
            aggregate.merge(times);
        }
        s.aggregate = aggregate;
        s
    }

    /// Renders the summary as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total_events: u64 = self.kind_counts.values().sum();
        let _ = writeln!(
            out,
            "events: {total_events} over {} nodes",
            self.node_counts.len()
        );
        for (kind, count) in &self.kind_counts {
            let _ = writeln!(out, "  {kind:<14} {count}");
        }
        let _ = writeln!(out, "phase time (all families):");
        let agg = &self.aggregate;
        let total = agg.total().as_nanos().max(1) as f64;
        for (name, dur) in [
            ("lock_wait", agg.lock_wait),
            ("transfer_wait", agg.transfer_wait),
            ("running", agg.running),
            ("backoff", agg.backoff),
        ] {
            let _ = writeln!(
                out,
                "  {name:<14} {:>12} ns  ({:>5.1}%)",
                dur.as_nanos(),
                100.0 * dur.as_nanos() as f64 / total
            );
        }
        let committed = self
            .family_outcome
            .values()
            .filter(|&&p| p == ObsPhase::Committed)
            .count();
        let _ = writeln!(
            out,
            "families: {} tracked, {committed} committed, {} deadlock victims",
            self.family_phases.len(),
            self.deadlock_victims.len()
        );
        if self.prediction.grants > 0 {
            let _ = writeln!(
                out,
                "prediction: {} grants, precision {}, recall {}",
                self.prediction.grants,
                self.prediction
                    .precision()
                    .map_or("n/a".to_string(), |p| format!("{p:.3}")),
                self.prediction
                    .recall()
                    .map_or("n/a".to_string(), |r| format!("{r:.3}")),
            );
            let _ = writeln!(
                out,
                "gather fan-out: mean {:.2}, max {}",
                self.total_sources as f64 / self.prediction.grants as f64,
                self.max_fanout
            );
        }
        let demand_total: u64 = self.demand_fetches.values().sum();
        let _ = writeln!(
            out,
            "demand fetches: {demand_total} over {} objects",
            self.demand_fetches.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsLockMode;

    fn ev(at: u64, node: u32, kind: ObsEventKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_nanos(at),
            node,
            kind,
        }
    }

    #[test]
    fn phase_times_attributed_per_family() {
        let events = vec![
            ev(
                0,
                0,
                ObsEventKind::PhaseEnter {
                    family: 1,
                    phase: ObsPhase::LockWait,
                },
            ),
            ev(
                100,
                0,
                ObsEventKind::PhaseEnter {
                    family: 1,
                    phase: ObsPhase::TransferWait,
                },
            ),
            ev(
                150,
                0,
                ObsEventKind::PhaseEnter {
                    family: 1,
                    phase: ObsPhase::Running,
                },
            ),
            ev(
                400,
                0,
                ObsEventKind::PhaseEnter {
                    family: 1,
                    phase: ObsPhase::Committed,
                },
            ),
            ev(
                500,
                1,
                ObsEventKind::PhaseEnter {
                    family: 2,
                    phase: ObsPhase::Running,
                },
            ),
        ];
        let s = TraceSummary::of(&events);
        let f1 = s.family_phases[&1];
        assert_eq!(f1.lock_wait.as_nanos(), 100);
        assert_eq!(f1.transfer_wait.as_nanos(), 50);
        assert_eq!(f1.running.as_nanos(), 250);
        assert_eq!(s.family_outcome[&1], ObsPhase::Committed);
        // Family 2 never finished: open phase attributed up to trace end.
        assert_eq!(s.family_phases[&2].running.as_nanos(), 0);
        assert_eq!(s.aggregate.lock_wait.as_nanos(), 100);
    }

    #[test]
    fn prediction_precision_recall() {
        let events = vec![ev(
            10,
            0,
            ObsEventKind::GrantPlan {
                family: 0,
                object: 1,
                predicted: vec![0, 1, 2, 3],
                actual_reads: vec![0, 1],
                actual_writes: vec![1, 7],
                planned_pages: 4,
                sources: 3,
            },
        )];
        let s = TraceSummary::of(&events);
        // actual = {0,1,7}; tp = |{0,1}| = 2.
        assert_eq!(s.prediction.predicted, 4);
        assert_eq!(s.prediction.actual, 3);
        assert_eq!(s.prediction.true_positives, 2);
        assert_eq!(s.prediction.precision(), Some(0.5));
        assert_eq!(s.prediction.recall(), Some(2.0 / 3.0));
        assert_eq!(s.max_fanout, 3);
    }

    #[test]
    fn census_and_render() {
        let events = vec![
            ev(
                1,
                0,
                ObsEventKind::LockQueued {
                    object: 0,
                    txn: 1,
                    mode: ObsLockMode::Read,
                    waiters: 1,
                },
            ),
            ev(
                2,
                1,
                ObsEventKind::Deadlock {
                    cycle: vec![1, 2],
                    victim: 2,
                },
            ),
            ev(
                3,
                1,
                ObsEventKind::DemandFetch {
                    family: 0,
                    object: 4,
                    page: 2,
                    source: 0,
                    bytes: 4096,
                },
            ),
        ];
        let s = TraceSummary::of(&events);
        assert_eq!(s.kind_counts["lock_queued"], 1);
        assert_eq!(s.node_counts[&1], 2);
        assert_eq!(s.deadlock_victims, vec![2]);
        assert_eq!(s.demand_fetches[&4], 1);
        let text = s.render();
        assert!(text.contains("deadlock"));
        assert!(text.contains("demand fetches: 1"));
    }
}
