//! Post-mortem forensics dumps: what the engine writes when something
//! goes wrong.
//!
//! A [`ForensicsDump`] is a deterministic snapshot taken at an anomaly —
//! deadlock-victim selection, a lock timeout, crash repair, a
//! serializability-oracle violation, or a perf-gate breach. It bundles:
//!
//! * the [`FlightRecorder`](crate::FlightRecorder) ring (the most recent
//!   event history, oldest first, with eviction accounting),
//! * the live lock-table occupancy and family-level waits-for edges at
//!   capture time (the engine cross-checks the incremental graph against
//!   the from-scratch `deadlock::reference` detector before dumping),
//! * per-family span state (phase + restart count), and
//! * the anomaly itself ([`Anomaly`]).
//!
//! Serialization is a JSONL pair: a header line carrying everything but
//! the events, then one line per ring event (the same wire format as
//! trace export, so existing tooling can replay the ring), plus a
//! Perfetto-loadable Chrome trace alongside. [`ForensicsDump::parse`]
//! inverts [`ForensicsDump::to_jsonl`] exactly; round-tripping is
//! asserted by `obs_report --forensics`.
//!
//! [`ForensicsDump::render_triage`] turns a dump into the human report:
//! the anomaly headline, the waits-for cycle reconstructed from the
//! dumped edges, contributing grants on the cycle's objects, and the
//! victim's causal chain walked backwards from the anomaly (reusing the
//! critical-path walker in partial-path mode).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::critical_path::partial_paths;
use crate::event::{ObsEvent, ObsEventKind, ObsPhase};
use crate::export::{chrome_trace, event_from_json, event_to_json};
use crate::json::{Json, JsonError};
use crate::recorder::FlightRecorder;

/// What went wrong. Each variant carries the identifiers triage needs to
/// anchor the causal chain.
#[derive(Debug, Clone, PartialEq)]
pub enum Anomaly {
    /// The deadlock detector found a waits-for cycle and chose a victim.
    DeadlockVictim {
        /// Root transaction ids forming the cycle, in detection order.
        cycle: Vec<u64>,
        /// Family indices of the cycle members, aligned with `cycle`.
        cycle_families: Vec<u64>,
        /// The victim root transaction.
        victim: u64,
        /// The victim's family index.
        family: u64,
    },
    /// A queued lock request waited past the configured timeout.
    LockTimeout {
        /// Object index.
        object: u32,
        /// The waiting (sub)transaction.
        txn: u64,
        /// The waiter's family index.
        family: u64,
        /// How long it had been queued, in sim nanoseconds.
        waited_ns: u64,
    },
    /// A node crashed and the GDO repaired page ownership around it.
    CrashRepair {
        /// The crashed node.
        node: u32,
        /// In-flight families crash-aborted with it.
        aborted_families: u32,
        /// Page-map entries repointed to surviving copies.
        repairs: u32,
    },
    /// The serializability oracle rejected a finished run.
    OracleViolation {
        /// The oracle's error message.
        detail: String,
    },
    /// A perf regression gate failed.
    PerfGateBreach {
        /// The gated metric's name.
        metric: String,
        /// Measured value.
        current: u64,
        /// The floor it fell below.
        floor: u64,
    },
}

impl Anomaly {
    /// Stable wire name of the anomaly type.
    pub fn name(&self) -> &'static str {
        match self {
            Anomaly::DeadlockVictim { .. } => "deadlock_victim",
            Anomaly::LockTimeout { .. } => "lock_timeout",
            Anomaly::CrashRepair { .. } => "crash_repair",
            Anomaly::OracleViolation { .. } => "oracle_violation",
            Anomaly::PerfGateBreach { .. } => "perf_gate_breach",
        }
    }

    /// One-line human headline for the triage report.
    pub fn headline(&self) -> String {
        match self {
            Anomaly::DeadlockVictim {
                cycle_families,
                family,
                ..
            } => {
                // The engine's cycle lists each member once (no closing
                // repeat), but dedup anyway in case a caller hands us the
                // closed form.
                let mut fams = cycle_families.clone();
                fams.sort_unstable();
                fams.dedup();
                format!(
                    "victim family {family} aborted to break a {}-family waits-for cycle",
                    fams.len().max(2)
                )
            }
            Anomaly::LockTimeout {
                object,
                txn,
                family,
                waited_ns,
            } => {
                format!("family {family}: T{txn} timed out after {waited_ns}ns queued on O{object}")
            }
            Anomaly::CrashRepair {
                node,
                aborted_families,
                repairs,
            } => format!(
                "node {node} crashed: {aborted_families} families aborted, \
                 {repairs} page-map entries repaired"
            ),
            Anomaly::OracleViolation { detail } => {
                format!("serializability oracle violation: {detail}")
            }
            Anomaly::PerfGateBreach {
                metric,
                current,
                floor,
            } => format!("perf gate breach: {metric} {current} below floor {floor}"),
        }
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![("type", Json::str(self.name()))];
        match self {
            Anomaly::DeadlockVictim {
                cycle,
                cycle_families,
                victim,
                family,
            } => {
                pairs.push(("cycle", u64_arr(cycle)));
                pairs.push(("cycle_families", u64_arr(cycle_families)));
                pairs.push(("victim", Json::U64(*victim)));
                pairs.push(("family", Json::U64(*family)));
            }
            Anomaly::LockTimeout {
                object,
                txn,
                family,
                waited_ns,
            } => {
                pairs.push(("object", Json::U64(u64::from(*object))));
                pairs.push(("txn", Json::U64(*txn)));
                pairs.push(("family", Json::U64(*family)));
                pairs.push(("waited_ns", Json::U64(*waited_ns)));
            }
            Anomaly::CrashRepair {
                node,
                aborted_families,
                repairs,
            } => {
                pairs.push(("node", Json::U64(u64::from(*node))));
                pairs.push(("aborted_families", Json::U64(u64::from(*aborted_families))));
                pairs.push(("repairs", Json::U64(u64::from(*repairs))));
            }
            Anomaly::OracleViolation { detail } => {
                pairs.push(("detail", Json::str(detail)));
            }
            Anomaly::PerfGateBreach {
                metric,
                current,
                floor,
            } => {
                pairs.push(("metric", Json::str(metric)));
                pairs.push(("current", Json::U64(*current)));
                pairs.push(("floor", Json::U64(*floor)));
            }
        }
        Json::obj(pairs)
    }

    fn from_json(json: &Json) -> Result<Anomaly, JsonError> {
        let ty = json.require("type")?.as_str().unwrap_or_default();
        let u = |key: &str| -> Result<u64, JsonError> {
            json.require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("anomaly field `{key}` not a u64")))
        };
        Ok(match ty {
            "deadlock_victim" => Anomaly::DeadlockVictim {
                cycle: u64_arr_from(json.require("cycle")?)?,
                cycle_families: u64_arr_from(json.require("cycle_families")?)?,
                victim: u("victim")?,
                family: u("family")?,
            },
            "lock_timeout" => Anomaly::LockTimeout {
                object: u("object")? as u32,
                txn: u("txn")?,
                family: u("family")?,
                waited_ns: u("waited_ns")?,
            },
            "crash_repair" => Anomaly::CrashRepair {
                node: u("node")? as u32,
                aborted_families: u("aborted_families")? as u32,
                repairs: u("repairs")? as u32,
            },
            "oracle_violation" => Anomaly::OracleViolation {
                detail: json
                    .require("detail")?
                    .as_str()
                    .unwrap_or_default()
                    .to_string(),
            },
            "perf_gate_breach" => Anomaly::PerfGateBreach {
                metric: json
                    .require("metric")?
                    .as_str()
                    .unwrap_or_default()
                    .to_string(),
                current: u("current")?,
                floor: u("floor")?,
            },
            other => return Err(JsonError::new(format!("unknown anomaly type `{other}`"))),
        })
    }
}

/// Lock-table occupancy at capture time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Holder-list entries across all objects.
    pub held: u32,
    /// Retainer-map entries across all objects.
    pub retained: u32,
    /// Queued (waiting) requests across all objects.
    pub waiting: u32,
}

/// One family's span state at capture time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySnapshot {
    /// Family index (workload order).
    pub family: u64,
    /// Coarse phase, `None` before the family's arrival.
    pub phase: Option<ObsPhase>,
    /// Restarts performed so far.
    pub restarts: u32,
}

/// A complete post-mortem snapshot. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsDump {
    /// Index of this dump within the run (anomalies beyond the per-run
    /// cap are counted but not captured).
    pub seq: u64,
    /// Sim time of the anomaly, nanoseconds.
    pub at_ns: u64,
    /// What went wrong.
    pub anomaly: Anomaly,
    /// Total events ever emitted into the recorder.
    pub recorded: u64,
    /// Events evicted by ring wraparound before capture.
    pub dropped: u64,
    /// Lock-table occupancy at capture.
    pub occupancy: OccupancySnapshot,
    /// Family-level waits-for edges at capture: `(waiter_root,
    /// blocker_roots)`, sorted by waiter.
    pub waits_for: Vec<(u64, Vec<u64>)>,
    /// Root-transaction → family-index mapping for every edge endpoint.
    pub root_families: Vec<(u64, u64)>,
    /// Per-family span state at capture, sorted by family.
    pub families: Vec<FamilySnapshot>,
    /// The ring snapshot, oldest first.
    pub events: Vec<ObsEvent>,
}

fn u64_arr(values: &[u64]) -> Json {
    Json::Arr(values.iter().copied().map(Json::U64).collect())
}

fn u64_arr_from(json: &Json) -> Result<Vec<u64>, JsonError> {
    json.as_array()
        .ok_or_else(|| JsonError::new("expected array"))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| JsonError::new("expected u64")))
        .collect()
}

impl ForensicsDump {
    /// A post-run dump for a serializability-oracle violation: by the
    /// time the oracle runs the engine (and its lock table) is gone, so
    /// the dump carries the recorder's ring and the violation detail but
    /// no live occupancy or waits-for edges. Timestamped at the ring's
    /// newest event.
    pub fn oracle_violation(detail: String, recorder: &FlightRecorder) -> ForensicsDump {
        let events = recorder.snapshot();
        ForensicsDump {
            seq: 0,
            at_ns: events.last().map_or(0, |e| e.at.as_nanos()),
            anomaly: Anomaly::OracleViolation { detail },
            recorded: recorder.recorded(),
            dropped: recorder.dropped(),
            occupancy: OccupancySnapshot::default(),
            waits_for: Vec::new(),
            root_families: Vec::new(),
            families: Vec::new(),
            events,
        }
    }

    /// The dump header (everything but the per-event lines) as JSON.
    fn header_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("forensics")),
            ("seq", Json::U64(self.seq)),
            ("at_ns", Json::U64(self.at_ns)),
            ("anomaly", self.anomaly.to_json()),
            ("recorded", Json::U64(self.recorded)),
            ("dropped", Json::U64(self.dropped)),
            (
                "occupancy",
                Json::obj(vec![
                    ("held", Json::U64(u64::from(self.occupancy.held))),
                    ("retained", Json::U64(u64::from(self.occupancy.retained))),
                    ("waiting", Json::U64(u64::from(self.occupancy.waiting))),
                ]),
            ),
            (
                "waits_for",
                Json::Arr(
                    self.waits_for
                        .iter()
                        .map(|(waiter, blockers)| {
                            Json::obj(vec![
                                ("waiter", Json::U64(*waiter)),
                                ("blockers", u64_arr(blockers)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "root_families",
                Json::Arr(
                    self.root_families
                        .iter()
                        .map(|(root, family)| Json::Arr(vec![Json::U64(*root), Json::U64(*family)]))
                        .collect(),
                ),
            ),
            (
                "families",
                Json::Arr(
                    self.families
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("family", Json::U64(f.family)),
                                ("phase", f.phase.map_or(Json::Null, |p| Json::str(p.name()))),
                                ("restarts", Json::U64(u64::from(f.restarts))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("events", Json::U64(self.events.len() as u64)),
        ])
    }

    /// Serializes the dump: one header line, then one line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.header_json().render();
        out.push('\n');
        for event in &self.events {
            out.push_str(&event_to_json(event).render());
            out.push('\n');
        }
        out
    }

    /// Parses a dump serialized by [`ForensicsDump::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or a header/event-count
    /// mismatch.
    pub fn parse(text: &str) -> Result<ForensicsDump, JsonError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = Json::parse(
            lines
                .next()
                .ok_or_else(|| JsonError::new("empty forensics dump"))?,
        )?;
        if header.get("kind").and_then(Json::as_str) != Some("forensics") {
            return Err(JsonError::new("not a forensics dump (missing kind header)"));
        }
        let u = |key: &str| -> Result<u64, JsonError> {
            header
                .require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("header field `{key}` not a u64")))
        };
        let occupancy = {
            let occ = header.require("occupancy")?;
            let f = |key: &str| -> Result<u32, JsonError> {
                Ok(occ
                    .require(key)?
                    .as_u64()
                    .ok_or_else(|| JsonError::new(format!("occupancy `{key}` not a u64")))?
                    as u32)
            };
            OccupancySnapshot {
                held: f("held")?,
                retained: f("retained")?,
                waiting: f("waiting")?,
            }
        };
        let waits_for = header
            .require("waits_for")?
            .as_array()
            .ok_or_else(|| JsonError::new("waits_for not an array"))?
            .iter()
            .map(|edge| {
                let waiter = edge
                    .require("waiter")?
                    .as_u64()
                    .ok_or_else(|| JsonError::new("edge waiter not a u64"))?;
                Ok((waiter, u64_arr_from(edge.require("blockers")?)?))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let root_families = header
            .require("root_families")?
            .as_array()
            .ok_or_else(|| JsonError::new("root_families not an array"))?
            .iter()
            .map(|pair| {
                let pair = u64_arr_from(pair)?;
                if pair.len() != 2 {
                    return Err(JsonError::new("root_families entry not a pair"));
                }
                Ok((pair[0], pair[1]))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let families = header
            .require("families")?
            .as_array()
            .ok_or_else(|| JsonError::new("families not an array"))?
            .iter()
            .map(|f| {
                let family = f
                    .require("family")?
                    .as_u64()
                    .ok_or_else(|| JsonError::new("family index not a u64"))?;
                let phase = match f.require("phase")? {
                    Json::Null => None,
                    p => Some(p.as_str().and_then(ObsPhase::from_name).ok_or_else(|| {
                        JsonError::new(format!("unknown phase for family {family}"))
                    })?),
                };
                let restarts = f
                    .require("restarts")?
                    .as_u64()
                    .ok_or_else(|| JsonError::new("restarts not a u64"))?
                    as u32;
                Ok(FamilySnapshot {
                    family,
                    phase,
                    restarts,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let expected_events = u("events")?;
        let events = lines
            .map(|line| event_from_json(&Json::parse(line)?))
            .collect::<Result<Vec<_>, JsonError>>()?;
        if events.len() as u64 != expected_events {
            return Err(JsonError::new(format!(
                "header promises {expected_events} events, dump carries {}",
                events.len()
            )));
        }
        Ok(ForensicsDump {
            seq: u("seq")?,
            at_ns: u("at_ns")?,
            anomaly: Anomaly::from_json(header.require("anomaly")?)?,
            recorded: u("recorded")?,
            dropped: u("dropped")?,
            occupancy,
            waits_for,
            root_families,
            families,
            events,
        })
    }

    /// Writes the dump pair next to `stem`: `<stem>.jsonl` (the parseable
    /// dump) and `<stem>.chrome.json` (the ring as a Perfetto-loadable
    /// Chrome trace). Returns both paths.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the parent directory or
    /// writing either file.
    pub fn write_pair(&self, stem: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        if let Some(dir) = stem.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let jsonl = stem.with_extension("jsonl");
        let chrome = stem.with_extension("chrome.json");
        std::fs::write(&jsonl, self.to_jsonl())?;
        std::fs::write(&chrome, chrome_trace(&self.events).render_pretty())?;
        Ok((jsonl, chrome))
    }

    /// Family index of a root transaction, when the dump knows it.
    fn family_of_root(&self, root: u64) -> Option<u64> {
        self.root_families
            .iter()
            .find(|(r, _)| *r == root)
            .map(|(_, f)| *f)
    }

    /// The family the anomaly anchors to, when it has one.
    pub fn anchor_family(&self) -> Option<u64> {
        match &self.anomaly {
            Anomaly::DeadlockVictim { family, .. } | Anomaly::LockTimeout { family, .. } => {
                Some(*family)
            }
            _ => None,
        }
    }

    /// Renders the human triage report. See the [module docs](self).
    pub fn render_triage(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== forensics triage (dump #{}) ===", self.seq);
        let _ = writeln!(
            out,
            "anomaly: {} at t={}ns",
            self.anomaly.headline(),
            self.at_ns
        );
        if let Anomaly::DeadlockVictim {
            cycle,
            cycle_families,
            victim,
            ..
        } = &self.anomaly
        {
            let fams: Vec<String> = cycle_families.iter().map(|f| f.to_string()).collect();
            let roots: Vec<String> = cycle.iter().map(|r| format!("T{r}")).collect();
            let _ = writeln!(
                out,
                "cycle: family {} (roots {}) formed at t={}ns; victim root T{victim}",
                fams.join(" -> "),
                roots.join(" -> "),
                self.at_ns
            );
        }
        let _ = writeln!(
            out,
            "lock table at capture: {} held / {} retained / {} waiting",
            self.occupancy.held, self.occupancy.retained, self.occupancy.waiting
        );
        if !self.waits_for.is_empty() {
            let _ = writeln!(out, "waits-for edges at capture (family-level roots):");
            for (waiter, blockers) in &self.waits_for {
                let pretty: Vec<String> = blockers
                    .iter()
                    .map(|b| match self.family_of_root(*b) {
                        Some(f) => format!("T{b}(F{f})"),
                        None => format!("T{b}"),
                    })
                    .collect();
                let waiter_fam = self
                    .family_of_root(*waiter)
                    .map_or(String::new(), |f| format!("(F{f})"));
                let _ = writeln!(out, "  T{waiter}{waiter_fam} -> [{}]", pretty.join(", "));
            }
            match find_cycle(&self.waits_for) {
                Some(cycle) => {
                    let pretty: Vec<String> = cycle
                        .iter()
                        .map(|r| match self.family_of_root(*r) {
                            Some(f) => format!("F{f}"),
                            None => format!("T{r}"),
                        })
                        .collect();
                    let matches = match &self.anomaly {
                        Anomaly::DeadlockVictim { cycle: c, .. } => {
                            // Rotations (and a possible closing repeat)
                            // don't matter; compare as vertex sets.
                            let mut a: Vec<u64> = cycle.clone();
                            let mut b: Vec<u64> = c.clone();
                            a.sort_unstable();
                            a.dedup();
                            b.sort_unstable();
                            b.dedup();
                            if a == b {
                                "yes"
                            } else {
                                "NO"
                            }
                        }
                        _ => "n/a",
                    };
                    let _ = writeln!(
                        out,
                        "cycle reconstructed from dumped edges: {} -> {} \
                         (matches anomaly: {matches})",
                        pretty.join(" -> "),
                        pretty.first().map(String::as_str).unwrap_or("?")
                    );
                }
                None => {
                    let _ = writeln!(out, "no cycle among dumped edges");
                }
            }
        }
        // Contributing grants: the most recent grants held by the cycle's
        // (or anchor family's) transactions — the acquisitions that built
        // the deadlock, newest last.
        let cycle_roots: Vec<u64> = match &self.anomaly {
            Anomaly::DeadlockVictim { cycle, .. } => {
                let mut roots = cycle.clone();
                roots.sort_unstable();
                roots.dedup();
                roots
            }
            Anomaly::LockTimeout { txn, .. } => vec![*txn],
            _ => Vec::new(),
        };
        if !cycle_roots.is_empty() {
            let grants: Vec<&ObsEvent> = self
                .events
                .iter()
                .filter(|e| {
                    matches!(&e.kind, ObsEventKind::LockGranted { txn, .. }
                        if cycle_roots.contains(txn))
                })
                .collect();
            if !grants.is_empty() {
                let _ = writeln!(out, "contributing grants (cycle members, newest last):");
                for event in grants.iter().rev().take(8).rev() {
                    if let ObsEventKind::LockGranted {
                        object,
                        txn,
                        mode,
                        global,
                        ..
                    } = &event.kind
                    {
                        let _ = writeln!(
                            out,
                            "  t={}ns T{txn} granted O{object} ({}, {})",
                            event.at.as_nanos(),
                            mode.name(),
                            if *global { "global" } else { "local" }
                        );
                    }
                }
            }
        }
        // The causal chain: the anchor family's partial critical path,
        // walked backwards from the anomaly.
        if let Some(anchor) = self.anchor_family() {
            let cutoff = lotec_sim::SimTime::from_nanos(self.at_ns);
            let paths = partial_paths(&self.events, cutoff);
            match paths.iter().find(|p| p.family == anchor) {
                Some(path) => {
                    let _ = writeln!(
                        out,
                        "causal chain for family {anchor}, backwards from the anomaly:"
                    );
                    for edge in path.edges.iter().rev() {
                        let _ = writeln!(
                            out,
                            "  t=[{}..{}]ns {:<15} ({}ns)",
                            edge.start.as_nanos(),
                            edge.end.as_nanos(),
                            edge.kind.name(),
                            edge.duration().as_nanos()
                        );
                    }
                }
                None => {
                    let _ = writeln!(
                        out,
                        "causal chain for family {anchor}: no events in the ring \
                         (history evicted; enlarge flight_recorder.slots)"
                    );
                }
            }
        }
        // Family phase census.
        if !self.families.is_empty() {
            let mut census: BTreeMap<&str, u32> = BTreeMap::new();
            for f in &self.families {
                *census
                    .entry(f.phase.map_or("not-started", |p| p.name()))
                    .or_default() += 1;
            }
            let parts: Vec<String> = census
                .iter()
                .map(|(phase, n)| format!("{n} {phase}"))
                .collect();
            let _ = writeln!(out, "families at capture: {}", parts.join(" / "));
        }
        let _ = writeln!(
            out,
            "ring: {} events captured ({} recorded, {} dropped)",
            self.events.len(),
            self.recorded,
            self.dropped
        );
        out
    }
}

/// Finds a waits-for cycle in dumped `(waiter, blockers)` edges via
/// deterministic DFS from the smallest waiter. Returns the cycle's
/// vertices rotated to start at the smallest member, without the closing
/// repeat. `None` when the edge set is acyclic.
pub fn find_cycle(edges: &[(u64, Vec<u64>)]) -> Option<Vec<u64>> {
    let graph: BTreeMap<u64, &Vec<u64>> = edges.iter().map(|(w, b)| (*w, b)).collect();
    // Iterative DFS with an explicit path stack; visits neighbors in the
    // dumped (deterministic) order.
    let mut done: std::collections::BTreeSet<u64> = Default::default();
    for &start in graph.keys() {
        if done.contains(&start) {
            continue;
        }
        let mut path: Vec<u64> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        while let (Some(&node), Some(next)) = (path.last(), iters.last_mut()) {
            let neighbors = graph.get(&node).map(|b| b.as_slice()).unwrap_or(&[]);
            if *next >= neighbors.len() {
                done.insert(node);
                path.pop();
                iters.pop();
                if let Some(i) = iters.last_mut() {
                    *i += 1;
                }
                continue;
            }
            let neighbor = neighbors[*next];
            if let Some(pos) = path.iter().position(|&n| n == neighbor) {
                let mut cycle: Vec<u64> = path[pos..].to_vec();
                // Rotate to start at the smallest member for a canonical
                // representation.
                let min_at = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &v)| v)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(min_at);
                return Some(cycle);
            }
            if done.contains(&neighbor) {
                *next += 1;
                continue;
            }
            path.push(neighbor);
            iters.push(0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotec_sim::SimTime;

    fn sample_dump() -> ForensicsDump {
        ForensicsDump {
            seq: 0,
            at_ns: 4000,
            anomaly: Anomaly::DeadlockVictim {
                cycle: vec![10, 20, 10],
                cycle_families: vec![1, 2, 1],
                victim: 20,
                family: 2,
            },
            recorded: 5,
            dropped: 0,
            occupancy: OccupancySnapshot {
                held: 2,
                retained: 1,
                waiting: 2,
            },
            waits_for: vec![(10, vec![20]), (20, vec![10])],
            root_families: vec![(10, 1), (20, 2)],
            families: vec![
                FamilySnapshot {
                    family: 1,
                    phase: Some(ObsPhase::LockWait),
                    restarts: 0,
                },
                FamilySnapshot {
                    family: 2,
                    phase: Some(ObsPhase::LockWait),
                    restarts: 1,
                },
            ],
            events: vec![
                ObsEvent {
                    at: SimTime::from_nanos(1000),
                    node: 0,
                    kind: ObsEventKind::SpanOpen {
                        family: 2,
                        txn: 20,
                        parent: None,
                        object: 4,
                    },
                },
                ObsEvent {
                    at: SimTime::from_nanos(1500),
                    node: 0,
                    kind: ObsEventKind::PhaseEnter {
                        family: 2,
                        phase: ObsPhase::LockWait,
                    },
                },
                ObsEvent {
                    at: SimTime::from_nanos(2000),
                    node: 0,
                    kind: ObsEventKind::LockGranted {
                        object: 4,
                        txn: 20,
                        mode: crate::event::ObsLockMode::Write,
                        global: true,
                        holders: 1,
                    },
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let dump = sample_dump();
        let text = dump.to_jsonl();
        let parsed = ForensicsDump::parse(&text).expect("parses");
        assert_eq!(parsed, dump);
        // Byte-exact re-render: parse ∘ render is the identity.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn parse_rejects_wrong_event_count() {
        let dump = sample_dump();
        let mut text = dump.to_jsonl();
        let cut = text.rfind('\n').unwrap();
        let cut = text[..cut].rfind('\n').unwrap();
        text.truncate(cut + 1);
        assert!(ForensicsDump::parse(&text).is_err());
    }

    #[test]
    fn triage_names_the_victim_and_cycle() {
        let triage = sample_dump().render_triage();
        assert!(triage.contains("victim family 2"), "{triage}");
        assert!(
            triage.contains("cycle reconstructed from dumped edges"),
            "{triage}"
        );
        assert!(triage.contains("matches anomaly: yes"), "{triage}");
        assert!(triage.contains("contributing grants"), "{triage}");
        assert!(triage.contains("causal chain for family 2"), "{triage}");
    }

    #[test]
    fn find_cycle_handles_cycles_and_dags() {
        assert_eq!(
            find_cycle(&[(10, vec![20]), (20, vec![10])]),
            Some(vec![10, 20])
        );
        assert_eq!(
            find_cycle(&[(3, vec![7]), (7, vec![9]), (9, vec![3])]),
            Some(vec![3, 7, 9])
        );
        assert_eq!(find_cycle(&[(1, vec![2]), (2, vec![3])]), None);
        assert_eq!(find_cycle(&[]), None);
        // A diamond without a cycle must not false-positive on the
        // revisited node.
        assert_eq!(
            find_cycle(&[(1, vec![2, 3]), (2, vec![4]), (3, vec![4])]),
            None
        );
    }
}
