//! Trace export: JSONL (one event per line, lossless round-trip) and
//! Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! The JSONL form is the archival one — `jsonl_decode(jsonl_encode(ev))`
//! returns events identical to the originals, which a facade test asserts.
//! The Chrome form is a *view*: one track per node (`pid`), one row per
//! family (`tid`), one complete slice (`"ph":"X"`) per contiguous stay in
//! a phase, plus instant markers for deadlocks, sub-aborts, restarts and
//! demand fetches.

use std::collections::BTreeMap;

use lotec_sim::SimTime;

use crate::critical_path::{critical_paths, PathEdgeKind};
use crate::event::{ObsEvent, ObsEventKind, ObsLockMode, ObsPhase, ReleaseCause, SpanOutcome};
use crate::json::{Json, JsonError};

fn txns_json(txns: &[u64]) -> Json {
    Json::Arr(txns.iter().map(|&t| Json::U64(t)).collect())
}

fn txns_from(json: &Json, key: &str) -> Result<Vec<u64>, JsonError> {
    json.require(key)?
        .as_array()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| JsonError::new(format!("`{key}` entries must be u64")))
        })
        .collect()
}

fn pages_json(pages: &[u16]) -> Json {
    Json::Arr(pages.iter().map(|&p| Json::U64(p as u64)).collect())
}

fn pages_from(json: &Json, key: &str) -> Result<Vec<u16>, JsonError> {
    json.require(key)?
        .as_array()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u16::try_from(n).ok())
                .ok_or_else(|| JsonError::new(format!("`{key}` entries must be u16")))
        })
        .collect()
}

fn u64_field(json: &Json, key: &str) -> Result<u64, JsonError> {
    json.require(key)?
        .as_u64()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be a non-negative integer")))
}

fn u32_field(json: &Json, key: &str) -> Result<u32, JsonError> {
    u64_field(json, key).and_then(|v| {
        u32::try_from(v).map_err(|_| JsonError::new(format!("`{key}` out of u32 range")))
    })
}

fn u16_field(json: &Json, key: &str) -> Result<u16, JsonError> {
    u64_field(json, key).and_then(|v| {
        u16::try_from(v).map_err(|_| JsonError::new(format!("`{key}` out of u16 range")))
    })
}

fn str_field<'j>(json: &'j Json, key: &str) -> Result<&'j str, JsonError> {
    json.require(key)?
        .as_str()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be a string")))
}

/// Converts one event to its JSONL object form.
pub fn event_to_json(event: &ObsEvent) -> Json {
    let mut pairs = vec![
        ("at", Json::U64(event.at.as_nanos())),
        ("node", Json::U64(event.node as u64)),
        ("kind", Json::str(event.kind.name())),
    ];
    match &event.kind {
        ObsEventKind::LockQueued {
            object,
            txn,
            mode,
            waiters,
        } => {
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("txn", Json::U64(*txn)));
            pairs.push(("mode", Json::str(mode.name())));
            pairs.push(("waiters", Json::U64(*waiters as u64)));
        }
        ObsEventKind::LockGranted {
            object,
            txn,
            mode,
            global,
            holders,
        } => {
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("txn", Json::U64(*txn)));
            pairs.push(("mode", Json::str(mode.name())));
            pairs.push(("global", Json::Bool(*global)));
            pairs.push(("holders", Json::U64(*holders as u64)));
        }
        ObsEventKind::LockRetained {
            object,
            txn,
            parent,
        } => {
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("txn", Json::U64(*txn)));
            pairs.push(("parent", Json::U64(*parent)));
        }
        ObsEventKind::LockBlocked {
            object,
            txn,
            holders,
            retainers,
            queued_behind,
        } => {
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("txn", Json::U64(*txn)));
            pairs.push(("holders", txns_json(holders)));
            pairs.push(("retainers", txns_json(retainers)));
            pairs.push(("queued_behind", txns_json(queued_behind)));
        }
        ObsEventKind::LockReleased { object, txn, cause } => {
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("txn", Json::U64(*txn)));
            pairs.push(("cause", Json::str(cause.name())));
        }
        ObsEventKind::Deadlock { cycle, victim } => {
            pairs.push((
                "cycle",
                Json::Arr(cycle.iter().map(|&t| Json::U64(t)).collect()),
            ));
            pairs.push(("victim", Json::U64(*victim)));
        }
        ObsEventKind::SpanOpen {
            family,
            txn,
            parent,
            object,
        } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("txn", Json::U64(*txn)));
            if let Some(parent) = parent {
                pairs.push(("parent", Json::U64(*parent)));
            }
            pairs.push(("object", Json::U64(*object as u64)));
        }
        ObsEventKind::SpanClose {
            family,
            txn,
            outcome,
        } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("txn", Json::U64(*txn)));
            pairs.push(("outcome", Json::str(outcome.name())));
        }
        ObsEventKind::PhaseEnter { family, phase } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("phase", Json::str(phase.name())));
        }
        ObsEventKind::SubAbort {
            family,
            txn,
            released,
        } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("txn", Json::U64(*txn)));
            pairs.push(("released", Json::U64(*released as u64)));
        }
        ObsEventKind::Restart {
            family,
            attempt,
            backoff_ns,
        } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("attempt", Json::U64(*attempt as u64)));
            pairs.push(("backoff_ns", Json::U64(*backoff_ns)));
        }
        ObsEventKind::GrantPlan {
            family,
            object,
            predicted,
            actual_reads,
            actual_writes,
            planned_pages,
            sources,
        } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("predicted", pages_json(predicted)));
            pairs.push(("actual_reads", pages_json(actual_reads)));
            pairs.push(("actual_writes", pages_json(actual_writes)));
            pairs.push(("planned_pages", Json::U64(*planned_pages as u64)));
            pairs.push(("sources", Json::U64(*sources as u64)));
        }
        ObsEventKind::GatherBatch {
            family,
            object,
            source,
            pages,
            bytes,
            delay_ns,
        } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("source", Json::U64(*source as u64)));
            pairs.push(("pages", Json::U64(*pages as u64)));
            pairs.push(("bytes", Json::U64(*bytes)));
            pairs.push(("delay_ns", Json::U64(*delay_ns)));
        }
        ObsEventKind::PredictionSample {
            class,
            method,
            predicted,
            actual,
            true_positives,
        } => {
            pairs.push(("class", Json::U64(*class as u64)));
            pairs.push(("method", Json::U64(*method as u64)));
            pairs.push(("predicted", Json::U64(*predicted as u64)));
            pairs.push(("actual", Json::U64(*actual as u64)));
            pairs.push(("true_positives", Json::U64(*true_positives as u64)));
        }
        ObsEventKind::ProfileUpdate {
            class,
            method,
            expanded,
            shrunk,
            predicted,
            observations,
        } => {
            pairs.push(("class", Json::U64(*class as u64)));
            pairs.push(("method", Json::U64(*method as u64)));
            pairs.push(("expanded", pages_json(expanded)));
            pairs.push(("shrunk", pages_json(shrunk)));
            pairs.push(("predicted", Json::U64(*predicted as u64)));
            pairs.push(("observations", Json::U64(*observations)));
        }
        ObsEventKind::DemandBatch {
            family,
            object,
            source,
            pages,
            bytes,
            delay_ns,
        } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("source", Json::U64(*source as u64)));
            pairs.push(("pages", pages_json(pages)));
            pairs.push(("bytes", Json::U64(*bytes)));
            pairs.push(("delay_ns", Json::U64(*delay_ns)));
        }
        ObsEventKind::DemandFetch {
            family,
            object,
            page,
            source,
            bytes,
        } => {
            pairs.push(("family", Json::U64(*family)));
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("page", Json::U64(*page as u64)));
            pairs.push(("source", Json::U64(*source as u64)));
            pairs.push(("bytes", Json::U64(*bytes)));
        }
        ObsEventKind::Retransmit {
            dst,
            attempts,
            duplicates,
            wait_ns,
            family,
        } => {
            pairs.push(("dst", Json::U64(*dst as u64)));
            pairs.push(("attempts", Json::U64(*attempts as u64)));
            pairs.push(("duplicates", Json::U64(*duplicates as u64)));
            pairs.push(("wait_ns", Json::U64(*wait_ns)));
            if let Some(family) = family {
                pairs.push(("family", Json::U64(*family)));
            }
        }
        ObsEventKind::NodeCrashed { aborted_families } => {
            pairs.push(("aborted_families", Json::U64(*aborted_families as u64)));
        }
        ObsEventKind::NodeRecovered { outage_ns } => {
            pairs.push(("outage_ns", Json::U64(*outage_ns)));
        }
        ObsEventKind::LockTimeout {
            object,
            txn,
            waited_ns,
        } => {
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("txn", Json::U64(*txn)));
            pairs.push(("waited_ns", Json::U64(*waited_ns)));
        }
        ObsEventKind::PageMapRepaired {
            object,
            page,
            from,
            to,
        } => {
            pairs.push(("object", Json::U64(*object as u64)));
            pairs.push(("page", Json::U64(*page as u64)));
            pairs.push(("from", Json::U64(*from as u64)));
            pairs.push(("to", Json::U64(*to as u64)));
        }
        ObsEventKind::StateSample {
            queue_depth,
            locks_held,
            locks_retained,
            locks_waiting,
            inflight_messages,
            blocked_families,
            cache_bytes,
        } => {
            pairs.push(("queue_depth", Json::U64(*queue_depth)));
            pairs.push(("locks_held", Json::U64(*locks_held as u64)));
            pairs.push(("locks_retained", Json::U64(*locks_retained as u64)));
            pairs.push(("locks_waiting", Json::U64(*locks_waiting as u64)));
            pairs.push(("inflight_messages", Json::U64(*inflight_messages as u64)));
            pairs.push(("blocked_families", Json::U64(*blocked_families as u64)));
            pairs.push(("cache_bytes", txns_json(cache_bytes)));
        }
    }
    Json::obj(pairs)
}

/// Parses one JSONL object back into an event.
pub fn event_from_json(json: &Json) -> Result<ObsEvent, JsonError> {
    let at = SimTime::from_nanos(u64_field(json, "at")?);
    let node = u32_field(json, "node")?;
    let kind_name = str_field(json, "kind")?;
    let mode = |j: &Json| -> Result<ObsLockMode, JsonError> {
        let name = str_field(j, "mode")?;
        ObsLockMode::from_name(name)
            .ok_or_else(|| JsonError::new(format!("unknown lock mode `{name}`")))
    };
    let kind = match kind_name {
        "lock_queued" => ObsEventKind::LockQueued {
            object: u32_field(json, "object")?,
            txn: u64_field(json, "txn")?,
            mode: mode(json)?,
            waiters: u32_field(json, "waiters")?,
        },
        "lock_granted" => ObsEventKind::LockGranted {
            object: u32_field(json, "object")?,
            txn: u64_field(json, "txn")?,
            mode: mode(json)?,
            global: json
                .require("global")?
                .as_bool()
                .ok_or_else(|| JsonError::new("`global` must be a bool"))?,
            holders: u32_field(json, "holders")?,
        },
        "lock_retained" => ObsEventKind::LockRetained {
            object: u32_field(json, "object")?,
            txn: u64_field(json, "txn")?,
            parent: u64_field(json, "parent")?,
        },
        "lock_blocked" => ObsEventKind::LockBlocked {
            object: u32_field(json, "object")?,
            txn: u64_field(json, "txn")?,
            holders: txns_from(json, "holders")?,
            retainers: txns_from(json, "retainers")?,
            queued_behind: txns_from(json, "queued_behind")?,
        },
        "lock_released" => ObsEventKind::LockReleased {
            object: u32_field(json, "object")?,
            txn: u64_field(json, "txn")?,
            cause: {
                let name = str_field(json, "cause")?;
                ReleaseCause::from_name(name)
                    .ok_or_else(|| JsonError::new(format!("unknown release cause `{name}`")))?
            },
        },
        "deadlock" => ObsEventKind::Deadlock {
            cycle: json
                .require("cycle")?
                .as_array()
                .ok_or_else(|| JsonError::new("`cycle` must be an array"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| JsonError::new("`cycle` entries must be u64"))
                })
                .collect::<Result<_, _>>()?,
            victim: u64_field(json, "victim")?,
        },
        "span_open" => ObsEventKind::SpanOpen {
            family: u64_field(json, "family")?,
            txn: u64_field(json, "txn")?,
            parent: match json.get("parent") {
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| JsonError::new("`parent` must be a u64"))?,
                ),
                None => None,
            },
            object: u32_field(json, "object")?,
        },
        "span_close" => ObsEventKind::SpanClose {
            family: u64_field(json, "family")?,
            txn: u64_field(json, "txn")?,
            outcome: {
                let name = str_field(json, "outcome")?;
                SpanOutcome::from_name(name)
                    .ok_or_else(|| JsonError::new(format!("unknown span outcome `{name}`")))?
            },
        },
        "phase_enter" => ObsEventKind::PhaseEnter {
            family: u64_field(json, "family")?,
            phase: {
                let name = str_field(json, "phase")?;
                ObsPhase::from_name(name)
                    .ok_or_else(|| JsonError::new(format!("unknown phase `{name}`")))?
            },
        },
        "sub_abort" => ObsEventKind::SubAbort {
            family: u64_field(json, "family")?,
            txn: u64_field(json, "txn")?,
            released: u32_field(json, "released")?,
        },
        "restart" => ObsEventKind::Restart {
            family: u64_field(json, "family")?,
            attempt: u32_field(json, "attempt")?,
            backoff_ns: u64_field(json, "backoff_ns")?,
        },
        "grant_plan" => ObsEventKind::GrantPlan {
            family: u64_field(json, "family")?,
            object: u32_field(json, "object")?,
            predicted: pages_from(json, "predicted")?,
            actual_reads: pages_from(json, "actual_reads")?,
            actual_writes: pages_from(json, "actual_writes")?,
            planned_pages: u32_field(json, "planned_pages")?,
            sources: u32_field(json, "sources")?,
        },
        "gather_batch" => ObsEventKind::GatherBatch {
            family: u64_field(json, "family")?,
            object: u32_field(json, "object")?,
            source: u32_field(json, "source")?,
            pages: u32_field(json, "pages")?,
            bytes: u64_field(json, "bytes")?,
            delay_ns: u64_field(json, "delay_ns")?,
        },
        "prediction_sample" => ObsEventKind::PredictionSample {
            class: u32_field(json, "class")?,
            method: u32_field(json, "method")?,
            predicted: u32_field(json, "predicted")?,
            actual: u32_field(json, "actual")?,
            true_positives: u32_field(json, "true_positives")?,
        },
        "profile_update" => ObsEventKind::ProfileUpdate {
            class: u32_field(json, "class")?,
            method: u32_field(json, "method")?,
            expanded: pages_from(json, "expanded")?,
            shrunk: pages_from(json, "shrunk")?,
            predicted: u32_field(json, "predicted")?,
            observations: u64_field(json, "observations")?,
        },
        "demand_batch" => ObsEventKind::DemandBatch {
            family: u64_field(json, "family")?,
            object: u32_field(json, "object")?,
            source: u32_field(json, "source")?,
            pages: pages_from(json, "pages")?,
            bytes: u64_field(json, "bytes")?,
            delay_ns: u64_field(json, "delay_ns")?,
        },
        "demand_fetch" => ObsEventKind::DemandFetch {
            family: u64_field(json, "family")?,
            object: u32_field(json, "object")?,
            page: u16_field(json, "page")?,
            source: u32_field(json, "source")?,
            bytes: u64_field(json, "bytes")?,
        },
        "retransmit" => ObsEventKind::Retransmit {
            dst: u32_field(json, "dst")?,
            attempts: u32_field(json, "attempts")?,
            duplicates: u32_field(json, "duplicates")?,
            wait_ns: u64_field(json, "wait_ns")?,
            family: match json.get("family") {
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| JsonError::new("`family` must be a u64"))?,
                ),
                None => None,
            },
        },
        "node_crashed" => ObsEventKind::NodeCrashed {
            aborted_families: u32_field(json, "aborted_families")?,
        },
        "node_recovered" => ObsEventKind::NodeRecovered {
            outage_ns: u64_field(json, "outage_ns")?,
        },
        "lock_timeout" => ObsEventKind::LockTimeout {
            object: u32_field(json, "object")?,
            txn: u64_field(json, "txn")?,
            waited_ns: u64_field(json, "waited_ns")?,
        },
        "page_map_repaired" => ObsEventKind::PageMapRepaired {
            object: u32_field(json, "object")?,
            page: u16_field(json, "page")?,
            from: u32_field(json, "from")?,
            to: u32_field(json, "to")?,
        },
        "state_sample" => ObsEventKind::StateSample {
            queue_depth: u64_field(json, "queue_depth")?,
            locks_held: u32_field(json, "locks_held")?,
            locks_retained: u32_field(json, "locks_retained")?,
            locks_waiting: u32_field(json, "locks_waiting")?,
            inflight_messages: u32_field(json, "inflight_messages")?,
            blocked_families: u32_field(json, "blocked_families")?,
            cache_bytes: txns_from(json, "cache_bytes")?,
        },
        other => return Err(JsonError::new(format!("unknown event kind `{other}`"))),
    };
    Ok(ObsEvent { at, node, kind })
}

/// Encodes events as JSONL: one compact JSON object per line.
pub fn jsonl_encode(events: &[ObsEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_to_json(event).render());
        out.push('\n');
    }
    out
}

/// Decodes a JSONL document produced by [`jsonl_encode`].
///
/// Blank lines are skipped; any malformed line aborts with an error naming
/// the line number.
pub fn jsonl_decode(text: &str) -> Result<Vec<ObsEvent>, JsonError> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json =
            Json::parse(line).map_err(|e| JsonError::new(format!("line {}: {e}", lineno + 1)))?;
        let event = event_from_json(&json)
            .map_err(|e| JsonError::new(format!("line {}: {e}", lineno + 1)))?;
        events.push(event);
    }
    Ok(events)
}

fn micros(t: SimTime) -> Json {
    Json::F64(t.as_nanos() as f64 / 1000.0)
}

/// Span rows live on separate `tid`s from the phase rows so that the
/// nested span slices of a family never partially overlap its phase
/// slices (Perfetto requires proper nesting within one thread track).
const SPAN_ROW_OFFSET: u64 = 1 << 32;

/// Builds a Chrome trace-event JSON document from recorded events.
///
/// Layout: `pid` = simulated node, `tid` = family index; each contiguous
/// stay in a phase becomes one complete (`"ph":"X"`) slice named after the
/// phase. Deadlocks, sub-aborts, restarts and demand fetches become
/// instant (`"ph":"i"`) markers on the same rows. [Sub-]transaction spans
/// (`SpanOpen`/`SpanClose`) become nested `"X"` slices (cat `"span"`) on a
/// sibling row per family (`tid = family + 2^32`), mirroring the O2PL
/// transaction tree. When span events are present, the per-root critical
/// path is overlaid as flow arrows (`"ph":"s"`/`"f"`, cat
/// `"critical_path"`) chaining the latency-determining edges, plus
/// lock-handoff arrows from blocker families. Events are sorted by `ts`,
/// so the output satisfies Perfetto's monotonicity expectations.
pub fn chrome_trace(events: &[ObsEvent]) -> Json {
    // family -> (node, phase, entered-at) for the currently open slice.
    let mut open: BTreeMap<u64, (u32, ObsPhase, SimTime)> = BTreeMap::new();
    // txn -> (node, family, object, opened-at) for open spans.
    let mut open_spans: BTreeMap<u64, (u32, u64, u32, SimTime)> = BTreeMap::new();
    let mut seen_nodes: BTreeMap<u32, ()> = BTreeMap::new();
    // (node, family) rows that carry span slices, for thread-name metadata.
    let mut span_rows: BTreeMap<(u32, u64), ()> = BTreeMap::new();
    // family -> home node, for placing flow arrows.
    let mut family_node: BTreeMap<u64, u32> = BTreeMap::new();
    // (start, duration-ns, json); duration breaks ts ties parent-first.
    let mut slices: Vec<(SimTime, u64, Json)> = Vec::new();
    let mut last_at = SimTime::ZERO;

    fn close_slice(
        open: &mut BTreeMap<u64, (u32, ObsPhase, SimTime)>,
        slices: &mut Vec<(SimTime, u64, Json)>,
        family: u64,
        until: SimTime,
    ) {
        if let Some((node, phase, since)) = open.remove(&family) {
            let dur = until.saturating_duration_since(since);
            let slice = Json::obj(vec![
                ("name", Json::str(phase.name())),
                ("cat", Json::str("phase")),
                ("ph", Json::str("X")),
                ("ts", micros(since)),
                ("dur", Json::F64(dur.as_nanos() as f64 / 1000.0)),
                ("pid", Json::U64(node as u64)),
                ("tid", Json::U64(family)),
            ]);
            slices.push((since, dur.as_nanos(), slice));
        }
    }

    fn close_span(
        open_spans: &mut BTreeMap<u64, (u32, u64, u32, SimTime)>,
        slices: &mut Vec<(SimTime, u64, Json)>,
        txn: u64,
        until: SimTime,
        outcome: Option<SpanOutcome>,
    ) {
        if let Some((node, family, object, since)) = open_spans.remove(&txn) {
            let dur = until.saturating_duration_since(since);
            let label = match outcome {
                Some(o) => format!("T{txn} O{object} [{}]", o.name()),
                None => format!("T{txn} O{object} [open]"),
            };
            let slice = Json::obj(vec![
                ("name", Json::str(label)),
                ("cat", Json::str("span")),
                ("ph", Json::str("X")),
                ("ts", micros(since)),
                ("dur", Json::F64(dur.as_nanos() as f64 / 1000.0)),
                ("pid", Json::U64(node as u64)),
                ("tid", Json::U64(SPAN_ROW_OFFSET + family)),
            ]);
            slices.push((since, dur.as_nanos(), slice));
        }
    }

    for event in events {
        last_at = last_at.max(event.at);
        seen_nodes.entry(event.node).or_insert(());
        match &event.kind {
            ObsEventKind::PhaseEnter { family, phase } => {
                family_node.entry(*family).or_insert(event.node);
                close_slice(&mut open, &mut slices, *family, event.at);
                if !phase.is_terminal() {
                    open.insert(*family, (event.node, *phase, event.at));
                }
            }
            ObsEventKind::SpanOpen {
                family,
                txn,
                object,
                ..
            } => {
                span_rows.entry((event.node, *family)).or_insert(());
                open_spans.insert(*txn, (event.node, *family, *object, event.at));
            }
            ObsEventKind::SpanClose { txn, outcome, .. } => {
                close_span(&mut open_spans, &mut slices, *txn, event.at, Some(*outcome));
            }
            ObsEventKind::Deadlock { victim, cycle } => {
                let marker = Json::obj(vec![
                    (
                        "name",
                        Json::str(format!(
                            "deadlock (victim T{victim}, cycle {})",
                            cycle.len()
                        )),
                    ),
                    ("cat", Json::str("lock")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("g")),
                    ("ts", micros(event.at)),
                    ("pid", Json::U64(event.node as u64)),
                    ("tid", Json::U64(0)),
                ]);
                slices.push((event.at, 0, marker));
            }
            ObsEventKind::SubAbort { family, txn, .. } => {
                let marker = Json::obj(vec![
                    ("name", Json::str(format!("sub-abort T{txn}"))),
                    ("cat", Json::str("abort")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("t")),
                    ("ts", micros(event.at)),
                    ("pid", Json::U64(event.node as u64)),
                    ("tid", Json::U64(*family)),
                ]);
                slices.push((event.at, 0, marker));
            }
            ObsEventKind::Restart {
                family, attempt, ..
            } => {
                let marker = Json::obj(vec![
                    ("name", Json::str(format!("restart #{attempt}"))),
                    ("cat", Json::str("abort")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("t")),
                    ("ts", micros(event.at)),
                    ("pid", Json::U64(event.node as u64)),
                    ("tid", Json::U64(*family)),
                ]);
                slices.push((event.at, 0, marker));
            }
            ObsEventKind::DemandFetch {
                family,
                object,
                page,
                ..
            } => {
                let marker = Json::obj(vec![
                    ("name", Json::str(format!("demand fetch O{object}/p{page}"))),
                    ("cat", Json::str("transfer")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("t")),
                    ("ts", micros(event.at)),
                    ("pid", Json::U64(event.node as u64)),
                    ("tid", Json::U64(*family)),
                ]);
                slices.push((event.at, 0, marker));
            }
            ObsEventKind::NodeCrashed { aborted_families } => {
                let marker = Json::obj(vec![
                    (
                        "name",
                        Json::str(format!("node crash ({aborted_families} aborted)")),
                    ),
                    ("cat", Json::str("fault")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("g")),
                    ("ts", micros(event.at)),
                    ("pid", Json::U64(event.node as u64)),
                    ("tid", Json::U64(0)),
                ]);
                slices.push((event.at, 0, marker));
            }
            ObsEventKind::NodeRecovered { .. } => {
                let marker = Json::obj(vec![
                    ("name", Json::str("node recovered")),
                    ("cat", Json::str("fault")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("g")),
                    ("ts", micros(event.at)),
                    ("pid", Json::U64(event.node as u64)),
                    ("tid", Json::U64(0)),
                ]);
                slices.push((event.at, 0, marker));
            }
            ObsEventKind::StateSample {
                queue_depth,
                locks_held,
                locks_retained,
                locks_waiting,
                inflight_messages,
                blocked_families,
                cache_bytes,
            } => {
                // Counter tracks ("ph":"C"): Perfetto renders each named
                // counter as a stacked area chart keyed by its args.
                let counter = |name: &str, pid: u64, args: Vec<(&str, Json)>| -> Json {
                    Json::obj(vec![
                        ("name", Json::str(name)),
                        ("cat", Json::str("state")),
                        ("ph", Json::str("C")),
                        ("ts", micros(event.at)),
                        ("pid", Json::U64(pid)),
                        ("args", Json::obj(args)),
                    ])
                };
                slices.push((
                    event.at,
                    0,
                    counter(
                        "sim queue depth",
                        0,
                        vec![("events", Json::U64(*queue_depth))],
                    ),
                ));
                slices.push((
                    event.at,
                    0,
                    counter(
                        "lock table",
                        0,
                        vec![
                            ("held", Json::U64(*locks_held as u64)),
                            ("retained", Json::U64(*locks_retained as u64)),
                            ("waiting", Json::U64(*locks_waiting as u64)),
                        ],
                    ),
                ));
                slices.push((
                    event.at,
                    0,
                    counter(
                        "families",
                        0,
                        vec![
                            ("blocked", Json::U64(*blocked_families as u64)),
                            ("inflight_messages", Json::U64(*inflight_messages as u64)),
                        ],
                    ),
                ));
                for (node, bytes) in cache_bytes.iter().enumerate() {
                    slices.push((
                        event.at,
                        0,
                        counter(
                            "cache bytes",
                            node as u64,
                            vec![("bytes", Json::U64(*bytes))],
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    // Close any slice still open at the end of the recording.
    let families: Vec<u64> = open.keys().copied().collect();
    for family in families {
        close_slice(&mut open, &mut slices, family, last_at);
    }
    let txns: Vec<u64> = open_spans.keys().copied().collect();
    for txn in txns {
        close_span(&mut open_spans, &mut slices, txn, last_at, None);
    }

    // Overlay the per-root critical paths as flow arrows: one chain per
    // committed family linking consecutive edges, plus lock-handoff
    // arrows from the blocker family's row into the lock-wait edge.
    let mut flow_id: u64 = 0;
    let flow = |name: &str, ph: &str, id: u64, at: SimTime, node: u32, tid: u64| -> Json {
        let mut pairs = vec![
            ("name", Json::str(name)),
            ("cat", Json::str("critical_path")),
            ("ph", Json::str(ph)),
            ("id", Json::U64(id)),
            ("ts", micros(at)),
            ("pid", Json::U64(node as u64)),
            ("tid", Json::U64(tid)),
        ];
        if ph == "f" {
            pairs.push(("bp", Json::str("e")));
        }
        Json::obj(pairs)
    };
    for path in critical_paths(events) {
        let node = family_node.get(&path.family).copied().unwrap_or(0);
        for pair in path.edges.windows(2) {
            flow_id += 1;
            slices.push((
                pair[0].end,
                0,
                flow(
                    "critical-path",
                    "s",
                    flow_id,
                    pair[0].end,
                    node,
                    path.family,
                ),
            ));
            slices.push((
                pair[1].start,
                0,
                flow(
                    "critical-path",
                    "f",
                    flow_id,
                    pair[1].start,
                    node,
                    path.family,
                ),
            ));
        }
        for edge in &path.edges {
            if let PathEdgeKind::LockWait { blockers, .. } = &edge.kind {
                for &blocker in blockers {
                    let bnode = family_node.get(&blocker).copied().unwrap_or(node);
                    flow_id += 1;
                    slices.push((
                        edge.end,
                        0,
                        flow("lock-handoff", "s", flow_id, edge.end, bnode, blocker),
                    ));
                    slices.push((
                        edge.end,
                        0,
                        flow("lock-handoff", "f", flow_id, edge.end, node, path.family),
                    ));
                }
            }
        }
    }

    let mut trace_events: Vec<Json> = seen_nodes
        .keys()
        .map(|&node| {
            Json::obj(vec![
                ("name", Json::str("process_name")),
                ("ph", Json::str("M")),
                ("ts", Json::F64(0.0)),
                ("pid", Json::U64(node as u64)),
                (
                    "args",
                    Json::obj(vec![("name", Json::str(format!("node {node}")))]),
                ),
            ])
        })
        .collect();
    trace_events.extend(span_rows.keys().map(|&(node, family)| {
        Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("ts", Json::F64(0.0)),
            ("pid", Json::U64(node as u64)),
            ("tid", Json::U64(SPAN_ROW_OFFSET + family)),
            (
                "args",
                Json::obj(vec![("name", Json::str(format!("family {family} spans")))]),
            ),
        ])
    }));
    // Stable sort: equal timestamps keep parent slices (longer duration)
    // ahead of their children, which Perfetto's nesting relies on.
    slices.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    trace_events.extend(slices.into_iter().map(|(_, _, j)| j));

    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::str("ns")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent {
                at: SimTime::from_nanos(100),
                node: 0,
                kind: ObsEventKind::LockQueued {
                    object: 3,
                    txn: 7,
                    mode: ObsLockMode::Write,
                    waiters: 2,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(110),
                node: 0,
                kind: ObsEventKind::LockBlocked {
                    object: 3,
                    txn: 7,
                    holders: vec![4],
                    retainers: vec![5],
                    queued_behind: vec![1],
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(150),
                node: 1,
                kind: ObsEventKind::PhaseEnter {
                    family: 2,
                    phase: ObsPhase::LockWait,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(150),
                node: 1,
                kind: ObsEventKind::SpanOpen {
                    family: 2,
                    txn: 11,
                    parent: None,
                    object: 3,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(160),
                node: 1,
                kind: ObsEventKind::SpanOpen {
                    family: 2,
                    txn: 12,
                    parent: Some(11),
                    object: 4,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(200),
                node: 1,
                kind: ObsEventKind::PhaseEnter {
                    family: 2,
                    phase: ObsPhase::Running,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(210),
                node: 1,
                kind: ObsEventKind::GatherBatch {
                    family: 2,
                    object: 3,
                    source: 0,
                    pages: 2,
                    bytes: 8 * 1024,
                    delay_ns: 1_500,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(220),
                node: 1,
                kind: ObsEventKind::DemandFetch {
                    family: 2,
                    object: 3,
                    page: 5,
                    source: 2,
                    bytes: 4_096 + 64,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(230),
                node: 1,
                kind: ObsEventKind::SpanClose {
                    family: 2,
                    txn: 12,
                    outcome: SpanOutcome::PreCommit,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(250),
                node: 0,
                kind: ObsEventKind::Deadlock {
                    cycle: vec![1, 5, 9],
                    victim: 9,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(300),
                node: 1,
                kind: ObsEventKind::GrantPlan {
                    family: 2,
                    object: 3,
                    predicted: vec![0, 1, 4],
                    actual_reads: vec![0, 1],
                    actual_writes: vec![4, 5],
                    planned_pages: 3,
                    sources: 2,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(300),
                node: 1,
                kind: ObsEventKind::PredictionSample {
                    class: 1,
                    method: 2,
                    predicted: 3,
                    actual: 4,
                    true_positives: 3,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(305),
                node: 1,
                kind: ObsEventKind::DemandBatch {
                    family: 2,
                    object: 3,
                    source: 2,
                    pages: vec![5, 6],
                    bytes: 2 * 4_096 + 64,
                    delay_ns: 2_000,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(310),
                node: 1,
                kind: ObsEventKind::ProfileUpdate {
                    class: 1,
                    method: 2,
                    expanded: vec![5],
                    shrunk: vec![1, 4],
                    predicted: 2,
                    observations: 9,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(320),
                node: 0,
                kind: ObsEventKind::Retransmit {
                    dst: 3,
                    attempts: 3,
                    duplicates: 1,
                    wait_ns: 200_000,
                    family: None,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(340),
                node: 3,
                kind: ObsEventKind::NodeCrashed {
                    aborted_families: 2,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(350),
                node: 3,
                kind: ObsEventKind::NodeRecovered { outage_ns: 10 },
            },
            ObsEvent {
                at: SimTime::from_nanos(360),
                node: 0,
                kind: ObsEventKind::LockTimeout {
                    object: 3,
                    txn: 7,
                    waited_ns: 50_000,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(370),
                node: 0,
                kind: ObsEventKind::PageMapRepaired {
                    object: 3,
                    page: 4,
                    from: 3,
                    to: 1,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(380),
                node: 0,
                kind: ObsEventKind::StateSample {
                    queue_depth: 12,
                    locks_held: 3,
                    locks_retained: 1,
                    locks_waiting: 2,
                    inflight_messages: 4,
                    blocked_families: 1,
                    cache_bytes: vec![4096, 0, 8192, 1024],
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(395),
                node: 1,
                kind: ObsEventKind::SpanClose {
                    family: 2,
                    txn: 11,
                    outcome: SpanOutcome::Commit,
                },
            },
            ObsEvent {
                at: SimTime::from_nanos(400),
                node: 1,
                kind: ObsEventKind::PhaseEnter {
                    family: 2,
                    phase: ObsPhase::Committed,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let events = sample_events();
        let text = jsonl_encode(&events);
        let back = jsonl_decode(&text).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(jsonl_decode("{\"kind\": \"nope\"}\n").is_err());
        assert!(jsonl_decode("not json\n").is_err());
        let missing_field = "{\"at\":1,\"node\":0,\"kind\":\"phase_enter\",\"family\":1}";
        assert!(jsonl_decode(missing_field).is_err());
    }

    #[test]
    fn chrome_trace_has_monotonic_ts_and_slices() {
        let trace = chrome_trace(&sample_events());
        let events = trace.get("traceEvents").unwrap().as_array().unwrap();
        let mut last = f64::NEG_INFINITY;
        let mut phase_slices = 0;
        let mut span_slices = 0;
        for e in events {
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last, "ts went backwards: {ts} < {last}");
            last = ts;
            if e.get("ph").unwrap().as_str() == Some("X") {
                assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
                match e.get("cat").unwrap().as_str() {
                    Some("phase") => phase_slices += 1,
                    Some("span") => span_slices += 1,
                    other => panic!("unexpected slice category {other:?}"),
                }
            }
        }
        // lock_wait [150,200) and running [200,400) for family 2.
        assert_eq!(phase_slices, 2);
        // Root span T11 and child span T12.
        assert_eq!(span_slices, 2);
        // The whole document survives a JSON re-parse.
        assert_eq!(Json::parse(&trace.render_pretty()).unwrap(), trace);
    }

    #[test]
    fn chrome_trace_emits_counter_tracks_for_state_samples() {
        let trace = chrome_trace(&sample_events());
        let events = trace.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        // Three global counter tracks plus one cache-bytes track per node.
        assert_eq!(counters.len(), 3 + 4);
        let queue = counters
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("sim queue depth"))
            .expect("queue-depth counter");
        assert_eq!(
            queue
                .get("args")
                .and_then(|a| a.get("events"))
                .and_then(Json::as_u64),
            Some(12)
        );
        let lock = counters
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("lock table"))
            .expect("lock-table counter");
        let args = lock.get("args").unwrap();
        assert_eq!(args.get("held").and_then(Json::as_u64), Some(3));
        assert_eq!(args.get("waiting").and_then(Json::as_u64), Some(2));
        // Per-node cache-bytes counters carry the node id as the pid.
        let cache2 = counters
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("cache bytes")
                    && e.get("pid").and_then(Json::as_u64) == Some(2)
            })
            .expect("node-2 cache counter");
        assert_eq!(
            cache2
                .get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(Json::as_u64),
            Some(8192)
        );
    }

    #[test]
    fn chrome_trace_spans_nest_and_ride_their_own_rows() {
        let trace = chrome_trace(&sample_events());
        let events = trace.get("traceEvents").unwrap().as_array().unwrap();
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("span"))
            .collect();
        assert_eq!(spans.len(), 2);
        // Parent slice comes first (stable sort puts the longer-duration
        // slice ahead on ties) and fully contains the child slice.
        let (p, c) = (&spans[0], &spans[1]);
        assert!(p.get("name").unwrap().as_str().unwrap().contains("T11"));
        assert!(c.get("name").unwrap().as_str().unwrap().contains("T12"));
        let (pts, pdur) = (
            p.get("ts").unwrap().as_f64().unwrap(),
            p.get("dur").unwrap().as_f64().unwrap(),
        );
        let (cts, cdur) = (
            c.get("ts").unwrap().as_f64().unwrap(),
            c.get("dur").unwrap().as_f64().unwrap(),
        );
        assert!(pts <= cts && cts + cdur <= pts + pdur);
        // Span rows live on a separate tid from the phase rows.
        let tid = p.get("tid").unwrap().as_u64().unwrap();
        assert_eq!(tid, SPAN_ROW_OFFSET + 2);
        // The critical-path overlay produced at least one flow pair.
        let flows = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("critical_path"))
            .count();
        assert!(flows >= 2, "expected flow arrows, got {flows}");
    }
}
