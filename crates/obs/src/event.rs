//! Structured, sim-time-stamped observability events.
//!
//! Events deliberately carry *primitive* identifiers (`u64` transaction
//! ids, `u32` node/object indices, `u16` page indices) rather than the
//! newtypes from the `txn`/`mem` crates: the probe layer sits *below*
//! those crates in the dependency graph so that the lock table itself can
//! emit events without a dependency cycle. The emitting site is
//! responsible for unwrapping its ids (`TxnId::get()`, `ObjectId::index()`,
//! …) — a one-way, lossless projection.

use lotec_sim::SimTime;

/// Lock mode as seen by the probe layer (mirrors `lotec_txn::LockMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsLockMode {
    /// Shared read lock.
    Read,
    /// Exclusive write lock.
    Write,
}

impl ObsLockMode {
    /// Stable wire name.
    pub const fn name(self) -> &'static str {
        match self {
            ObsLockMode::Read => "read",
            ObsLockMode::Write => "write",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "read" => Some(ObsLockMode::Read),
            "write" => Some(ObsLockMode::Write),
            _ => None,
        }
    }
}

/// Why a lock left a holder's possession.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseCause {
    /// Root commit: the family finished and the lock is free for others.
    RootCommit,
    /// Abort: the holder (sub)transaction rolled back.
    Abort,
}

impl ReleaseCause {
    /// Stable wire name.
    pub const fn name(self) -> &'static str {
        match self {
            ReleaseCause::RootCommit => "root_commit",
            ReleaseCause::Abort => "abort",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "root_commit" => Some(ReleaseCause::RootCommit),
            "abort" => Some(ReleaseCause::Abort),
            _ => None,
        }
    }
}

/// How a [sub-]transaction span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Sub-transaction pre-committed; its parent inherited its locks
    /// (Algorithm 4.3, rule 3).
    PreCommit,
    /// Root commit: the family finished.
    Commit,
    /// The transaction aborted (sub-transaction fault, deadlock victim,
    /// programmed root fault, …).
    Abort,
    /// The transaction was aborted because its executing node crashed.
    CrashAbort,
}

impl SpanOutcome {
    /// Stable wire name.
    pub const fn name(self) -> &'static str {
        match self {
            SpanOutcome::PreCommit => "pre_commit",
            SpanOutcome::Commit => "commit",
            SpanOutcome::Abort => "abort",
            SpanOutcome::CrashAbort => "crash_abort",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "pre_commit" => Some(SpanOutcome::PreCommit),
            "commit" => Some(SpanOutcome::Commit),
            "abort" => Some(SpanOutcome::Abort),
            "crash_abort" => Some(SpanOutcome::CrashAbort),
            _ => None,
        }
    }
}

/// Coarse family phase, the unit of the latency breakdown and of the
/// Perfetto slices (one slice per contiguous stay in a phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsPhase {
    /// Waiting for a lock grant (queued at the GDO or grant in flight).
    LockWait,
    /// Waiting for page transfers (planned gather or demand fetches).
    TransferWait,
    /// Executing method bodies (compute).
    Running,
    /// Backing off before a restart after a family abort.
    Backoff,
    /// Root committed (terminal).
    Committed,
    /// Permanently failed after exhausting restarts (terminal).
    Failed,
}

impl ObsPhase {
    /// Stable wire name (also the Perfetto slice name).
    pub const fn name(self) -> &'static str {
        match self {
            ObsPhase::LockWait => "lock_wait",
            ObsPhase::TransferWait => "transfer_wait",
            ObsPhase::Running => "running",
            ObsPhase::Backoff => "backoff",
            ObsPhase::Committed => "committed",
            ObsPhase::Failed => "failed",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "lock_wait" => Some(ObsPhase::LockWait),
            "transfer_wait" => Some(ObsPhase::TransferWait),
            "running" => Some(ObsPhase::Running),
            "backoff" => Some(ObsPhase::Backoff),
            "committed" => Some(ObsPhase::Committed),
            "failed" => Some(ObsPhase::Failed),
            _ => None,
        }
    }

    /// True for phases a family never leaves.
    pub const fn is_terminal(self) -> bool {
        matches!(self, ObsPhase::Committed | ObsPhase::Failed)
    }
}

/// What happened. See module docs for the id conventions.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEventKind {
    /// A lock request had to queue behind conflicting holders at the GDO.
    LockQueued {
        /// Object index.
        object: u32,
        /// Requesting (sub)transaction id.
        txn: u64,
        /// Requested mode.
        mode: ObsLockMode,
        /// Queue depth *including* this request.
        waiters: u32,
    },
    /// A lock was granted (immediately or after queuing).
    LockGranted {
        /// Object index.
        object: u32,
        /// Grantee (sub)transaction id.
        txn: u64,
        /// Granted mode.
        mode: ObsLockMode,
        /// False when the grant was served locally from a retainer
        /// (Algorithm 4.2), true when the GDO had to be consulted.
        global: bool,
        /// Number of page-holding sites named in the grant.
        holders: u32,
    },
    /// A pre-committing subtransaction's lock was inherited by its parent
    /// (lock retention, Algorithm 4.3).
    LockRetained {
        /// Object index.
        object: u32,
        /// The pre-committed child that held the lock.
        txn: u64,
        /// The parent that now retains it.
        parent: u64,
    },
    /// Waits-for provenance for a queued request: who exactly blocked it.
    /// Emitted alongside `LockQueued` by the lock table, which is the only
    /// layer that can see the holder/retainer/queue state at queue time.
    LockBlocked {
        /// Object index.
        object: u32,
        /// The blocked (sub)transaction id.
        txn: u64,
        /// Transactions holding the lock in a conflicting mode.
        holders: Vec<u64>,
        /// Foreign retainers blocking the request (retained locks of
        /// non-ancestors, Algorithm 4.1 rule 1).
        retainers: Vec<u64>,
        /// Root transactions of families queued ahead (FIFO fairness).
        queued_behind: Vec<u64>,
    },
    /// A lock left the table for good.
    LockReleased {
        /// Object index.
        object: u32,
        /// The releasing (sub)transaction id.
        txn: u64,
        /// Why it was released.
        cause: ReleaseCause,
    },
    /// The GDO detected a waits-for cycle and chose a victim.
    Deadlock {
        /// Root transaction ids forming the cycle, in detection order.
        cycle: Vec<u64>,
        /// The victim root (youngest in the cycle).
        victim: u64,
    },
    /// A [sub-]transaction started: a span opened. Parent links mirror the
    /// O2PL transaction tree, so replaying `SpanOpen`/`SpanClose` events
    /// reconstructs the nesting structure exactly.
    SpanOpen {
        /// Family index (workload order).
        family: u64,
        /// The transaction executing this invocation.
        txn: u64,
        /// Parent transaction; `None` for the family root.
        parent: Option<u64>,
        /// Receiver object of the invocation.
        object: u32,
    },
    /// A [sub-]transaction ended: its span closed.
    SpanClose {
        /// Family index.
        family: u64,
        /// The transaction whose span closes.
        txn: u64,
        /// How it ended.
        outcome: SpanOutcome,
    },
    /// A family entered a new phase.
    PhaseEnter {
        /// Family index (workload order).
        family: u64,
        /// The phase being entered.
        phase: ObsPhase,
    },
    /// A subtransaction aborted without killing its family.
    SubAbort {
        /// Family index.
        family: u64,
        /// The aborting subtransaction.
        txn: u64,
        /// Locks it freed at the GDO.
        released: u32,
    },
    /// A family-level abort scheduled a restart.
    Restart {
        /// Family index.
        family: u64,
        /// Restart attempt number (1 = first retry).
        attempt: u32,
        /// Backoff delay before the retry, in sim nanoseconds.
        backoff_ns: u64,
    },
    /// The transfer planner resolved one grant: what the compile-time
    /// analysis predicted vs. what the method body actually touched.
    GrantPlan {
        /// Family index.
        family: u64,
        /// Object index.
        object: u32,
        /// Predicted page indices (compile-time estimate).
        predicted: Vec<u16>,
        /// Pages the method actually read.
        actual_reads: Vec<u16>,
        /// Pages the method actually wrote.
        actual_writes: Vec<u16>,
        /// Pages the planner decided to move now.
        planned_pages: u32,
        /// Distinct source sites in the gather (fan-out).
        sources: u32,
    },
    /// One source's batch of the gather a grant triggered (Algorithm 4.5):
    /// the page-request/page-transfer round trip to a single site. The
    /// slowest batch of a grant determines the transfer-wait phase.
    GatherBatch {
        /// Family index.
        family: u64,
        /// Object index.
        object: u32,
        /// Site the batch travels from.
        source: u32,
        /// Pages in the batch.
        pages: u32,
        /// Transfer-message bytes of the batch.
        bytes: u64,
        /// Round-trip delay of the batch (request + transfer), in sim
        /// nanoseconds.
        delay_ns: u64,
    },
    /// Adaptive prediction: one grant's prediction quality sample,
    /// attributed to the (class, method) whose profile produced it.
    /// Emitted alongside `GrantPlan` for prediction-based protocols; the
    /// per-method precision/recall time series aggregate these.
    PredictionSample {
        /// Class index.
        class: u32,
        /// Method index within the class.
        method: u32,
        /// Predicted page count.
        predicted: u32,
        /// Actually touched page count.
        actual: u32,
        /// Pages both predicted and touched.
        true_positives: u32,
    },
    /// Adaptive prediction: a pre-commit observation changed a
    /// (class, method) profile — pages were added (under-prediction
    /// repair) and/or dropped (confidence window elapsed).
    ProfileUpdate {
        /// Class index.
        class: u32,
        /// Method index within the class.
        method: u32,
        /// Pages added to the prediction.
        expanded: Vec<u16>,
        /// Pages dropped from the prediction.
        shrunk: Vec<u16>,
        /// Size of the prediction after the update.
        predicted: u32,
        /// Observations fed to this profile so far.
        observations: u64,
    },
    /// Adaptive prediction: same-phase demand fetches to one source were
    /// coalesced into a single request/transfer round trip.
    DemandBatch {
        /// Family index.
        family: u64,
        /// Object index.
        object: u32,
        /// Site the pages are fetched from.
        source: u32,
        /// The missed pages, in page order.
        pages: Vec<u16>,
        /// Transfer-message bytes of the batch.
        bytes: u64,
        /// Round-trip delay of the batch, in sim nanoseconds.
        delay_ns: u64,
    },
    /// A page miss during compute forced a synchronous demand fetch.
    DemandFetch {
        /// Family index.
        family: u64,
        /// Object index.
        object: u32,
        /// The missed page.
        page: u16,
        /// Site the page is fetched from.
        source: u32,
        /// Transfer-message bytes of the fetched page.
        bytes: u64,
    },
    /// Fault injection: a message needed retransmissions (or duplicate
    /// copies arrived). Emitted by the sending site.
    Retransmit {
        /// Destination site.
        dst: u32,
        /// Total transmission attempts, including the successful one.
        attempts: u32,
        /// Duplicate copies delivered alongside the surviving attempt.
        duplicates: u32,
        /// Sender idle time spent waiting out RTOs, in sim nanoseconds.
        wait_ns: u64,
        /// Family whose critical path the stall lands on, when the message
        /// was latency-critical for one.
        family: Option<u64>,
    },
    /// Fault injection: a node crashed (the event's `node` is the
    /// casualty).
    NodeCrashed {
        /// In-flight families that were crash-aborted with it.
        aborted_families: u32,
    },
    /// Fault injection: a crashed node came back up with cold caches.
    NodeRecovered {
        /// Length of the outage, in sim nanoseconds.
        outage_ns: u64,
    },
    /// Fault injection: a queued lock request waited past the timeout and
    /// was cancelled and requeued at the tail.
    LockTimeout {
        /// Object index.
        object: u32,
        /// The waiting (sub)transaction id.
        txn: u64,
        /// How long it had been queued, in sim nanoseconds.
        waited_ns: u64,
    },
    /// Periodic sim-state gauge sample from the engine's state sampler
    /// (enabled by `state_sample_interval`). Samples are emitted inline by
    /// the run loop at fixed sim-time boundaries — never as scheduled sim
    /// events — so enabling them cannot perturb the simulation. The
    /// event's `node` is always 0; per-node data rides in `cache_bytes`.
    StateSample {
        /// Events pending in the future-event list.
        queue_depth: u64,
        /// Lock-table occupancy: holder records across all entries.
        locks_held: u32,
        /// Lock-table occupancy: retained-lock records across all entries.
        locks_retained: u32,
        /// Lock-table occupancy: queued (waiting) requests.
        locks_waiting: u32,
        /// Modeled messages in flight: grant/fetch round trips a family is
        /// currently waiting on.
        inflight_messages: u32,
        /// Families blocked waiting for a lock grant.
        blocked_families: u32,
        /// Cached bytes per node, indexed by node id.
        cache_bytes: Vec<u64>,
    },
    /// Fault injection recovery: a page whose owner crashed was repointed
    /// in the GDO page map to a surviving same-version copy.
    PageMapRepaired {
        /// Object index.
        object: u32,
        /// The repaired page.
        page: u16,
        /// The crashed former owner.
        from: u32,
        /// The surviving copy now serving the page.
        to: u32,
    },
}

impl ObsEventKind {
    /// Stable wire name for the event kind.
    pub const fn name(&self) -> &'static str {
        match self {
            ObsEventKind::LockQueued { .. } => "lock_queued",
            ObsEventKind::LockGranted { .. } => "lock_granted",
            ObsEventKind::LockRetained { .. } => "lock_retained",
            ObsEventKind::LockBlocked { .. } => "lock_blocked",
            ObsEventKind::LockReleased { .. } => "lock_released",
            ObsEventKind::Deadlock { .. } => "deadlock",
            ObsEventKind::SpanOpen { .. } => "span_open",
            ObsEventKind::SpanClose { .. } => "span_close",
            ObsEventKind::PhaseEnter { .. } => "phase_enter",
            ObsEventKind::SubAbort { .. } => "sub_abort",
            ObsEventKind::Restart { .. } => "restart",
            ObsEventKind::GrantPlan { .. } => "grant_plan",
            ObsEventKind::GatherBatch { .. } => "gather_batch",
            ObsEventKind::PredictionSample { .. } => "prediction_sample",
            ObsEventKind::ProfileUpdate { .. } => "profile_update",
            ObsEventKind::DemandBatch { .. } => "demand_batch",
            ObsEventKind::DemandFetch { .. } => "demand_fetch",
            ObsEventKind::Retransmit { .. } => "retransmit",
            ObsEventKind::NodeCrashed { .. } => "node_crashed",
            ObsEventKind::NodeRecovered { .. } => "node_recovered",
            ObsEventKind::StateSample { .. } => "state_sample",
            ObsEventKind::LockTimeout { .. } => "lock_timeout",
            ObsEventKind::PageMapRepaired { .. } => "page_map_repaired",
        }
    }
}

/// One observability event: where and when, plus what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Site the event occurred at.
    pub node: u32,
    /// The event payload.
    pub kind: ObsEventKind,
}
