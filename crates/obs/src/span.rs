//! Span trees: the causal view of a recorded trace.
//!
//! Every [sub-]transaction invocation opens a span (`SpanOpen`) and closes
//! it with an outcome (`SpanClose`); parent links mirror the O2PL
//! transaction tree exactly, so replaying the two events reconstructs the
//! nesting structure of every family. Spans carry *typed annotations* —
//! lock waits with full waits-for provenance (who held, who retained, who
//! was queued ahead), gather batches and demand fetches with byte counts
//! and source sites, and retransmit stalls — attached to the span that was
//! executing when the underlying event fired.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lotec_sim::{SimDuration, SimTime};

use crate::event::{ObsEvent, ObsEventKind, SpanOutcome};

/// A typed annotation attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanAnnotation {
    /// The span's transaction queued for a lock and (possibly) waited.
    ///
    /// `until` is `None` while the wait is unresolved at trace end.
    LockWait {
        /// Object being locked.
        object: u32,
        /// When the request queued.
        since: SimTime,
        /// When the lock was granted, if it was.
        until: Option<SimTime>,
        /// Transactions holding the lock in a conflicting mode.
        holders: Vec<u64>,
        /// Foreign retainers blocking the request (Algorithm 4.1 rule 1).
        retainers: Vec<u64>,
        /// Family roots queued ahead (FIFO fairness).
        queued_behind: Vec<u64>,
    },
    /// One source site's batch of a planned gather (Algorithm 4.5).
    Gather {
        /// Object whose pages move.
        object: u32,
        /// Source site of the batch.
        source: u32,
        /// Pages in the batch.
        pages: u32,
        /// Transfer-message bytes.
        bytes: u64,
        /// Round-trip delay of the batch, in sim nanoseconds.
        delay_ns: u64,
        /// When the batch was issued.
        at: SimTime,
    },
    /// A mispredicted page forced a synchronous demand fetch.
    DemandFetch {
        /// Object of the missed page.
        object: u32,
        /// The missed page.
        page: u16,
        /// Site the page came from.
        source: u32,
        /// Transfer-message bytes.
        bytes: u64,
        /// When the miss occurred.
        at: SimTime,
    },
    /// A latency-critical message needed retransmissions.
    RetransmitWait {
        /// Destination site of the lossy message.
        dst: u32,
        /// Total transmission attempts.
        attempts: u32,
        /// Sender idle time waiting out RTOs, in sim nanoseconds.
        wait_ns: u64,
        /// When the stall was accounted.
        at: SimTime,
    },
}

impl SpanAnnotation {
    /// Short kind label used in rendered trees.
    pub fn label(&self) -> &'static str {
        match self {
            SpanAnnotation::LockWait { .. } => "lock-wait",
            SpanAnnotation::Gather { .. } => "gather",
            SpanAnnotation::DemandFetch { .. } => "demand-fetch",
            SpanAnnotation::RetransmitWait { .. } => "retransmit-wait",
        }
    }
}

/// One [sub-]transaction's span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The transaction this span belongs to.
    pub txn: u64,
    /// Family index (workload order).
    pub family: u64,
    /// Parent transaction; `None` for family roots.
    pub parent: Option<u64>,
    /// Receiver object of the invocation.
    pub object: u32,
    /// Executing node.
    pub node: u32,
    /// When the span opened.
    pub open: SimTime,
    /// When the span closed; `None` if still open at trace end.
    pub close: Option<SimTime>,
    /// How the span ended, when it did.
    pub outcome: Option<SpanOutcome>,
    /// Child spans, in open order.
    pub children: Vec<u64>,
    /// Typed annotations, in event order.
    pub annotations: Vec<SpanAnnotation>,
}

impl Span {
    /// Span duration; open spans are measured up to `end`.
    pub fn duration(&self, end: SimTime) -> SimDuration {
        self.close
            .unwrap_or(end)
            .saturating_duration_since(self.open)
    }
}

/// The span forest of a trace: one tree per (re)started family root.
///
/// Built by replaying `SpanOpen`/`SpanClose` events; annotation-bearing
/// events (`LockQueued`/`LockBlocked`/`LockGranted`, `GatherBatch`,
/// `DemandFetch`, family-attributed `Retransmit`) attach to the span that
/// was innermost-open for their transaction or family at that moment.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    spans: BTreeMap<u64, Span>,
    roots: Vec<u64>,
    end: SimTime,
}

impl SpanTree {
    /// Replays an event stream into a span forest.
    pub fn build(events: &[ObsEvent]) -> Self {
        let mut tree = SpanTree::default();
        // Innermost-open span per family (invocation stack).
        let mut stack: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        // txn -> index of its unresolved LockWait annotation.
        let mut pending_lock: BTreeMap<u64, usize> = BTreeMap::new();
        for event in events {
            tree.end = tree.end.max(event.at);
            match &event.kind {
                ObsEventKind::SpanOpen {
                    family,
                    txn,
                    parent,
                    object,
                } => {
                    let span = Span {
                        txn: *txn,
                        family: *family,
                        parent: *parent,
                        object: *object,
                        node: event.node,
                        open: event.at,
                        close: None,
                        outcome: None,
                        children: Vec::new(),
                        annotations: Vec::new(),
                    };
                    match parent.and_then(|p| tree.spans.get_mut(&p)) {
                        Some(parent_span) => parent_span.children.push(*txn),
                        None => tree.roots.push(*txn),
                    }
                    tree.spans.insert(*txn, span);
                    stack.entry(*family).or_default().push(*txn);
                }
                ObsEventKind::SpanClose { txn, outcome, .. } => {
                    if let Some(span) = tree.spans.get_mut(txn) {
                        span.close = Some(event.at);
                        span.outcome = Some(*outcome);
                        if let Some(frames) = stack.get_mut(&span.family) {
                            frames.retain(|t| t != txn);
                        }
                    }
                    pending_lock.remove(txn);
                }
                ObsEventKind::LockQueued { object, txn, .. } => {
                    if let Some(span) = tree.spans.get_mut(txn) {
                        pending_lock.insert(*txn, span.annotations.len());
                        span.annotations.push(SpanAnnotation::LockWait {
                            object: *object,
                            since: event.at,
                            until: None,
                            holders: Vec::new(),
                            retainers: Vec::new(),
                            queued_behind: Vec::new(),
                        });
                    }
                }
                ObsEventKind::LockBlocked {
                    txn,
                    holders,
                    retainers,
                    queued_behind,
                    ..
                } => {
                    if let Some((span, &idx)) = tree.spans.get_mut(txn).zip(pending_lock.get(txn)) {
                        if let Some(SpanAnnotation::LockWait {
                            holders: h,
                            retainers: r,
                            queued_behind: q,
                            ..
                        }) = span.annotations.get_mut(idx)
                        {
                            h.clone_from(holders);
                            r.clone_from(retainers);
                            q.clone_from(queued_behind);
                        }
                    }
                }
                ObsEventKind::LockGranted { txn, .. } => {
                    if let Some((span, idx)) = tree.spans.get_mut(txn).zip(pending_lock.remove(txn))
                    {
                        if let Some(SpanAnnotation::LockWait { until, .. }) =
                            span.annotations.get_mut(idx)
                        {
                            *until = Some(event.at);
                        }
                    }
                }
                ObsEventKind::GatherBatch {
                    family,
                    object,
                    source,
                    pages,
                    bytes,
                    delay_ns,
                } => {
                    if let Some(span) = Self::innermost(&mut tree.spans, &stack, *family) {
                        span.annotations.push(SpanAnnotation::Gather {
                            object: *object,
                            source: *source,
                            pages: *pages,
                            bytes: *bytes,
                            delay_ns: *delay_ns,
                            at: event.at,
                        });
                    }
                }
                ObsEventKind::DemandFetch {
                    family,
                    object,
                    page,
                    source,
                    bytes,
                } => {
                    if let Some(span) = Self::innermost(&mut tree.spans, &stack, *family) {
                        span.annotations.push(SpanAnnotation::DemandFetch {
                            object: *object,
                            page: *page,
                            source: *source,
                            bytes: *bytes,
                            at: event.at,
                        });
                    }
                }
                ObsEventKind::Retransmit {
                    dst,
                    attempts,
                    wait_ns,
                    family: Some(family),
                    ..
                } => {
                    if let Some(span) = Self::innermost(&mut tree.spans, &stack, *family) {
                        span.annotations.push(SpanAnnotation::RetransmitWait {
                            dst: *dst,
                            attempts: *attempts,
                            wait_ns: *wait_ns,
                            at: event.at,
                        });
                    }
                }
                _ => {}
            }
        }
        tree
    }

    fn innermost<'t>(
        spans: &'t mut BTreeMap<u64, Span>,
        stack: &BTreeMap<u64, Vec<u64>>,
        family: u64,
    ) -> Option<&'t mut Span> {
        let txn = stack.get(&family)?.last()?;
        spans.get_mut(txn)
    }

    /// Root spans (no parent), in open order. A family that restarted has
    /// one root span per attempt.
    pub fn roots(&self) -> &[u64] {
        &self.roots
    }

    /// Looks up a span by transaction id.
    pub fn get(&self, txn: u64) -> Option<&Span> {
        self.spans.get(&txn)
    }

    /// All spans, in transaction-id order.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.values()
    }

    /// Number of spans in the forest.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the trace contained no span events.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Timestamp of the last event seen while building.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Root spans of one family, in open order (one per attempt).
    pub fn family_roots(&self, family: u64) -> impl Iterator<Item = &Span> {
        self.roots
            .iter()
            .filter_map(move |t| self.spans.get(t))
            .filter(move |s| s.family == family)
    }

    /// Nesting depth of a span (roots are depth 0).
    pub fn depth(&self, txn: u64) -> usize {
        let mut depth = 0;
        let mut cur = self.spans.get(&txn);
        while let Some(span) = cur {
            match span.parent {
                Some(p) => {
                    depth += 1;
                    cur = self.spans.get(&p);
                }
                None => break,
            }
        }
        depth
    }

    /// Renders the whole forest as an indented ASCII tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &root in &self.roots {
            self.render_span(&mut out, root, 0);
        }
        out
    }

    fn render_span(&self, out: &mut String, txn: u64, depth: usize) {
        let Some(span) = self.spans.get(&txn) else {
            return;
        };
        let outcome = span.outcome.map_or("open", SpanOutcome::name);
        let _ = write!(
            out,
            "{:indent$}T{} O{} [{}] {}ns",
            "",
            span.txn,
            span.object,
            outcome,
            span.duration(self.end).as_nanos(),
            indent = depth * 2,
        );
        if depth == 0 {
            let _ = write!(out, "  (family {}, node {})", span.family, span.node);
        }
        for ann in &span.annotations {
            let _ = match ann {
                SpanAnnotation::LockWait {
                    object,
                    since,
                    until,
                    holders,
                    retainers,
                    queued_behind,
                } => {
                    let waited = until
                        .map(|u| u.saturating_duration_since(*since).as_nanos())
                        .unwrap_or(0);
                    write!(
                        out,
                        "  lock-wait(O{object} {waited}ns h={} r={} q={})",
                        holders.len(),
                        retainers.len(),
                        queued_behind.len()
                    )
                }
                SpanAnnotation::Gather {
                    object,
                    source,
                    pages,
                    bytes,
                    ..
                } => write!(
                    out,
                    "  gather(O{object}\u{2190}n{source} {pages}p {bytes}B)"
                ),
                SpanAnnotation::DemandFetch {
                    object,
                    page,
                    source,
                    ..
                } => write!(out, "  demand(O{object}/p{page}\u{2190}n{source})"),
                SpanAnnotation::RetransmitWait {
                    attempts, wait_ns, ..
                } => write!(out, "  retransmit({attempts}x {wait_ns}ns)"),
            };
        }
        out.push('\n');
        for &child in &span.children {
            self.render_span(out, child, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsLockMode;

    fn ev(at: u64, node: u32, kind: ObsEventKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_nanos(at),
            node,
            kind,
        }
    }

    fn sample() -> Vec<ObsEvent> {
        vec![
            ev(
                10,
                1,
                ObsEventKind::SpanOpen {
                    family: 0,
                    txn: 1,
                    parent: None,
                    object: 3,
                },
            ),
            ev(
                20,
                1,
                ObsEventKind::SpanOpen {
                    family: 0,
                    txn: 2,
                    parent: Some(1),
                    object: 4,
                },
            ),
            ev(
                25,
                1,
                ObsEventKind::LockQueued {
                    object: 4,
                    txn: 2,
                    mode: ObsLockMode::Write,
                    waiters: 2,
                },
            ),
            ev(
                25,
                1,
                ObsEventKind::LockBlocked {
                    object: 4,
                    txn: 2,
                    holders: vec![9],
                    retainers: vec![7],
                    queued_behind: vec![],
                },
            ),
            ev(
                60,
                1,
                ObsEventKind::LockGranted {
                    object: 4,
                    txn: 2,
                    mode: ObsLockMode::Write,
                    global: true,
                    holders: 1,
                },
            ),
            ev(
                65,
                1,
                ObsEventKind::GatherBatch {
                    family: 0,
                    object: 4,
                    source: 2,
                    pages: 3,
                    bytes: 12_288,
                    delay_ns: 900,
                },
            ),
            ev(
                70,
                1,
                ObsEventKind::Retransmit {
                    dst: 2,
                    attempts: 2,
                    duplicates: 0,
                    wait_ns: 500,
                    family: Some(0),
                },
            ),
            ev(
                80,
                1,
                ObsEventKind::SpanClose {
                    family: 0,
                    txn: 2,
                    outcome: SpanOutcome::PreCommit,
                },
            ),
            ev(
                85,
                1,
                ObsEventKind::DemandFetch {
                    family: 0,
                    object: 3,
                    page: 1,
                    source: 0,
                    bytes: 4_160,
                },
            ),
            ev(
                100,
                1,
                ObsEventKind::SpanClose {
                    family: 0,
                    txn: 1,
                    outcome: SpanOutcome::Commit,
                },
            ),
        ]
    }

    #[test]
    fn tree_mirrors_nesting_and_outcomes() {
        let tree = SpanTree::build(&sample());
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.roots(), &[1]);
        let root = tree.get(1).unwrap();
        assert_eq!(root.children, vec![2]);
        assert_eq!(root.outcome, Some(SpanOutcome::Commit));
        assert_eq!(root.duration(tree.end()).as_nanos(), 90);
        let child = tree.get(2).unwrap();
        assert_eq!(child.parent, Some(1));
        assert_eq!(child.outcome, Some(SpanOutcome::PreCommit));
        assert_eq!(tree.depth(2), 1);
        assert_eq!(tree.family_roots(0).count(), 1);
    }

    #[test]
    fn annotations_attach_to_the_causing_span() {
        let tree = SpanTree::build(&sample());
        let child = tree.get(2).unwrap();
        // Lock wait with provenance, resolved at grant time.
        match &child.annotations[0] {
            SpanAnnotation::LockWait {
                object,
                since,
                until,
                holders,
                retainers,
                ..
            } => {
                assert_eq!(*object, 4);
                assert_eq!(since.as_nanos(), 25);
                assert_eq!(until.unwrap().as_nanos(), 60);
                assert_eq!(holders, &[9]);
                assert_eq!(retainers, &[7]);
            }
            other => panic!("expected lock wait, got {other:?}"),
        }
        // Gather and retransmit fired while T2 was innermost.
        assert_eq!(child.annotations[1].label(), "gather");
        assert_eq!(child.annotations[2].label(), "retransmit-wait");
        // The demand fetch after T2 closed lands on the root.
        let root = tree.get(1).unwrap();
        assert_eq!(root.annotations.len(), 1);
        assert_eq!(root.annotations[0].label(), "demand-fetch");
    }

    #[test]
    fn render_shows_structure() {
        let tree = SpanTree::build(&sample());
        let text = tree.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("T1 O3 [commit]"));
        assert!(lines[1].starts_with("  T2 O4 [pre_commit]"));
        assert!(lines[1].contains("lock-wait(O4 35ns"));
    }
}
