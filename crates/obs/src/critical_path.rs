//! Per-root critical-path profiles.
//!
//! For every family that commits, the profiler walks its phase segments in
//! trace order and labels each with the *cause* that made it take as long
//! as it did: a lock-wait segment carries the blocking families (from the
//! `LockBlocked` waits-for provenance), a transfer-wait segment carries
//! the slowest gather batch of the grant (the batch that determined the
//! segment, Algorithm 4.5), a compute segment carries its demand fetches,
//! and retransmit stalls are carved out of their enclosing segment into
//! explicit edges. The resulting edge chain tiles the family's
//! arrival-to-commit window — restarted attempts and backoff included —
//! so summing edges reproduces the commit latency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lotec_sim::{SimDuration, SimTime};

use crate::event::{ObsEvent, ObsEventKind, ObsPhase};
use crate::json::Json;
use crate::report::PhaseTimes;

/// Why a critical-path edge took the time it did.
#[derive(Debug, Clone, PartialEq)]
pub enum PathEdgeKind {
    /// Waiting for a lock grant.
    LockWait {
        /// Object being locked, when the segment saw a queue event.
        object: Option<u32>,
        /// Families whose locks blocked this one (deduplicated).
        blockers: Vec<u64>,
    },
    /// Waiting for planned page transfers; carries the slowest batch.
    PageGather {
        /// Object whose pages moved.
        object: u32,
        /// Source site of the slowest batch.
        source: u32,
        /// Pages in the slowest batch.
        pages: u32,
        /// Bytes of the slowest batch.
        bytes: u64,
        /// Total batches in the segment (fan-out).
        batches: u32,
    },
    /// Executing method bodies.
    Compute {
        /// Demand fetches that interrupted the segment.
        demand_fetches: u32,
        /// Bytes moved by those fetches.
        demand_bytes: u64,
    },
    /// Sender idle time waiting out retransmission timeouts.
    RetransmitWait {
        /// Accumulated RTO wait in the segment, in sim nanoseconds.
        wait_ns: u64,
    },
    /// Backing off before a restart.
    Backoff {
        /// Restart attempt the backoff preceded (1 = first retry).
        attempt: u32,
    },
}

impl PathEdgeKind {
    /// Stable kind name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            PathEdgeKind::LockWait { .. } => "lock-wait",
            PathEdgeKind::PageGather { .. } => "page-gather",
            PathEdgeKind::Compute { .. } => "compute",
            PathEdgeKind::RetransmitWait { .. } => "retransmit-wait",
            PathEdgeKind::Backoff { .. } => "backoff",
        }
    }
}

/// One edge of a critical path: a cause and the window it occupied.
#[derive(Debug, Clone, PartialEq)]
pub struct PathEdge {
    /// What determined the edge's latency.
    pub kind: PathEdgeKind,
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
}

impl PathEdge {
    /// Length of the edge's window.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }
}

/// The latency-determining chain of one committed family.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Family index (workload order).
    pub family: u64,
    /// Root transaction of the committing attempt.
    pub root_txn: u64,
    /// First phase entry (family arrival).
    pub start: SimTime,
    /// Commit time.
    pub end: SimTime,
    /// Edge chain, in time order; zero-length segments are elided.
    pub edges: Vec<PathEdge>,
    /// Per-phase self-time over the whole window (retransmit stalls are
    /// booked as backoff, matching the engine's accounting).
    pub self_time: PhaseTimes,
}

impl CriticalPath {
    /// Arrival-to-commit latency.
    pub fn latency(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }

    /// Renders the path as indented human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let st = &self.self_time;
        let _ = writeln!(
            out,
            "family {} (root T{}): {}ns = lock {} | xfer {} | run {} | backoff {}",
            self.family,
            self.root_txn,
            self.latency().as_nanos(),
            st.lock_wait.as_nanos(),
            st.transfer_wait.as_nanos(),
            st.running.as_nanos(),
            st.backoff.as_nanos(),
        );
        for edge in &self.edges {
            let _ = write!(
                out,
                "  {:<15} {:>9}ns",
                edge.kind.name(),
                edge.duration().as_nanos()
            );
            let _ = match &edge.kind {
                PathEdgeKind::LockWait { object, blockers } => {
                    if let Some(o) = object {
                        let _ = write!(out, "  O{o}");
                    }
                    if blockers.is_empty() {
                        Ok(())
                    } else {
                        let list: Vec<String> = blockers.iter().map(|f| format!("F{f}")).collect();
                        write!(out, "  blocked by {}", list.join(","))
                    }
                }
                PathEdgeKind::PageGather {
                    object,
                    source,
                    pages,
                    bytes,
                    batches,
                } => write!(
                    out,
                    "  O{object} \u{2190} node {source} ({pages}p, {bytes}B, {batches} batch(es))"
                ),
                PathEdgeKind::Compute {
                    demand_fetches,
                    demand_bytes,
                } => {
                    if *demand_fetches > 0 {
                        write!(out, "  {demand_fetches} demand fetch(es), {demand_bytes}B")
                    } else {
                        Ok(())
                    }
                }
                PathEdgeKind::RetransmitWait { wait_ns } => write!(out, "  {wait_ns}ns RTO"),
                PathEdgeKind::Backoff { attempt } => write!(out, "  before attempt {attempt}"),
            };
            out.push('\n');
        }
        out
    }

    /// Machine-readable form (used by `BENCH_obs.json`).
    pub fn to_json(&self) -> Json {
        let st = &self.self_time;
        let edges: Vec<Json> = self
            .edges
            .iter()
            .map(|edge| {
                let mut pairs = vec![
                    ("kind", Json::str(edge.kind.name())),
                    ("start_ns", Json::U64(edge.start.as_nanos())),
                    ("end_ns", Json::U64(edge.end.as_nanos())),
                ];
                match &edge.kind {
                    PathEdgeKind::LockWait { object, blockers } => {
                        if let Some(o) = object {
                            pairs.push(("object", Json::U64(*o as u64)));
                        }
                        pairs.push((
                            "blockers",
                            Json::Arr(blockers.iter().map(|&f| Json::U64(f)).collect()),
                        ));
                    }
                    PathEdgeKind::PageGather {
                        object,
                        source,
                        pages,
                        bytes,
                        batches,
                    } => {
                        pairs.push(("object", Json::U64(*object as u64)));
                        pairs.push(("source", Json::U64(*source as u64)));
                        pairs.push(("pages", Json::U64(*pages as u64)));
                        pairs.push(("bytes", Json::U64(*bytes)));
                        pairs.push(("batches", Json::U64(*batches as u64)));
                    }
                    PathEdgeKind::Compute {
                        demand_fetches,
                        demand_bytes,
                    } => {
                        pairs.push(("demand_fetches", Json::U64(*demand_fetches as u64)));
                        pairs.push(("demand_bytes", Json::U64(*demand_bytes)));
                    }
                    PathEdgeKind::RetransmitWait { wait_ns } => {
                        pairs.push(("wait_ns", Json::U64(*wait_ns)));
                    }
                    PathEdgeKind::Backoff { attempt } => {
                        pairs.push(("attempt", Json::U64(*attempt as u64)));
                    }
                }
                Json::obj(pairs)
            })
            .collect();
        Json::obj(vec![
            ("family", Json::U64(self.family)),
            ("root_txn", Json::U64(self.root_txn)),
            ("latency_ns", Json::U64(self.latency().as_nanos())),
            ("lock_wait_ns", Json::U64(st.lock_wait.as_nanos())),
            ("transfer_wait_ns", Json::U64(st.transfer_wait.as_nanos())),
            ("running_ns", Json::U64(st.running.as_nanos())),
            ("backoff_ns", Json::U64(st.backoff.as_nanos())),
            ("edges", Json::Arr(edges)),
        ])
    }
}

#[derive(Default)]
struct FamState {
    open: Option<(ObsPhase, SimTime)>,
    start: Option<SimTime>,
    edges: Vec<PathEdge>,
    self_time: PhaseTimes,
    root_txn: u64,
    attempt: u32,
    // Lock context, reset at every phase transition.
    seg_object: Option<u32>,
    seg_blockers: Vec<u64>,
    // Gather batches and demand fetches are emitted at the *boundary*
    // instant, before the `PhaseEnter` that opens the window they stall
    // (the engine emits them while processing the grant arrival, then
    // transitions). They accumulate here and are consumed by the close of
    // the next matching segment — transfer-wait for gathers, compute for
    // demand fetches (demand latency is served inside compute).
    pending_gathers: Vec<(u32, u32, u32, u64, u64)>,
    pending_demand: (u32, u64),
    // Retransmit stalls, mirroring the engine's two-stage accounting:
    // wait accrued *at* a transition instant has not elapsed yet and
    // carries into the next segment; promoted wait is carved out of the
    // closing segment's tail, remainder carried forward.
    retrans_fresh: Vec<(SimTime, u64)>,
    retrans_carry_ns: u64,
}

impl FamState {
    fn close_segment(&mut self, now: SimTime) {
        let Some((phase, since)) = self.open.take() else {
            return;
        };
        let seg = now.saturating_duration_since(since);
        // Promote stalls whose accrual instant the clock has passed — the
        // delayed delivery fired inside this segment — and carve them out
        // of the segment's tail into an explicit edge, mirroring the
        // engine (stall time is booked as backoff, not as the phase it
        // interrupted). Wait accrued at `now` itself elapses later.
        self.retrans_fresh.retain(|&(at, wait_ns)| {
            if at < now {
                self.retrans_carry_ns += wait_ns;
                false
            } else {
                true
            }
        });
        let stall = SimDuration::from_nanos(self.retrans_carry_ns.min(seg.as_nanos()));
        self.retrans_carry_ns -= stall.as_nanos();
        let body_end = now - stall;
        self.self_time.add(phase, seg - stall);
        self.self_time.add(ObsPhase::Backoff, stall);
        if body_end > since {
            let kind = match phase {
                ObsPhase::LockWait => PathEdgeKind::LockWait {
                    object: self.seg_object,
                    blockers: std::mem::take(&mut self.seg_blockers),
                },
                ObsPhase::TransferWait => {
                    let gathers = std::mem::take(&mut self.pending_gathers);
                    let slowest = gathers.iter().max_by_key(|g| g.4).copied().unwrap_or((
                        self.seg_object.unwrap_or(0),
                        0,
                        0,
                        0,
                        0,
                    ));
                    PathEdgeKind::PageGather {
                        object: slowest.0,
                        source: slowest.1,
                        pages: slowest.2,
                        bytes: slowest.3,
                        batches: gathers.len() as u32,
                    }
                }
                ObsPhase::Running => {
                    let (demand_fetches, demand_bytes) = std::mem::take(&mut self.pending_demand);
                    PathEdgeKind::Compute {
                        demand_fetches,
                        demand_bytes,
                    }
                }
                ObsPhase::Backoff | ObsPhase::Committed | ObsPhase::Failed => {
                    PathEdgeKind::Backoff {
                        attempt: self.attempt,
                    }
                }
            };
            self.edges.push(PathEdge {
                kind,
                start: since,
                end: body_end,
            });
        }
        if stall > SimDuration::ZERO {
            self.edges.push(PathEdge {
                kind: PathEdgeKind::RetransmitWait {
                    wait_ns: stall.as_nanos(),
                },
                start: body_end,
                end: now,
            });
        }
        self.seg_object = None;
        self.seg_blockers.clear();
    }
}

/// Computes the critical path of every family that committed, in family
/// order. Families that failed (or never terminated) produce no path.
pub fn critical_paths(events: &[ObsEvent]) -> Vec<CriticalPath> {
    let (_, _, mut paths) = fold_paths(events);
    paths.sort_by_key(|p| p.family);
    paths
}

/// Like [`critical_paths`], but additionally flushes families still
/// in flight when the stream ends: their open segment is closed at
/// `cutoff` and the partial arrival-to-cutoff edge chain is emitted.
/// The forensics triage uses this — its anomaly interrupts the victim
/// mid-flight, so the victim never reaches the committed-only walker.
pub fn partial_paths(events: &[ObsEvent], cutoff: SimTime) -> Vec<CriticalPath> {
    let (states, _, mut paths) = fold_paths(events);
    for (family, mut st) in states {
        if st.edges.is_empty() && st.open.is_none() {
            continue; // committed (already emitted), failed, or untracked
        }
        st.close_segment(cutoff);
        paths.push(CriticalPath {
            family,
            root_txn: st.root_txn,
            start: st.start.unwrap_or(cutoff),
            end: cutoff,
            edges: st.edges,
            self_time: st.self_time,
        });
    }
    paths.sort_by_key(|p| p.family);
    paths
}

/// The shared walker: folds the event stream into per-family segment
/// state, emitting a finished [`CriticalPath`] at each root commit.
#[allow(clippy::type_complexity)]
fn fold_paths(
    events: &[ObsEvent],
) -> (
    BTreeMap<u64, FamState>,
    BTreeMap<u64, u64>,
    Vec<CriticalPath>,
) {
    let mut states: BTreeMap<u64, FamState> = BTreeMap::new();
    let mut txn_family: BTreeMap<u64, u64> = BTreeMap::new();
    let mut paths: Vec<CriticalPath> = Vec::new();
    for event in events {
        match &event.kind {
            ObsEventKind::PhaseEnter { family, phase } => {
                let st = states.entry(*family).or_default();
                st.close_segment(event.at);
                if st.start.is_none() {
                    st.start = Some(event.at);
                }
                match phase {
                    ObsPhase::Committed => {
                        paths.push(CriticalPath {
                            family: *family,
                            root_txn: st.root_txn,
                            start: st.start.unwrap_or(event.at),
                            end: event.at,
                            edges: std::mem::take(&mut st.edges),
                            self_time: std::mem::take(&mut st.self_time),
                        });
                    }
                    ObsPhase::Failed => {
                        st.edges.clear();
                        st.self_time = PhaseTimes::default();
                    }
                    _ => {
                        st.open = Some((*phase, event.at));
                    }
                }
            }
            ObsEventKind::SpanOpen {
                family,
                txn,
                parent,
                ..
            } => {
                txn_family.insert(*txn, *family);
                if parent.is_none() {
                    states.entry(*family).or_default().root_txn = *txn;
                }
            }
            ObsEventKind::LockQueued { object, txn, .. } => {
                if let Some(family) = txn_family.get(txn) {
                    states.entry(*family).or_default().seg_object = Some(*object);
                }
            }
            ObsEventKind::LockBlocked {
                object,
                txn,
                holders,
                retainers,
                queued_behind,
                ..
            } => {
                if let Some(&family) = txn_family.get(txn) {
                    let mut blockers: Vec<u64> = holders
                        .iter()
                        .chain(retainers.iter())
                        .chain(queued_behind.iter())
                        .filter_map(|t| txn_family.get(t).copied())
                        .filter(|&f| f != family)
                        .collect();
                    blockers.sort_unstable();
                    blockers.dedup();
                    let st = states.entry(family).or_default();
                    st.seg_object = Some(*object);
                    st.seg_blockers = blockers;
                }
            }
            ObsEventKind::LockGranted { object, txn, .. } => {
                if let Some(&family) = txn_family.get(txn) {
                    let st = states.entry(family).or_default();
                    if st.seg_object.is_none() {
                        st.seg_object = Some(*object);
                    }
                }
            }
            ObsEventKind::GatherBatch {
                family,
                object,
                source,
                pages,
                bytes,
                delay_ns,
            } => {
                states
                    .entry(*family)
                    .or_default()
                    .pending_gathers
                    .push((*object, *source, *pages, *bytes, *delay_ns));
            }
            ObsEventKind::DemandFetch { family, bytes, .. } => {
                let st = states.entry(*family).or_default();
                st.pending_demand.0 += 1;
                st.pending_demand.1 += bytes;
            }
            ObsEventKind::Retransmit {
                wait_ns,
                family: Some(family),
                ..
            } => {
                states
                    .entry(*family)
                    .or_default()
                    .retrans_fresh
                    .push((event.at, *wait_ns));
            }
            ObsEventKind::Restart {
                family, attempt, ..
            } => {
                // The engine drops the aborted attempt's accrued stalls and
                // un-served transfers on restart; pending context from the
                // dead attempt must not label the retry's segments.
                let st = states.entry(*family).or_default();
                st.attempt = *attempt;
                st.pending_gathers.clear();
                st.pending_demand = (0, 0);
                st.retrans_fresh.clear();
                st.retrans_carry_ns = 0;
            }
            _ => {}
        }
    }
    (states, txn_family, paths)
}

/// JSON array of every committed family's critical path.
pub fn critical_paths_json(events: &[ObsEvent]) -> Json {
    Json::Arr(
        critical_paths(events)
            .iter()
            .map(CriticalPath::to_json)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsLockMode;

    fn ev(at: u64, kind: ObsEventKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_nanos(at),
            node: 0,
            kind,
        }
    }

    fn phase(at: u64, family: u64, phase: ObsPhase) -> ObsEvent {
        ev(at, ObsEventKind::PhaseEnter { family, phase })
    }

    #[test]
    fn path_edges_tile_the_latency_window() {
        let events = vec![
            ev(
                0,
                ObsEventKind::SpanOpen {
                    family: 1,
                    txn: 10,
                    parent: None,
                    object: 5,
                },
            ),
            ev(
                0,
                ObsEventKind::SpanOpen {
                    family: 2,
                    txn: 20,
                    parent: None,
                    object: 5,
                },
            ),
            phase(0, 1, ObsPhase::LockWait),
            ev(
                0,
                ObsEventKind::LockQueued {
                    object: 5,
                    txn: 10,
                    mode: ObsLockMode::Write,
                    waiters: 2,
                },
            ),
            ev(
                0,
                ObsEventKind::LockBlocked {
                    object: 5,
                    txn: 10,
                    holders: vec![20],
                    retainers: vec![],
                    queued_behind: vec![],
                },
            ),
            phase(100, 1, ObsPhase::TransferWait),
            ev(
                100,
                ObsEventKind::GatherBatch {
                    family: 1,
                    object: 5,
                    source: 2,
                    pages: 1,
                    bytes: 4_096,
                    delay_ns: 10,
                },
            ),
            ev(
                100,
                ObsEventKind::GatherBatch {
                    family: 1,
                    object: 5,
                    source: 3,
                    pages: 4,
                    bytes: 16_384,
                    delay_ns: 50,
                },
            ),
            phase(150, 1, ObsPhase::Running),
            ev(
                160,
                ObsEventKind::DemandFetch {
                    family: 1,
                    object: 5,
                    page: 7,
                    source: 3,
                    bytes: 4_160,
                },
            ),
            ev(
                170,
                ObsEventKind::Retransmit {
                    dst: 3,
                    attempts: 2,
                    duplicates: 0,
                    wait_ns: 30,
                    family: Some(1),
                },
            ),
            phase(250, 1, ObsPhase::Committed),
        ];
        let paths = critical_paths(&events);
        assert_eq!(paths.len(), 1);
        let path = &paths[0];
        assert_eq!(path.family, 1);
        assert_eq!(path.root_txn, 10);
        assert_eq!(path.latency().as_nanos(), 250);
        let kinds: Vec<&str> = path.edges.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec!["lock-wait", "page-gather", "compute", "retransmit-wait"]
        );
        // Edges tile [0, 250) with no gaps.
        let mut cursor = 0;
        for edge in &path.edges {
            assert_eq!(edge.start.as_nanos(), cursor);
            cursor = edge.end.as_nanos();
        }
        assert_eq!(cursor, 250);
        let total: u64 = path.edges.iter().map(|e| e.duration().as_nanos()).sum();
        assert_eq!(total, path.latency().as_nanos());
        assert_eq!(path.self_time.total().as_nanos(), 250);
        // Lock-wait blockers resolved through the span map to family 2.
        match &path.edges[0].kind {
            PathEdgeKind::LockWait { object, blockers } => {
                assert_eq!(*object, Some(5));
                assert_eq!(blockers, &[2]);
            }
            other => panic!("expected lock wait, got {other:?}"),
        }
        // Page-gather carries the slowest batch.
        match &path.edges[1].kind {
            PathEdgeKind::PageGather {
                source,
                pages,
                bytes,
                batches,
                ..
            } => {
                assert_eq!(*source, 3);
                assert_eq!(*pages, 4);
                assert_eq!(*bytes, 16_384);
                assert_eq!(*batches, 2);
            }
            other => panic!("expected page gather, got {other:?}"),
        }
        // Retransmit stall carved out of the compute tail.
        match &path.edges[3].kind {
            PathEdgeKind::RetransmitWait { wait_ns } => assert_eq!(*wait_ns, 30),
            other => panic!("expected retransmit wait, got {other:?}"),
        }
        // Stall is booked as backoff in self-time, like the engine does.
        assert_eq!(path.self_time.backoff.as_nanos(), 30);
        assert_eq!(path.self_time.running.as_nanos(), 70);
        // JSON form parses back.
        let json = path.to_json();
        assert_eq!(Json::parse(&json.render()).unwrap(), json);
    }

    #[test]
    fn backoff_and_restart_edges_survive_restarts() {
        let events = vec![
            phase(0, 3, ObsPhase::Running),
            ev(
                40,
                ObsEventKind::Restart {
                    family: 3,
                    attempt: 1,
                    backoff_ns: 60,
                },
            ),
            phase(40, 3, ObsPhase::Backoff),
            phase(100, 3, ObsPhase::Running),
            phase(130, 3, ObsPhase::Committed),
        ];
        let paths = critical_paths(&events);
        assert_eq!(paths.len(), 1);
        let kinds: Vec<&str> = paths[0].edges.iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["compute", "backoff", "compute"]);
        match &paths[0].edges[1].kind {
            PathEdgeKind::Backoff { attempt } => assert_eq!(*attempt, 1),
            other => panic!("expected backoff, got {other:?}"),
        }
        assert_eq!(paths[0].self_time.backoff.as_nanos(), 60);
    }

    #[test]
    fn failed_families_produce_no_path() {
        let events = vec![
            phase(0, 7, ObsPhase::Running),
            phase(50, 7, ObsPhase::Failed),
        ];
        assert!(critical_paths(&events).is_empty());
    }
}
