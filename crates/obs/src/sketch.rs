//! Mergeable streaming quantile sketch (DDSketch-style, integer-only).
//!
//! The log₂ [`Histogram`](lotec_sim::stats::Histogram) that backed the
//! metrics registry resolves quantiles only to the enclosing power of
//! two — a p99 of 1.3 ms and one of 2.5 ms land in the same bucket.
//! [`QuantileSketch`] keeps the memory-flat streaming shape but divides
//! every octave into [`SUBBUCKETS`] linear subbuckets, bounding the
//! relative quantile error by `1/SUBBUCKETS` (≈ 1.56 %) at any stream
//! length.
//!
//! Design constraints, in order:
//!
//! * **Deterministic.** Pure integer arithmetic — bucket indices come
//!   from `leading_zeros` and shifts, never floating-point logs — so two
//!   runs (or two sweep workers) recording the same values produce
//!   byte-identical sketches on any host.
//! * **Exactly mergeable.** [`QuantileSketch::merge`] adds bucket counts
//!   elementwise, so merging is associative and commutative *exactly*,
//!   not just approximately: any split of a value stream across sweep
//!   workers, merged in any order, yields the identical sketch. This is
//!   what lets the parallel runner aggregate per-cell latency sketches
//!   with thread-count-invariant output.
//! * **Memory-flat.** Bucket storage is bounded by [`MAX_BUCKETS`]
//!   (≈ 30 KiB fully populated) regardless of how many values are
//!   recorded; typical metrics span a few octaves and stay far smaller
//!   because the bucket vector only grows to the highest index seen.
//!
//! Values of `0` and everything below [`SUBBUCKETS`] are exact (bucket
//! width 1). Count, sum, min and max are always exact.

/// Linear subbuckets per octave. A power of two so the subbucket index
/// is a shift/mask, never a division.
pub const SUBBUCKETS: u64 = 64;

/// log₂ of [`SUBBUCKETS`].
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();

/// Upper bound on the bucket index space: values `0..SUBBUCKETS` map to
/// one bucket each, and each of the remaining `64 - SUB_BITS` octaves
/// contributes [`SUBBUCKETS`] buckets.
pub const MAX_BUCKETS: usize = (SUBBUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index of `value`. Exact (width-1 buckets) below [`SUBBUCKETS`];
/// above, the octave of the leading bit is split into [`SUBBUCKETS`]
/// linear subbuckets.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value < SUBBUCKETS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS
    let sub = ((value >> (exp - SUB_BITS)) & (SUBBUCKETS - 1)) as usize;
    ((exp - SUB_BITS + 1) as usize) * SUBBUCKETS as usize + sub
}

/// Inclusive upper bound of bucket `index` — the deterministic
/// representative [`QuantileSketch::quantile`] reports (clamped to the
/// observed min/max, mirroring the log₂ histogram's convention).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUBBUCKETS as usize {
        return index as u64;
    }
    let exp = (index / SUBBUCKETS as usize) as u32 + SUB_BITS - 1;
    let sub = (index % SUBBUCKETS as usize) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    (SUBBUCKETS + sub) * width + (width - 1)
}

/// A mergeable log-linear quantile sketch over `u64` values. See the
/// [module docs](self) for guarantees.
#[derive(Debug, Clone, Default)]
pub struct QuantileSketch {
    /// Bucket counts, indexed by [`bucket_of`]; grown on demand up to
    /// [`MAX_BUCKETS`]. Trailing zeros are not significant (see the
    /// manual [`PartialEq`]).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        if (self.count, self.sum) != (other.count, other.sum) {
            return false;
        }
        if self.count > 0 && (self.min, self.max) != (other.min, other.max) {
            return false;
        }
        // Bucket vectors may differ in trailing-zero padding.
        let (short, long) = if self.counts.len() <= other.counts.len() {
            (&self.counts, &other.counts)
        } else {
            (&other.counts, &self.counts)
        };
        short.iter().zip(long.iter()).all(|(a, b)| a == b)
            && long[short.len()..].iter().all(|&c| c == 0)
    }
}

impl Eq for QuantileSketch {}

impl QuantileSketch {
    /// An empty sketch. Allocates nothing until the first record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the rank-`⌈q·count⌉` value, clamped to the
    /// observed `[min, max]`. Relative error vs. the exact rank value is
    /// at most `1/SUBBUCKETS`. Returns 0 on an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges `other` into `self` by elementwise bucket addition —
    /// exactly associative and commutative, so worker splits merge to
    /// the identical sketch in any order.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotec_sim::SimRng;

    /// Exact reference quantile matching the sketch's rank convention.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    fn seeded_stream(seed: u64, len: usize, spread_bits: u32) -> Vec<u64> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                // Log-uniform-ish: pick an octave, then a value inside it,
                // so the stream exercises many bucket scales.
                let bits = rng.next_below(u64::from(spread_bits)) as u32;
                let base = 1u64 << bits;
                base + rng.next_below(base.max(1))
            })
            .collect()
    }

    #[test]
    fn buckets_are_monotone_and_within_error() {
        let mut prev_upper = 0;
        for idx in 0..MAX_BUCKETS {
            let upper = bucket_upper(idx);
            if idx > 0 {
                assert!(upper > prev_upper, "bucket {idx} not monotone");
            }
            prev_upper = upper;
        }
        // Every value's bucket upper bound is within 1/SUBBUCKETS above.
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..20_000 {
            let v = rng.next_below(u64::MAX / 2).max(1);
            let upper = bucket_upper(bucket_of(v));
            assert!(upper >= v, "upper bound below value");
            assert!(
                (upper - v) as f64 <= v as f64 / SUBBUCKETS as f64,
                "bucket error above 1/{SUBBUCKETS} for {v}: upper {upper}"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..SUBBUCKETS {
            s.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let exact = ((q * SUBBUCKETS as f64).ceil() as u64).max(1) - 1;
            assert_eq!(s.quantile(q), exact);
        }
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), SUBBUCKETS - 1);
    }

    #[test]
    fn quantile_error_bounded_on_seeded_streams() {
        for (seed, len, bits) in [(1u64, 5000, 40), (0xBEEF, 2000, 20), (42, 10_000, 56)] {
            let values = seeded_stream(seed, len, bits);
            let mut sketch = QuantileSketch::new();
            for &v in &values {
                sketch.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(sketch.count(), len as u64);
            assert_eq!(sketch.min(), sorted[0]);
            assert_eq!(sketch.max(), *sorted.last().unwrap());
            for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                let exact = exact_quantile(&sorted, q);
                let approx = sketch.quantile(q);
                // The sketch reports the enclosing bucket's upper bound,
                // clamped; relative error is bounded by the bucket width.
                let tolerance = (exact as f64 / SUBBUCKETS as f64).max(1.0);
                assert!(
                    (approx as f64 - exact as f64).abs() <= tolerance,
                    "seed {seed} q={q}: sketch {approx} vs exact {exact} \
                     (tolerance {tolerance})"
                );
            }
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let values = seeded_stream(0xA11CE, 3000, 36);
        // Whole-stream sketch: the ground truth every split must equal.
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.record(v);
        }
        // Split into three worker shards.
        let shard = |range: std::ops::Range<usize>| {
            let mut s = QuantileSketch::new();
            for &v in &values[range] {
                s.record(v);
            }
            s
        };
        let (a, b, c) = (shard(0..1000), shard(1000..2200), shard(2200..3000));
        // (a ⊔ b) ⊔ c
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        // c ⊔ b ⊔ a (reordered)
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(ab_c, a_bc, "merge not associative");
        assert_eq!(ab_c, cba, "merge not commutative");
        assert_eq!(ab_c, whole, "merged shards diverge from whole-stream");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = QuantileSketch::new();
        s.record(17);
        s.record(90_000);
        let before = s.clone();
        s.merge(&QuantileSketch::new());
        assert_eq!(s, before);
        let mut empty = QuantileSketch::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn memory_stays_flat() {
        let mut s = QuantileSketch::new();
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100_000 {
            s.record(rng.next_below(u64::MAX / 4));
        }
        assert!(s.counts.len() <= MAX_BUCKETS);
        assert_eq!(s.count(), 100_000);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_out_of_range() {
        QuantileSketch::new().quantile(1.5);
    }
}
