//! Always-on bounded flight recorder: a fixed-capacity ring of compact
//! fixed-width event records.
//!
//! The [`RecordingSink`](crate::RecordingSink) keeps every event and
//! grows without bound — fine for a one-off trace export, wrong for an
//! always-on black box. [`FlightRecorder`] instead encodes each
//! [`ObsEvent`] into a fixed-width [`CompactRecord`] and writes it into
//! a preallocated ring: when the ring is full the oldest record is
//! overwritten, so memory is bounded by the slot count forever and the
//! ring always holds the *most recent* history — exactly what a
//! post-mortem wants.
//!
//! The record path is allocation-free: encoding is a `match` that copies
//! scalars into fixed arrays (variable-length event payloads are
//! truncated to the record's inline capacity, with the original length
//! preserved so a dump can report the truncation), and the ring slot is
//! overwritten in place. Capacity comes from
//! `SystemConfig::flight_recorder.slots`; the engine wrapper
//! `run_engine_recorded` wires the two together.
//!
//! Decoding ([`FlightRecorder::snapshot`]) reverses the encoding into
//! ordinary [`ObsEvent`]s (oldest first) for the forensics pipeline —
//! trace export, the critical-path walker, and the triage report all
//! consume the snapshot unchanged.

use crate::event::{ObsEvent, ObsEventKind, ObsLockMode, ObsPhase, ReleaseCause, SpanOutcome};
use crate::sink::EventSink;
use lotec_sim::SimTime;

/// Scalar slots per record — enough for the widest fixed-field event
/// (`GatherBatch`, `Retransmit`, `StateSample`: six scalars each).
const SCALARS: usize = 6;

/// Inline slots shared by a record's variable-length segments. Sized for
/// the payloads forensics actually chains through (deadlock cycles,
/// blocker lists, page batches); longer payloads are truncated with the
/// original length kept in [`CompactRecord::seg_total`].
const ARGS: usize = 12;

/// Variable-length segments per record (`LockBlocked` and `GrantPlan`
/// carry three lists each).
const SEGS: usize = 3;

/// One fixed-width encoded event. 176 bytes, `Copy`, no heap pointers —
/// the ring is a flat `Vec<CompactRecord>` written in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactRecord {
    /// Simulated time, nanoseconds.
    at_ns: u64,
    /// Site the event occurred at.
    node: u32,
    /// Event-kind discriminant (enum declaration order).
    tag: u8,
    /// Captured entries per variable segment.
    seg_len: [u8; SEGS],
    /// Original (pre-truncation) entries per variable segment.
    seg_total: [u32; SEGS],
    /// Fixed scalar fields, in field-declaration order. Enums and
    /// `Option` discriminants ride as small integers.
    scalars: [u64; SCALARS],
    /// The variable segments, concatenated in declaration order.
    args: [u64; ARGS],
}

impl Default for CompactRecord {
    fn default() -> Self {
        CompactRecord {
            at_ns: 0,
            node: 0,
            tag: 0,
            seg_len: [0; SEGS],
            seg_total: [0; SEGS],
            scalars: [0; SCALARS],
            args: [0; ARGS],
        }
    }
}

/// Ring slots must stay compact — the whole point of the recorder is a
/// small, always-resident arena (4096 slots ≈ 704 KiB).
const _: () = assert!(std::mem::size_of::<CompactRecord>() <= 176);

impl CompactRecord {
    /// Encodes an event. Allocation-free; list payloads are truncated to
    /// the record's inline capacity (originals lengths preserved).
    pub fn encode(event: &ObsEvent) -> CompactRecord {
        let mut r = CompactRecord {
            at_ns: event.at.as_nanos(),
            node: event.node,
            ..CompactRecord::default()
        };
        // Fills segment `seg` from `values`, truncating to the remaining
        // inline capacity; returns the next free arg slot.
        fn seg(r: &mut CompactRecord, seg: usize, at: usize, values: &[u64]) -> usize {
            let take = values.len().min(ARGS - at);
            r.args[at..at + take].copy_from_slice(&values[..take]);
            r.seg_len[seg] = take as u8;
            r.seg_total[seg] = values.len() as u32;
            at + take
        }
        fn seg16(r: &mut CompactRecord, s: usize, at: usize, values: &[u16]) -> usize {
            let take = values.len().min(ARGS - at);
            for (slot, &v) in r.args[at..at + take].iter_mut().zip(values.iter()) {
                *slot = u64::from(v);
            }
            r.seg_len[s] = take as u8;
            r.seg_total[s] = values.len() as u32;
            at + take
        }
        match &event.kind {
            ObsEventKind::LockQueued {
                object,
                txn,
                mode,
                waiters,
            } => {
                r.tag = 0;
                r.scalars = [
                    u64::from(*object),
                    *txn,
                    mode_code(*mode),
                    u64::from(*waiters),
                    0,
                    0,
                ];
            }
            ObsEventKind::LockGranted {
                object,
                txn,
                mode,
                global,
                holders,
            } => {
                r.tag = 1;
                r.scalars = [
                    u64::from(*object),
                    *txn,
                    mode_code(*mode),
                    u64::from(*global),
                    u64::from(*holders),
                    0,
                ];
            }
            ObsEventKind::LockRetained {
                object,
                txn,
                parent,
            } => {
                r.tag = 2;
                r.scalars = [u64::from(*object), *txn, *parent, 0, 0, 0];
            }
            ObsEventKind::LockBlocked {
                object,
                txn,
                holders,
                retainers,
                queued_behind,
            } => {
                r.tag = 3;
                r.scalars = [u64::from(*object), *txn, 0, 0, 0, 0];
                let at = seg(&mut r, 0, 0, holders);
                let at = seg(&mut r, 1, at, retainers);
                seg(&mut r, 2, at, queued_behind);
            }
            ObsEventKind::LockReleased { object, txn, cause } => {
                r.tag = 4;
                r.scalars = [
                    u64::from(*object),
                    *txn,
                    matches!(cause, ReleaseCause::Abort) as u64,
                    0,
                    0,
                    0,
                ];
            }
            ObsEventKind::Deadlock { cycle, victim } => {
                r.tag = 5;
                r.scalars = [*victim, 0, 0, 0, 0, 0];
                seg(&mut r, 0, 0, cycle);
            }
            ObsEventKind::SpanOpen {
                family,
                txn,
                parent,
                object,
            } => {
                r.tag = 6;
                r.scalars = [
                    *family,
                    *txn,
                    parent.is_some() as u64,
                    parent.unwrap_or(0),
                    u64::from(*object),
                    0,
                ];
            }
            ObsEventKind::SpanClose {
                family,
                txn,
                outcome,
            } => {
                r.tag = 7;
                r.scalars = [*family, *txn, outcome_code(*outcome), 0, 0, 0];
            }
            ObsEventKind::PhaseEnter { family, phase } => {
                r.tag = 8;
                r.scalars = [*family, phase_code(*phase), 0, 0, 0, 0];
            }
            ObsEventKind::SubAbort {
                family,
                txn,
                released,
            } => {
                r.tag = 9;
                r.scalars = [*family, *txn, u64::from(*released), 0, 0, 0];
            }
            ObsEventKind::Restart {
                family,
                attempt,
                backoff_ns,
            } => {
                r.tag = 10;
                r.scalars = [*family, u64::from(*attempt), *backoff_ns, 0, 0, 0];
            }
            ObsEventKind::GrantPlan {
                family,
                object,
                predicted,
                actual_reads,
                actual_writes,
                planned_pages,
                sources,
            } => {
                r.tag = 11;
                r.scalars = [
                    *family,
                    u64::from(*object),
                    u64::from(*planned_pages),
                    u64::from(*sources),
                    0,
                    0,
                ];
                let at = seg16(&mut r, 0, 0, predicted);
                let at = seg16(&mut r, 1, at, actual_reads);
                seg16(&mut r, 2, at, actual_writes);
            }
            ObsEventKind::GatherBatch {
                family,
                object,
                source,
                pages,
                bytes,
                delay_ns,
            } => {
                r.tag = 12;
                r.scalars = [
                    *family,
                    u64::from(*object),
                    u64::from(*source),
                    u64::from(*pages),
                    *bytes,
                    *delay_ns,
                ];
            }
            ObsEventKind::PredictionSample {
                class,
                method,
                predicted,
                actual,
                true_positives,
            } => {
                r.tag = 13;
                r.scalars = [
                    u64::from(*class),
                    u64::from(*method),
                    u64::from(*predicted),
                    u64::from(*actual),
                    u64::from(*true_positives),
                    0,
                ];
            }
            ObsEventKind::ProfileUpdate {
                class,
                method,
                expanded,
                shrunk,
                predicted,
                observations,
            } => {
                r.tag = 14;
                r.scalars = [
                    u64::from(*class),
                    u64::from(*method),
                    u64::from(*predicted),
                    *observations,
                    0,
                    0,
                ];
                let at = seg16(&mut r, 0, 0, expanded);
                seg16(&mut r, 1, at, shrunk);
            }
            ObsEventKind::DemandBatch {
                family,
                object,
                source,
                pages,
                bytes,
                delay_ns,
            } => {
                r.tag = 15;
                r.scalars = [
                    *family,
                    u64::from(*object),
                    u64::from(*source),
                    *bytes,
                    *delay_ns,
                    0,
                ];
                seg16(&mut r, 0, 0, pages);
            }
            ObsEventKind::DemandFetch {
                family,
                object,
                page,
                source,
                bytes,
            } => {
                r.tag = 16;
                r.scalars = [
                    *family,
                    u64::from(*object),
                    u64::from(*page),
                    u64::from(*source),
                    *bytes,
                    0,
                ];
            }
            ObsEventKind::Retransmit {
                dst,
                attempts,
                duplicates,
                wait_ns,
                family,
            } => {
                r.tag = 17;
                r.scalars = [
                    u64::from(*dst),
                    u64::from(*attempts),
                    u64::from(*duplicates),
                    *wait_ns,
                    family.is_some() as u64,
                    family.unwrap_or(0),
                ];
            }
            ObsEventKind::NodeCrashed { aborted_families } => {
                r.tag = 18;
                r.scalars = [u64::from(*aborted_families), 0, 0, 0, 0, 0];
            }
            ObsEventKind::NodeRecovered { outage_ns } => {
                r.tag = 19;
                r.scalars = [*outage_ns, 0, 0, 0, 0, 0];
            }
            ObsEventKind::StateSample {
                queue_depth,
                locks_held,
                locks_retained,
                locks_waiting,
                inflight_messages,
                blocked_families,
                cache_bytes,
            } => {
                r.tag = 20;
                r.scalars = [
                    *queue_depth,
                    u64::from(*locks_held),
                    u64::from(*locks_retained),
                    u64::from(*locks_waiting),
                    u64::from(*inflight_messages),
                    u64::from(*blocked_families),
                ];
                seg(&mut r, 0, 0, cache_bytes);
            }
            ObsEventKind::LockTimeout {
                object,
                txn,
                waited_ns,
            } => {
                r.tag = 21;
                r.scalars = [u64::from(*object), *txn, *waited_ns, 0, 0, 0];
            }
            ObsEventKind::PageMapRepaired {
                object,
                page,
                from,
                to,
            } => {
                r.tag = 22;
                r.scalars = [
                    u64::from(*object),
                    u64::from(*page),
                    u64::from(*from),
                    u64::from(*to),
                    0,
                    0,
                ];
            }
        }
        r
    }

    /// Decodes back into an [`ObsEvent`]. Lists that were truncated at
    /// encode time come back truncated (check [`CompactRecord::truncated`]).
    pub fn decode(&self) -> ObsEvent {
        let s = &self.scalars;
        // Segment `i` as owned u64s / u16s.
        let segment = |i: usize| -> Vec<u64> {
            let start: usize = self.seg_len[..i].iter().map(|&l| l as usize).sum();
            self.args[start..start + self.seg_len[i] as usize].to_vec()
        };
        let segment16 =
            |i: usize| -> Vec<u16> { segment(i).into_iter().map(|v| v as u16).collect() };
        let kind = match self.tag {
            0 => ObsEventKind::LockQueued {
                object: s[0] as u32,
                txn: s[1],
                mode: mode_from(s[2]),
                waiters: s[3] as u32,
            },
            1 => ObsEventKind::LockGranted {
                object: s[0] as u32,
                txn: s[1],
                mode: mode_from(s[2]),
                global: s[3] != 0,
                holders: s[4] as u32,
            },
            2 => ObsEventKind::LockRetained {
                object: s[0] as u32,
                txn: s[1],
                parent: s[2],
            },
            3 => ObsEventKind::LockBlocked {
                object: s[0] as u32,
                txn: s[1],
                holders: segment(0),
                retainers: segment(1),
                queued_behind: segment(2),
            },
            4 => ObsEventKind::LockReleased {
                object: s[0] as u32,
                txn: s[1],
                cause: if s[2] != 0 {
                    ReleaseCause::Abort
                } else {
                    ReleaseCause::RootCommit
                },
            },
            5 => ObsEventKind::Deadlock {
                cycle: segment(0),
                victim: s[0],
            },
            6 => ObsEventKind::SpanOpen {
                family: s[0],
                txn: s[1],
                parent: (s[2] != 0).then_some(s[3]),
                object: s[4] as u32,
            },
            7 => ObsEventKind::SpanClose {
                family: s[0],
                txn: s[1],
                outcome: outcome_from(s[2]),
            },
            8 => ObsEventKind::PhaseEnter {
                family: s[0],
                phase: phase_from(s[1]),
            },
            9 => ObsEventKind::SubAbort {
                family: s[0],
                txn: s[1],
                released: s[2] as u32,
            },
            10 => ObsEventKind::Restart {
                family: s[0],
                attempt: s[1] as u32,
                backoff_ns: s[2],
            },
            11 => ObsEventKind::GrantPlan {
                family: s[0],
                object: s[1] as u32,
                predicted: segment16(0),
                actual_reads: segment16(1),
                actual_writes: segment16(2),
                planned_pages: s[2] as u32,
                sources: s[3] as u32,
            },
            12 => ObsEventKind::GatherBatch {
                family: s[0],
                object: s[1] as u32,
                source: s[2] as u32,
                pages: s[3] as u32,
                bytes: s[4],
                delay_ns: s[5],
            },
            13 => ObsEventKind::PredictionSample {
                class: s[0] as u32,
                method: s[1] as u32,
                predicted: s[2] as u32,
                actual: s[3] as u32,
                true_positives: s[4] as u32,
            },
            14 => ObsEventKind::ProfileUpdate {
                class: s[0] as u32,
                method: s[1] as u32,
                expanded: segment16(0),
                shrunk: segment16(1),
                predicted: s[2] as u32,
                observations: s[3],
            },
            15 => ObsEventKind::DemandBatch {
                family: s[0],
                object: s[1] as u32,
                source: s[2] as u32,
                pages: segment16(0),
                bytes: s[3],
                delay_ns: s[4],
            },
            16 => ObsEventKind::DemandFetch {
                family: s[0],
                object: s[1] as u32,
                page: s[2] as u16,
                source: s[3] as u32,
                bytes: s[4],
            },
            17 => ObsEventKind::Retransmit {
                dst: s[0] as u32,
                attempts: s[1] as u32,
                duplicates: s[2] as u32,
                wait_ns: s[3],
                family: (s[4] != 0).then_some(s[5]),
            },
            18 => ObsEventKind::NodeCrashed {
                aborted_families: s[0] as u32,
            },
            19 => ObsEventKind::NodeRecovered { outage_ns: s[0] },
            20 => ObsEventKind::StateSample {
                queue_depth: s[0],
                locks_held: s[1] as u32,
                locks_retained: s[2] as u32,
                locks_waiting: s[3] as u32,
                inflight_messages: s[4] as u32,
                blocked_families: s[5] as u32,
                cache_bytes: segment(0),
            },
            21 => ObsEventKind::LockTimeout {
                object: s[0] as u32,
                txn: s[1],
                waited_ns: s[2],
            },
            22 => ObsEventKind::PageMapRepaired {
                object: s[0] as u32,
                page: s[1] as u16,
                from: s[2] as u32,
                to: s[3] as u32,
            },
            other => unreachable!("corrupt record tag {other}"),
        };
        ObsEvent {
            at: SimTime::from_nanos(self.at_ns),
            node: self.node,
            kind,
        }
    }

    /// True when any variable-length payload was truncated at encode
    /// time (the decoded event's lists are then incomplete).
    pub fn truncated(&self) -> bool {
        (0..SEGS).any(|i| u32::from(self.seg_len[i]) < self.seg_total[i])
    }
}

fn mode_code(mode: ObsLockMode) -> u64 {
    matches!(mode, ObsLockMode::Write) as u64
}

fn mode_from(code: u64) -> ObsLockMode {
    if code != 0 {
        ObsLockMode::Write
    } else {
        ObsLockMode::Read
    }
}

fn outcome_code(outcome: SpanOutcome) -> u64 {
    match outcome {
        SpanOutcome::PreCommit => 0,
        SpanOutcome::Commit => 1,
        SpanOutcome::Abort => 2,
        SpanOutcome::CrashAbort => 3,
    }
}

fn outcome_from(code: u64) -> SpanOutcome {
    match code {
        0 => SpanOutcome::PreCommit,
        1 => SpanOutcome::Commit,
        2 => SpanOutcome::Abort,
        _ => SpanOutcome::CrashAbort,
    }
}

fn phase_code(phase: ObsPhase) -> u64 {
    match phase {
        ObsPhase::LockWait => 0,
        ObsPhase::TransferWait => 1,
        ObsPhase::Running => 2,
        ObsPhase::Backoff => 3,
        ObsPhase::Committed => 4,
        ObsPhase::Failed => 5,
    }
}

fn phase_from(code: u64) -> ObsPhase {
    match code {
        0 => ObsPhase::LockWait,
        1 => ObsPhase::TransferWait,
        2 => ObsPhase::Running,
        3 => ObsPhase::Backoff,
        4 => ObsPhase::Committed,
        _ => ObsPhase::Failed,
    }
}

/// The bounded black box: a preallocated ring of [`CompactRecord`]s that
/// always holds the most recent history. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<CompactRecord>,
    /// Next slot to overwrite.
    head: usize,
    /// Total events ever emitted into the recorder.
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder with `slots` ring slots, preallocated up front.
    ///
    /// # Panics
    ///
    /// Panics when `slots` is zero — a zero-capacity black box records
    /// nothing and a dump from it would be silently empty.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "flight recorder needs at least one slot");
        FlightRecorder {
            ring: vec![CompactRecord::default(); slots],
            head: 0,
            recorded: 0,
        }
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Records currently resident in the ring.
    pub fn len(&self) -> usize {
        self.recorded.min(self.ring.len() as u64) as usize
    }

    /// True before the first event is recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Total events ever emitted into the recorder.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted by ring wraparound (no longer reconstructable).
    pub fn dropped(&self) -> u64 {
        self.recorded.saturating_sub(self.ring.len() as u64)
    }

    /// Empties the ring and zeroes the counters without releasing the
    /// allocation — for reusing one preallocated recorder across runs
    /// (e.g. repeat-timed benchmark cells).
    pub fn clear(&mut self) {
        self.head = 0;
        self.recorded = 0;
    }

    /// Decodes the resident records, oldest first.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        let len = self.len();
        let cap = self.ring.len();
        let start = if self.recorded as usize > cap {
            self.head
        } else {
            0
        };
        (0..len)
            .map(|i| self.ring[(start + i) % cap].decode())
            .collect()
    }
}

impl EventSink for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    /// Encodes into the ring in place — no allocation on this path. The
    /// wrap is a branch, not a modulo: this runs once per observed event.
    fn emit(&mut self, event: ObsEvent) {
        self.ring[self.head] = CompactRecord::encode(&event);
        self.head += 1;
        if self.head == self.ring.len() {
            self.head = 0;
        }
        self.recorded += 1;
    }

    fn recorder(&self) -> Option<&FlightRecorder> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ObsEvent> {
        let ev = |at: u64, node: u32, kind: ObsEventKind| ObsEvent {
            at: SimTime::from_nanos(at),
            node,
            kind,
        };
        vec![
            ev(
                10,
                0,
                ObsEventKind::LockQueued {
                    object: 3,
                    txn: 7,
                    mode: ObsLockMode::Write,
                    waiters: 2,
                },
            ),
            ev(
                20,
                1,
                ObsEventKind::LockGranted {
                    object: 3,
                    txn: 7,
                    mode: ObsLockMode::Read,
                    global: true,
                    holders: 4,
                },
            ),
            ev(
                25,
                1,
                ObsEventKind::LockRetained {
                    object: 3,
                    txn: 7,
                    parent: 5,
                },
            ),
            ev(
                30,
                2,
                ObsEventKind::LockBlocked {
                    object: 9,
                    txn: 11,
                    holders: vec![1, 2],
                    retainers: vec![3],
                    queued_behind: vec![4, 5, 6],
                },
            ),
            ev(
                35,
                0,
                ObsEventKind::LockReleased {
                    object: 9,
                    txn: 11,
                    cause: ReleaseCause::Abort,
                },
            ),
            ev(
                40,
                0,
                ObsEventKind::Deadlock {
                    cycle: vec![12, 15, 12],
                    victim: 15,
                },
            ),
            ev(
                45,
                1,
                ObsEventKind::SpanOpen {
                    family: 2,
                    txn: 17,
                    parent: Some(16),
                    object: 4,
                },
            ),
            ev(
                46,
                1,
                ObsEventKind::SpanOpen {
                    family: 2,
                    txn: 16,
                    parent: None,
                    object: 4,
                },
            ),
            ev(
                50,
                1,
                ObsEventKind::SpanClose {
                    family: 2,
                    txn: 17,
                    outcome: SpanOutcome::PreCommit,
                },
            ),
            ev(
                55,
                1,
                ObsEventKind::PhaseEnter {
                    family: 2,
                    phase: ObsPhase::TransferWait,
                },
            ),
            ev(
                60,
                2,
                ObsEventKind::SubAbort {
                    family: 2,
                    txn: 17,
                    released: 3,
                },
            ),
            ev(
                65,
                2,
                ObsEventKind::Restart {
                    family: 2,
                    attempt: 1,
                    backoff_ns: 500,
                },
            ),
            ev(
                70,
                0,
                ObsEventKind::GrantPlan {
                    family: 2,
                    object: 4,
                    predicted: vec![0, 1, 2],
                    actual_reads: vec![0, 1],
                    actual_writes: vec![2],
                    planned_pages: 3,
                    sources: 1,
                },
            ),
            ev(
                75,
                0,
                ObsEventKind::GatherBatch {
                    family: 2,
                    object: 4,
                    source: 1,
                    pages: 3,
                    bytes: 12288,
                    delay_ns: 9000,
                },
            ),
            ev(
                80,
                0,
                ObsEventKind::PredictionSample {
                    class: 1,
                    method: 2,
                    predicted: 3,
                    actual: 2,
                    true_positives: 2,
                },
            ),
            ev(
                85,
                0,
                ObsEventKind::ProfileUpdate {
                    class: 1,
                    method: 2,
                    expanded: vec![7],
                    shrunk: vec![8, 9],
                    predicted: 4,
                    observations: 11,
                },
            ),
            ev(
                90,
                0,
                ObsEventKind::DemandBatch {
                    family: 2,
                    object: 4,
                    source: 3,
                    pages: vec![5, 6],
                    bytes: 8192,
                    delay_ns: 700,
                },
            ),
            ev(
                95,
                0,
                ObsEventKind::DemandFetch {
                    family: 2,
                    object: 4,
                    page: 6,
                    source: 3,
                    bytes: 4096,
                },
            ),
            ev(
                100,
                1,
                ObsEventKind::Retransmit {
                    dst: 2,
                    attempts: 3,
                    duplicates: 1,
                    wait_ns: 1500,
                    family: Some(2),
                },
            ),
            ev(
                101,
                1,
                ObsEventKind::NodeCrashed {
                    aborted_families: 2,
                },
            ),
            ev(102, 1, ObsEventKind::NodeRecovered { outage_ns: 999 }),
            ev(
                103,
                0,
                ObsEventKind::StateSample {
                    queue_depth: 17,
                    locks_held: 4,
                    locks_retained: 2,
                    locks_waiting: 1,
                    inflight_messages: 3,
                    blocked_families: 1,
                    cache_bytes: vec![4096, 0, 8192],
                },
            ),
            ev(
                104,
                2,
                ObsEventKind::LockTimeout {
                    object: 9,
                    txn: 11,
                    waited_ns: 150_000,
                },
            ),
            ev(
                105,
                2,
                ObsEventKind::PageMapRepaired {
                    object: 4,
                    page: 1,
                    from: 2,
                    to: 0,
                },
            ),
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for event in sample_events() {
            let record = CompactRecord::encode(&event);
            assert!(
                !record.truncated(),
                "{}: unexpectedly truncated",
                event.kind.name()
            );
            assert_eq!(record.decode(), event, "{}", event.kind.name());
        }
    }

    #[test]
    fn oversized_lists_truncate_and_report_it() {
        let event = ObsEvent {
            at: SimTime::from_nanos(1),
            node: 0,
            kind: ObsEventKind::LockBlocked {
                object: 1,
                txn: 2,
                holders: (0..10).collect(),
                retainers: (10..20).collect(),
                queued_behind: (20..30).collect(),
            },
        };
        let record = CompactRecord::encode(&event);
        assert!(record.truncated());
        let ObsEventKind::LockBlocked {
            holders,
            retainers,
            queued_behind,
            ..
        } = record.decode().kind
        else {
            panic!("wrong kind decoded");
        };
        // Earlier segments fill first; capacity is 12 slots total.
        assert_eq!(holders, (0..10).collect::<Vec<u64>>());
        assert_eq!(retainers, vec![10, 11]);
        assert!(queued_behind.is_empty());
    }

    #[test]
    fn ring_keeps_the_newest_events_at_tiny_capacities() {
        for cap in [1usize, 2, 3, 5] {
            let mut rec = FlightRecorder::new(cap);
            let events = sample_events();
            for e in &events {
                rec.emit(e.clone());
            }
            assert_eq!(rec.recorded(), events.len() as u64);
            assert_eq!(rec.len(), cap.min(events.len()));
            assert_eq!(rec.dropped(), (events.len() - cap.min(events.len())) as u64);
            let snap = rec.snapshot();
            let expect: Vec<ObsEvent> = events[events.len() - rec.len()..].to_vec();
            assert_eq!(snap, expect, "capacity {cap}");
        }
    }

    #[test]
    fn snapshot_before_wraparound_is_in_emit_order() {
        let mut rec = FlightRecorder::new(100);
        let events = sample_events();
        for e in &events {
            rec.emit(e.clone());
        }
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.snapshot(), events);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_rejected() {
        FlightRecorder::new(0);
    }
}
