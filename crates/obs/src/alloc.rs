//! Optional allocation accounting for the host-plane profiler.
//!
//! [`CountingAlloc`] is a drop-in global allocator that forwards every
//! request to the system allocator and — only when `LOTEC_PROFILE_ALLOC=1`
//! is set in the environment — attributes allocation counts and bytes to
//! the [`HostRegion`](crate::host::HostRegion) currently open on the
//! thread's [`WallProfiler`](crate::host::WallProfiler) scope stack
//! (slot 0 collects allocations made outside any profiled scope).
//!
//! The accounting is wired so the *off* path costs one relaxed atomic load
//! per allocation and touches nothing else: no thread-local access, no
//! counter traffic, no behavioral change. The environment variable is read
//! once; while it is being probed the state is parked at "off" so the
//! allocations made by the probe itself cannot recurse into the counter.
//!
//! Only binaries that opt in install the allocator (the `perf` bench bin
//! does, via `#[global_allocator]`); libraries and tests that never install
//! it are untouched, which keeps `BENCH_smoke.json` and the golden
//! fingerprints trivially byte-identical.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::host::{HostRegion, HOST_REGION_COUNT};
use crate::json::Json;

/// Number of attribution slots: one per region plus slot 0 for
/// allocations outside any profiled scope.
pub const ALLOC_SLOTS: usize = HOST_REGION_COUNT + 1;

/// 0 = not probed yet, 1 = counting, 2 = off.
static STATE: AtomicU8 = AtomicU8::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNTS: [AtomicU64; ALLOC_SLOTS] = [ZERO; ALLOC_SLOTS];
static ALLOC_BYTES: [AtomicU64; ALLOC_SLOTS] = [ZERO; ALLOC_SLOTS];

thread_local! {
    /// Slot the current thread's allocations are attributed to
    /// (region index + 1; 0 = unattributed). Const-initialized so reading
    /// it never allocates — the allocator itself consults it.
    static CURRENT_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// Sets the attribution slot for the current thread. Called by
/// [`WallProfiler`](crate::host::WallProfiler) on scope enter/exit;
/// `slot` is a region index + 1, or 0 for "outside any scope".
#[inline]
pub fn set_current_region(slot: usize) {
    debug_assert!(slot < ALLOC_SLOTS);
    // try_with: thread teardown may allocate after TLS destruction.
    let _ = CURRENT_SLOT.try_with(|c| c.set(slot));
}

/// True when `LOTEC_PROFILE_ALLOC=1` was set at first use.
pub fn profiling_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            // Reading the environment allocates; park the state at "off"
            // first so those allocations bypass the counting path instead
            // of re-entering this probe.
            STATE.store(2, Ordering::Relaxed);
            let on = std::env::var_os("LOTEC_PROFILE_ALLOC").is_some_and(|v| v == "1");
            STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Test/bench hook: force accounting on or off regardless of the
/// environment. Pass `None` to re-probe the environment on next use.
pub fn force_profiling(on: Option<bool>) {
    let state = match on {
        Some(true) => 1,
        Some(false) => 2,
        None => 0,
    };
    STATE.store(state, Ordering::Relaxed);
}

#[inline]
fn record(bytes: usize) {
    if !profiling_enabled() {
        return;
    }
    let slot = CURRENT_SLOT.try_with(Cell::get).unwrap_or(0);
    ALLOC_COUNTS[slot].fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES[slot].fetch_add(bytes as u64, Ordering::Relaxed);
}

/// A counting wrapper around the system allocator.
///
/// Install with `#[global_allocator] static A: CountingAlloc =
/// CountingAlloc;` in a binary that wants allocation attribution.
/// `realloc` is counted as one allocation of the new size; `dealloc` is
/// never counted (the report is about allocation pressure, not live bytes).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A point-in-time copy of the global allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events per slot (slot 0 = unattributed).
    pub allocs: [u64; ALLOC_SLOTS],
    /// Requested bytes per slot.
    pub bytes: [u64; ALLOC_SLOTS],
}

/// Reads the current counters. All zeros unless accounting is enabled and
/// a [`CountingAlloc`] is installed as the global allocator.
pub fn snapshot() -> AllocSnapshot {
    let mut s = AllocSnapshot::default();
    for i in 0..ALLOC_SLOTS {
        s.allocs[i] = ALLOC_COUNTS[i].load(Ordering::Relaxed);
        s.bytes[i] = ALLOC_BYTES[i].load(Ordering::Relaxed);
    }
    s
}

impl AllocSnapshot {
    /// Counter increase since `earlier` (saturating, per slot).
    pub fn delta_since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        let mut d = AllocSnapshot::default();
        for i in 0..ALLOC_SLOTS {
            d.allocs[i] = self.allocs[i].saturating_sub(earlier.allocs[i]);
            d.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
        }
        d
    }

    /// Stable name for attribution slot `slot`.
    pub fn slot_name(slot: usize) -> &'static str {
        if slot == 0 {
            "unattributed"
        } else {
            HostRegion::ALL[slot - 1].name()
        }
    }

    /// Total allocation events across all slots.
    pub fn total_allocs(&self) -> u64 {
        self.allocs.iter().sum()
    }

    /// Total requested bytes across all slots.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// JSON rendering: `{slot: {allocs, bytes}}` for non-zero slots, plus
    /// totals.
    pub fn to_json(&self) -> Json {
        let slots: Vec<(&str, Json)> = (0..ALLOC_SLOTS)
            .filter(|&i| self.allocs[i] > 0 || self.bytes[i] > 0)
            .map(|i| {
                (
                    Self::slot_name(i),
                    Json::obj(vec![
                        ("allocs", Json::U64(self.allocs[i])),
                        ("bytes", Json::U64(self.bytes[i])),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("total_allocs", Json::U64(self.total_allocs())),
            ("total_bytes", Json::U64(self.total_bytes())),
            ("by_region", Json::obj(slots)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise the GlobalAlloc methods directly (the test
    // binary does not install CountingAlloc globally) and force the state
    // machine rather than depending on the test runner's environment.

    // The forced state is process-global; serialize the tests that flip it
    // so a concurrently running test cannot observe the wrong mode.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_forced<R>(on: bool, f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        force_profiling(Some(on));
        let r = f();
        force_profiling(Some(false));
        r
    }

    #[test]
    fn disabled_counts_nothing() {
        with_forced(false, || {
            let before = snapshot();
            let a = CountingAlloc;
            let layout = Layout::from_size_align(64, 8).unwrap();
            unsafe {
                let p = a.alloc(layout);
                assert!(!p.is_null());
                a.dealloc(p, layout);
            }
            let delta = snapshot().delta_since(&before);
            assert_eq!(delta.total_allocs(), 0);
            assert_eq!(delta.total_bytes(), 0);
        });
    }

    #[test]
    fn enabled_attributes_to_current_region() {
        with_forced(true, || {
            let region = HostRegion::CowWrite;
            set_current_region(region.index() + 1);
            let before = snapshot();
            let a = CountingAlloc;
            let layout = Layout::from_size_align(128, 8).unwrap();
            unsafe {
                let p = a.alloc(layout);
                assert!(!p.is_null());
                a.dealloc(p, layout);
            }
            set_current_region(0);
            let delta = snapshot().delta_since(&before);
            let slot = region.index() + 1;
            assert!(delta.allocs[slot] >= 1, "allocs {:?}", delta.allocs);
            assert!(delta.bytes[slot] >= 128, "bytes {:?}", delta.bytes);
            assert_eq!(AllocSnapshot::slot_name(slot), "cow_write");
        });
    }

    #[test]
    fn realloc_counts_new_size() {
        with_forced(true, || {
            set_current_region(0);
            let before = snapshot();
            let a = CountingAlloc;
            let layout = Layout::from_size_align(16, 8).unwrap();
            unsafe {
                let p = a.alloc(layout);
                let p2 = a.realloc(p, layout, 256);
                assert!(!p2.is_null());
                a.dealloc(p2, Layout::from_size_align(256, 8).unwrap());
            }
            let delta = snapshot().delta_since(&before);
            assert!(delta.allocs[0] >= 2);
            assert!(delta.bytes[0] >= 16 + 256);
        });
    }

    #[test]
    fn snapshot_json_lists_nonzero_slots() {
        let mut s = AllocSnapshot::default();
        s.allocs[0] = 3;
        s.bytes[0] = 300;
        let json = s.to_json();
        assert_eq!(json.get("total_allocs").and_then(Json::as_u64), Some(3));
        assert!(json
            .get("by_region")
            .and_then(|b| b.get("unattributed"))
            .is_some());
    }
}
