//! Host-plane observability: wall-clock self-profiling of the simulator.
//!
//! Everything else in this crate measures *sim time* — the virtual clock of
//! the modeled LOTEC protocol. This module measures the *host*: where the
//! real CPU's time goes while running the simulation. The two planes answer
//! different questions ("is the protocol slow?" vs "is the simulator
//! slow?") and deliberately never mix units.
//!
//! The design mirrors [`crate::sink::EventSink`]: the engine is generic
//! over [`HostProfiler`], defaulting to [`NoopHostProfiler`] whose
//! `enter`/`exit` are empty `#[inline(always)]` bodies — the disabled
//! configuration monomorphizes to zero instructions, so golden fingerprints
//! and benchmark output are byte-identical whether or not the profiler type
//! exists in the binary.
//!
//! [`WallProfiler`] is the real implementation: a scope stack plus a fixed
//! array of per-region accumulators ([`RegionStat`], log₂-histogram
//! bucketed). Each profiler instance is thread-local by construction — one
//! per engine run — so accumulation is lock-free; cross-thread aggregation
//! happens after the runner joins, via the deterministic, index-ordered
//! [`HostProfile::merge`].
//!
//! Self-time accounting: when a scope exits, the elapsed wall time minus
//! the time spent in *nested* scopes is attributed to the scope's region as
//! `self_ns`, and the full elapsed time is added to the parent's child
//! accumulator. Self times of all regions therefore partition the covered
//! wall time without double counting, which is what lets the perf harness
//! assert that the profiled regions explain ≥90% of a run's wall clock.

use std::time::Instant;

use lotec_sim::stats::Histogram;

use crate::event::ObsEvent;
use crate::json::Json;
use crate::sink::EventSink;

/// A profiled wall-clock region of the engine.
///
/// Regions are coarse on purpose: each one is a hot *phase* of the event
/// loop, not a function. The discriminant doubles as the index into the
/// fixed accumulator array (and into the allocation-accounting tables in
/// [`crate::alloc`]), so the order here is part of the on-disk schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum HostRegion {
    /// Engine construction: registry indexing, store allocation, initial
    /// event scheduling.
    Setup = 0,
    /// Popping the next event from the future-event list.
    EventPop = 1,
    /// Pushing a follow-up event onto the future-event list.
    EventPush = 2,
    /// Event dispatch: everything inside `Engine::handle` not attributed
    /// to a nested region.
    Dispatch = 3,
    /// Lock-table acquire: grant/retain/enqueue decisions.
    LockAcquire = 4,
    /// Lock-table release paths: commit, abort, retain-regrant.
    LockRelease = 5,
    /// The deadlock gate: reachability pre-check plus cycle search.
    DeadlockGate = 6,
    /// Page-transfer planning and send-side work.
    PageTransfer = 7,
    /// Installing received pages into a node's cache.
    PageInstall = 8,
    /// Copy-on-write page mutation on the compute path.
    CowWrite = 9,
    /// Sim-state gauge sampling (the sampler's own cost).
    StateSample = 10,
    /// Recording observability events (the sink's own cost).
    ObsRecord = 11,
    /// End-of-run reporting: phase stats, final chain collection.
    Report = 12,
}

/// Number of distinct [`HostRegion`] values.
pub const HOST_REGION_COUNT: usize = 13;

impl HostRegion {
    /// All regions, in index order.
    pub const ALL: [HostRegion; HOST_REGION_COUNT] = [
        HostRegion::Setup,
        HostRegion::EventPop,
        HostRegion::EventPush,
        HostRegion::Dispatch,
        HostRegion::LockAcquire,
        HostRegion::LockRelease,
        HostRegion::DeadlockGate,
        HostRegion::PageTransfer,
        HostRegion::PageInstall,
        HostRegion::CowWrite,
        HostRegion::StateSample,
        HostRegion::ObsRecord,
        HostRegion::Report,
    ];

    /// Stable wire name, used in JSON output and reports.
    pub const fn name(self) -> &'static str {
        match self {
            HostRegion::Setup => "setup",
            HostRegion::EventPop => "event_pop",
            HostRegion::EventPush => "event_push",
            HostRegion::Dispatch => "dispatch",
            HostRegion::LockAcquire => "lock_acquire",
            HostRegion::LockRelease => "lock_release",
            HostRegion::DeadlockGate => "deadlock_gate",
            HostRegion::PageTransfer => "page_transfer",
            HostRegion::PageInstall => "page_install",
            HostRegion::CowWrite => "cow_write",
            HostRegion::StateSample => "state_sample",
            HostRegion::ObsRecord => "obs_record",
            HostRegion::Report => "report",
        }
    }

    /// Index into the accumulator array.
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// Receives scope enter/exit notifications from the instrumented engine.
///
/// Mirrors [`EventSink`]: the default implementation is a no-op whose calls
/// monomorphize away, so an uninstrumented engine pays nothing. Unlike
/// `EventSink` there is no payload to construct, so call sites need no
/// `enabled()` guard — `enter`/`exit` on [`NoopHostProfiler`] *are* the
/// guard.
pub trait HostProfiler {
    /// True when this profiler records anything. Implementations should
    /// make this a constant so disabled probe sites fold away.
    fn enabled(&self) -> bool;

    /// Opens a scope for `region`. Scopes nest; each `enter` must be
    /// matched by an `exit` of the same region in LIFO order.
    fn enter(&mut self, region: HostRegion);

    /// Closes the innermost scope, which must be `region`.
    fn exit(&mut self, region: HostRegion);
}

/// The default profiler: records nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopHostProfiler;

impl HostProfiler for NoopHostProfiler {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn enter(&mut self, _region: HostRegion) {}

    #[inline(always)]
    fn exit(&mut self, _region: HostRegion) {}
}

/// Forwarding impl so callers can lend a profiler to the engine
/// (`&mut prof`) and keep the accumulated profile after the run consumes
/// the engine by value.
impl<T: HostProfiler + ?Sized> HostProfiler for &mut T {
    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline(always)]
    fn enter(&mut self, region: HostRegion) {
        (**self).enter(region);
    }

    #[inline(always)]
    fn exit(&mut self, region: HostRegion) {
        (**self).exit(region);
    }
}

/// Accumulated wall-clock statistics for one region.
#[derive(Debug, Clone, Default)]
pub struct RegionStat {
    /// Number of completed scopes.
    pub count: u64,
    /// Total wall nanoseconds inside the scope, including nested regions.
    pub total_ns: u64,
    /// Wall nanoseconds exclusive of nested regions. Summing `self_ns`
    /// across regions partitions the covered wall time.
    pub self_ns: u64,
    /// Log₂-bucketed distribution of per-scope self time.
    pub hist: Histogram,
}

impl RegionStat {
    fn record(&mut self, total_ns: u64, self_ns: u64) {
        self.count += 1;
        self.total_ns += total_ns;
        self.self_ns += self_ns;
        self.hist.record(self_ns);
    }

    /// Merges another region's statistics into this one.
    pub fn merge(&mut self, other: &RegionStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.hist.merge(&other.hist);
    }

    /// JSON rendering: counts, totals, and histogram shape markers.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::U64(self.count)),
            ("total_ns", Json::U64(self.total_ns)),
            ("self_ns", Json::U64(self.self_ns)),
            ("min_self_ns", Json::U64(self.hist.min().unwrap_or(0))),
            ("max_self_ns", Json::U64(self.hist.max().unwrap_or(0))),
            (
                "p99_self_ns",
                Json::U64(self.hist.quantile(0.99).unwrap_or(0)),
            ),
        ])
    }
}

/// A merged, thread-independent summary of profiled runs.
///
/// Durations are wall clock and therefore vary run to run; the *structure*
/// (which regions fired and how many times) is a deterministic function of
/// the simulated workload, which the facade tests pin across thread counts.
#[derive(Debug, Clone, Default)]
pub struct HostProfile {
    regions: Vec<RegionStat>,
    /// Number of per-run profiles merged into this one.
    pub runs: u64,
}

impl HostProfile {
    /// An empty profile with every region present and zeroed.
    pub fn new() -> Self {
        HostProfile {
            regions: (0..HOST_REGION_COUNT)
                .map(|_| RegionStat::default())
                .collect(),
            runs: 0,
        }
    }

    /// The accumulated statistics for `region`.
    pub fn region(&self, region: HostRegion) -> &RegionStat {
        &self.regions[region.index()]
    }

    /// Iterates `(region, stat)` pairs in index order, including zero rows.
    pub fn iter(&self) -> impl Iterator<Item = (HostRegion, &RegionStat)> {
        HostRegion::ALL
            .iter()
            .map(move |&r| (r, &self.regions[r.index()]))
    }

    /// Deterministic merge: region-index order, no floating-point, so the
    /// result is independent of which thread produced which summand.
    pub fn merge(&mut self, other: &HostProfile) {
        for (mine, theirs) in self.regions.iter_mut().zip(other.regions.iter()) {
            mine.merge(theirs);
        }
        self.runs += other.runs;
    }

    /// Sum of exclusive (self) nanoseconds across all regions: the portion
    /// of wall time the profiled regions explain.
    pub fn total_self_ns(&self) -> u64 {
        self.regions.iter().map(|r| r.self_ns).sum()
    }

    /// Total scope count across all regions.
    pub fn total_count(&self) -> u64 {
        self.regions.iter().map(|r| r.count).sum()
    }

    /// Fraction of the explained self-time spent in `region` (0.0 when
    /// nothing was profiled). The perf gate uses this to pin hot-region
    /// wall shares — e.g. that the deadlock gate stays collapsed after
    /// the incremental waits-for graph removed its O(entries) rebuild.
    pub fn self_share(&self, region: HostRegion) -> f64 {
        self.region(region).self_ns as f64 / self.total_self_ns().max(1) as f64
    }

    /// The thread-independent shape of the profile: `(region name, scope
    /// count)` for every region that fired. Wall-clock durations are
    /// excluded on purpose — this is what the determinism tests compare.
    pub fn structure(&self) -> Vec<(&'static str, u64)> {
        self.iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(r, s)| (r.name(), s.count))
            .collect()
    }

    /// JSON rendering: one object per region that fired, in index order,
    /// plus totals.
    pub fn to_json(&self) -> Json {
        let regions: Vec<(&str, Json)> = self
            .iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(r, s)| (r.name(), s.to_json()))
            .collect();
        Json::obj(vec![
            ("runs", Json::U64(self.runs)),
            ("total_self_ns", Json::U64(self.total_self_ns())),
            ("regions", Json::obj(regions)),
        ])
    }
}

/// One open scope on the profiler stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    region: HostRegion,
    start_ns: u64,
    /// Wall time consumed by already-closed nested scopes.
    child_ns: u64,
}

/// A recording [`HostProfiler`]: scope stack plus per-region accumulators.
///
/// One instance profiles one engine run on one thread; nothing here is
/// shared, so recording is a few arithmetic ops with no synchronization.
/// Use [`WallProfiler::into_profile`] (or [`WallProfiler::profile`]) after
/// the run, and [`HostProfile::merge`] to aggregate across runs/threads.
#[derive(Debug)]
pub struct WallProfiler {
    epoch: Instant,
    stats: [RegionStat; HOST_REGION_COUNT],
    stack: Vec<Frame>,
}

impl Default for WallProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl WallProfiler {
    /// A fresh profiler with all accumulators zeroed.
    pub fn new() -> Self {
        WallProfiler {
            epoch: Instant::now(),
            stats: Default::default(),
            stack: Vec::with_capacity(8),
        }
    }

    fn now_ns(&self) -> u64 {
        // Instant is monotonic; one epoch per profiler keeps the u64 small.
        self.epoch.elapsed().as_nanos() as u64
    }

    /// True when every `enter` has been matched by an `exit`.
    pub fn is_balanced(&self) -> bool {
        self.stack.is_empty()
    }

    /// Snapshot of the accumulated profile (scopes still open are not
    /// included). The profiler can keep recording afterwards.
    pub fn profile(&self) -> HostProfile {
        let mut p = HostProfile::new();
        for (i, s) in self.stats.iter().enumerate() {
            p.regions[i] = s.clone();
        }
        p.runs = 1;
        p
    }

    /// Consumes the profiler, returning its profile.
    ///
    /// # Panics
    ///
    /// Panics if any scope is still open — an unbalanced profile would
    /// silently under-attribute self time.
    pub fn into_profile(self) -> HostProfile {
        assert!(
            self.stack.is_empty(),
            "WallProfiler dropped with {} open scope(s)",
            self.stack.len()
        );
        self.profile()
    }
}

impl HostProfiler for WallProfiler {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn enter(&mut self, region: HostRegion) {
        let start_ns = self.now_ns();
        self.stack.push(Frame {
            region,
            start_ns,
            child_ns: 0,
        });
        crate::alloc::set_current_region(region.index() + 1);
    }

    #[inline]
    fn exit(&mut self, region: HostRegion) {
        let end_ns = self.now_ns();
        let frame = self
            .stack
            .pop()
            .expect("HostProfiler::exit with no open scope");
        debug_assert_eq!(frame.region, region, "HostProfiler scopes must close LIFO");
        let elapsed = end_ns.saturating_sub(frame.start_ns);
        let self_ns = elapsed.saturating_sub(frame.child_ns);
        self.stats[frame.region.index()].record(elapsed, self_ns);
        match self.stack.last_mut() {
            Some(parent) => {
                parent.child_ns += elapsed;
                crate::alloc::set_current_region(parent.region.index() + 1);
            }
            None => crate::alloc::set_current_region(0),
        }
    }
}

/// An [`EventSink`] adapter that times every `emit` of the inner sink,
/// attributing the cost to [`HostRegion::ObsRecord`] on the wrapped
/// profiler reference. Lets a profiled run measure the price of its own
/// observability.
#[derive(Debug)]
pub struct ProfiledSink<'p, S> {
    inner: S,
    prof: &'p mut WallProfiler,
}

impl<'p, S: EventSink> ProfiledSink<'p, S> {
    /// Wraps `inner`, charging emit time to `prof`.
    pub fn new(inner: S, prof: &'p mut WallProfiler) -> Self {
        ProfiledSink { inner, prof }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EventSink> EventSink for ProfiledSink<'_, S> {
    #[inline]
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn emit(&mut self, event: ObsEvent) {
        self.prof.enter(HostRegion::ObsRecord);
        self.inner.emit(event);
        self.prof.exit(HostRegion::ObsRecord);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ObsEvent, ObsEventKind, ObsPhase};
    use crate::sink::RecordingSink;
    use lotec_sim::SimTime;

    #[test]
    fn noop_profiler_is_disabled() {
        let mut p = NoopHostProfiler;
        assert!(!p.enabled());
        p.enter(HostRegion::Dispatch);
        p.exit(HostRegion::Dispatch);
    }

    #[test]
    fn region_names_are_unique_and_indexed() {
        let mut names = std::collections::BTreeSet::new();
        for (i, r) in HostRegion::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert!(names.insert(r.name()), "duplicate name {}", r.name());
        }
        assert_eq!(names.len(), HOST_REGION_COUNT);
    }

    #[test]
    fn self_time_excludes_children() {
        let mut p = WallProfiler::new();
        p.enter(HostRegion::Dispatch);
        p.enter(HostRegion::LockAcquire);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.exit(HostRegion::LockAcquire);
        p.exit(HostRegion::Dispatch);
        assert!(p.is_balanced());
        let prof = p.into_profile();
        let dispatch = prof.region(HostRegion::Dispatch);
        let lock = prof.region(HostRegion::LockAcquire);
        assert_eq!(dispatch.count, 1);
        assert_eq!(lock.count, 1);
        // The child slept ≥2ms; the parent's self time must exclude it.
        assert!(lock.self_ns >= 2_000_000, "lock self {}", lock.self_ns);
        assert!(dispatch.total_ns >= lock.total_ns);
        assert!(
            dispatch.self_ns <= dispatch.total_ns - lock.total_ns,
            "dispatch self {} should exclude child total {}",
            dispatch.self_ns,
            lock.total_ns
        );
        // Self times partition the covered wall time.
        assert!(prof.total_self_ns() <= dispatch.total_ns);
    }

    #[test]
    fn profile_merge_is_additive() {
        let mut a = WallProfiler::new();
        a.enter(HostRegion::EventPop);
        a.exit(HostRegion::EventPop);
        let mut b = WallProfiler::new();
        b.enter(HostRegion::EventPop);
        b.exit(HostRegion::EventPop);
        b.enter(HostRegion::Report);
        b.exit(HostRegion::Report);
        let mut merged = a.into_profile();
        merged.merge(&b.into_profile());
        assert_eq!(merged.runs, 2);
        assert_eq!(merged.region(HostRegion::EventPop).count, 2);
        assert_eq!(merged.region(HostRegion::Report).count, 1);
        assert_eq!(merged.structure(), vec![("event_pop", 2), ("report", 1)]);
    }

    #[test]
    #[should_panic(expected = "open scope")]
    fn unbalanced_profile_panics() {
        let mut p = WallProfiler::new();
        p.enter(HostRegion::Setup);
        let _ = p.into_profile();
    }

    #[test]
    fn profiled_sink_counts_emits() {
        let mut prof = WallProfiler::new();
        {
            let mut sink = ProfiledSink::new(RecordingSink::new(), &mut prof);
            assert!(sink.enabled());
            for at in 0..5 {
                sink.emit(ObsEvent {
                    at: SimTime::from_nanos(at),
                    node: 0,
                    kind: ObsEventKind::PhaseEnter {
                        family: 1,
                        phase: ObsPhase::Running,
                    },
                });
            }
            assert_eq!(sink.into_inner().len(), 5);
        }
        let profile = prof.into_profile();
        assert_eq!(profile.region(HostRegion::ObsRecord).count, 5);
    }

    #[test]
    fn json_rendering_includes_totals() {
        let mut p = WallProfiler::new();
        p.enter(HostRegion::EventPop);
        p.exit(HostRegion::EventPop);
        let json = p.into_profile().to_json();
        assert_eq!(json.get("runs").and_then(Json::as_u64), Some(1));
        let regions = json.get("regions").expect("regions");
        assert!(regions.get("event_pop").is_some());
        assert!(regions.get("report").is_none(), "zero rows omitted");
    }
}
